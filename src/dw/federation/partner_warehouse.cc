#include "dw/federation/partner_warehouse.h"

#include "common/logging.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "dw/etl.h"

namespace dwqa {
namespace dw {
namespace fed {

const std::vector<PartnerAirport>& PartnerAirline::Airports() {
  static const auto* kAirports = new std::vector<PartnerAirport>{
      // Overlap with the local airline, same spelling.
      {"El Prat", "Barcelona", "Catalonia", "Spain"},
      {"Barajas", "Madrid", "Community of Madrid", "Spain"},
      {"Charles de Gaulle", "Paris", "Ile-de-France", "France"},
      {"Fiumicino", "Rome", "Lazio", "Italy"},
      // Overlap under an alias: the local warehouse spells it "JFK".
      {"Kennedy International Airport", "New York", "New York",
       "United States"},
      // Partner-only aerodromes.
      {"Brandenburg", "Berlin", "Berlin", "Germany"},
      {"Portela", "Lisbon", "Lisbon District", "Portugal"},
      {"Schwechat", "Vienna", "Lower Austria", "Austria"},
      {"Kloten", "Zurich", "Canton of Zurich", "Switzerland"},
      {"Gardermoen", "Oslo", "Viken", "Norway"},
  };
  return *kAirports;
}

const std::vector<std::vector<std::string>>& PartnerAirline::Aircraft() {
  static const auto* kAircraft = new std::vector<std::vector<std::string>>{
      {"A320", "Airbus"},
      {"A350", "Airbus"},
      {"B737", "Boeing"},
      {"E195", "Embraer"},
  };
  return *kAircraft;
}

MdSchema PartnerAirline::MakeSchema() {
  MdSchema schema;
  // The partner's designers renamed two levels of the geography rollup:
  // "Airports" (plural — the matcher's partial tier) and "Member State"
  // (the head-word tier). City and Country survive verbatim.
  DWQA_CHECK(schema
                 .AddDimension({"Aerodrome",
                                {{"Airports"},
                                 {"City"},
                                 {"Member State"},
                                 {"Country"}}})
                 .ok());
  DWQA_CHECK(
      schema.AddDimension({"Date", {{"Date"}, {"Month"}, {"Year"}}}).ok());
  // The Aircraft dimension has no local counterpart: local queries that
  // group by it cannot exist, and partner facts roll it up away.
  DWQA_CHECK(
      schema.AddDimension({"Aircraft", {{"Model"}, {"Manufacturer"}}}).ok());
  DWQA_CHECK(schema.AddDimension({"City", {{"City"}, {"Country"}}}).ok());
  DWQA_CHECK(schema.AddDimension({"Source", {{"Url"}}}).ok());

  FactDef sales;
  sales.name = "Partner Sales";
  sales.measures = {
      {"Price", ColumnType::kDouble, AggFn::kSum},
      {"DistanceKm", ColumnType::kDouble, AggFn::kSum},
      {"Tickets", ColumnType::kDouble, AggFn::kSum},
      // Remote-only measure in a non-convertible currency: the mapping
      // ignores it (only *local* measures must map).
      {"BaggageFees", ColumnType::kDouble, AggFn::kSum},
  };
  sales.roles = {{"origin", "Aerodrome"},
                 {"destination", "Aerodrome"},
                 {"date", "Date"},
                 {"aircraft", "Aircraft"}};
  DWQA_CHECK(schema.AddFact(std::move(sales)).ok());

  FactDef weather;
  weather.name = "Weather";
  weather.measures = {{"TemperatureC", ColumnType::kDouble, AggFn::kAvg}};
  weather.roles = {{"location", "City"}, {"day", "Date"},
                   {"source", "Source"}};
  DWQA_CHECK(schema.AddFact(std::move(weather)).ok());
  return schema;
}

Result<Warehouse> PartnerAirline::MakeWarehouse() {
  DWQA_ASSIGN_OR_RETURN(Warehouse wh, Warehouse::Create(MakeSchema()));
  for (const PartnerAirport& a : Airports()) {
    DWQA_RETURN_NOT_OK(
        wh.AddMember("Aerodrome", {a.name, a.city, a.state, a.country})
            .status());
  }
  for (const std::vector<std::string>& path : Aircraft()) {
    DWQA_RETURN_NOT_OK(wh.AddMember("Aircraft", path).status());
  }
  return wh;
}

Result<size_t> PartnerAirline::GeneratePartnerSales(Warehouse* wh,
                                                    const Date& start,
                                                    int days, uint64_t seed) {
  if (wh == nullptr) {
    return Status::InvalidArgument("warehouse must not be null");
  }
  Rng rng(seed);
  const auto& airports = Airports();
  const auto& aircraft = Aircraft();
  size_t inserted = 0;
  Date date = start;
  for (int d = 0; d < days; ++d, date = date.NextDay()) {
    DWQA_ASSIGN_OR_RETURN(MemberId date_m,
                          wh->AddMember("Date", DateMemberPath(date)));
    for (size_t dest = 0; dest < airports.size(); ++dest) {
      // Deterministic dyadic measures: quarter-euro prices, integer
      // kilometres and ticket counts — partial sums are exact, so the
      // federated merge is bit-equal to the oracle's single pass.
      int tickets = 1 + static_cast<int>(rng.NextBelow(8));
      size_t origin = rng.NextIndex(airports.size());
      if (origin == dest) origin = (origin + 1) % airports.size();
      DWQA_ASSIGN_OR_RETURN(
          MemberId origin_m,
          wh->FindMember("Aerodrome", airports[origin].name));
      DWQA_ASSIGN_OR_RETURN(
          MemberId dest_m, wh->FindMember("Aerodrome", airports[dest].name));
      DWQA_ASSIGN_OR_RETURN(
          MemberId craft_m,
          wh->FindMember("Aircraft",
                         aircraft[rng.NextIndex(aircraft.size())][0]));
      double price = 0.25 * static_cast<double>(240 + rng.NextBelow(800));
      double km = static_cast<double>(400 + rng.NextBelow(2600));
      double baggage = 0.25 * static_cast<double>(rng.NextBelow(120));
      DWQA_RETURN_NOT_OK(wh->InsertFact(
          "Partner Sales", {origin_m, dest_m, date_m, craft_m},
          {Value(price), Value(km), Value(static_cast<double>(tickets)),
           Value(baggage)}));
      ++inserted;
    }
  }
  return inserted;
}

Result<size_t> PartnerAirline::GeneratePartnerWeather(Warehouse* wh,
                                                      const Date& start,
                                                      int days,
                                                      uint64_t seed) {
  if (wh == nullptr) {
    return Status::InvalidArgument("warehouse must not be null");
  }
  Rng rng(seed);
  size_t inserted = 0;
  Date date = start;
  for (int d = 0; d < days; ++d, date = date.NextDay()) {
    DWQA_ASSIGN_OR_RETURN(MemberId date_m,
                          wh->AddMember("Date", DateMemberPath(date)));
    for (const PartnerAirport& a : Airports()) {
      DWQA_ASSIGN_OR_RETURN(MemberId city_m,
                            wh->AddMember("City", {a.city, a.country}));
      const std::string url =
          "http://partner.example/weather/" + ToLower(a.city);
      DWQA_ASSIGN_OR_RETURN(MemberId src_m, wh->AddMember("Source", {url}));
      // Half-degree temperatures in [-5, 25] — dyadic, so kAvg sums merge
      // exactly across the federation.
      double temp = 0.5 * static_cast<double>(rng.NextBelow(61)) - 5.0;
      DWQA_RETURN_NOT_OK(wh->InsertFact("Weather", {city_m, date_m, src_m},
                                        {Value(temp)}));
      ++inserted;
    }
  }
  return inserted;
}

MatcherOptions PartnerAirline::DefaultMatcherOptions() {
  MatcherOptions options;
  options.local_units["price"] = "EUR";
  options.local_units["miles"] = "mi";
  options.remote_units["price"] = "EUR";
  options.remote_units["distancekm"] = "km";
  options.remote_units["baggagefees"] = "USD";
  // 1 km = 0.625 mi in this scenario's bookkeeping: the factor is a dyadic
  // rational on purpose, so converted partial sums remain exact.
  options.unit_conversions["km->mi"] = kKmToMiles;
  options.member_aliases["jfk"] = {"Kennedy International Airport"};
  return options;
}

}  // namespace fed
}  // namespace dw
}  // namespace dwqa
