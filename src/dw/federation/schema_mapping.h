#ifndef DWQA_DW_FEDERATION_SCHEMA_MAPPING_H_
#define DWQA_DW_FEDERATION_SCHEMA_MAPPING_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "dw/warehouse.h"
#include "ontology/merge.h"

namespace dwqa {
namespace dw {
namespace fed {

/// \file schema_mapping.h
/// \brief Ontology-mediated schema alignment between two autonomous
/// warehouses.
///
/// The SchemaMatcher reuses the Step-3 concept-matching ladder of
/// ontology/merge.h — exact lemma, partial string similarity, head word —
/// to align the dimension hierarchies, fact roles and measures of a remote
/// warehouse with the local one, and OntologyMerger::Merge itself to align
/// dimension *members* (instances), including the paper's alias enrichment
/// ("Kennedy International Airport" ↔ "JFK"). The result is a typed
/// SchemaMapping that both the FederatedEngine (query fan-out) and
/// MergeWarehouses (instance merge) plan against.

/// How one schema element pair was aligned.
enum class MatchKind {
  kExact,     ///< Identical lemma ("City" ↔ "City").
  kPartial,   ///< High string similarity ("Airports" ↔ "Airport").
  kHeadWord,  ///< Head-word hyponymy ("Member State" ↔ "State").
  kUnit,      ///< Paired through a registered unit conversion.
  kAlias,     ///< Matched through a registered member alias.
};

/// "exact", "partial", "head-word", "unit", "alias".
const char* MatchKindName(MatchKind kind);

/// Base-level member registered in the local dimension for every local
/// fact role the remote schema has no counterpart for: remote facts roll
/// up into this sentinel instead of silently dropping the axis.
inline constexpr char kUnattributedMember[] = "(unattributed)";

/// \brief One aligned hierarchy-level pair of a dimension mapping.
struct LevelMapping {
  std::string local_level;   ///< Level name in the local schema.
  std::string remote_level;  ///< Level name in the remote schema.
  MatchKind kind = MatchKind::kExact;  ///< How the pair was aligned.
  double similarity = 1.0;   ///< String similarity of the pair's lemmas.
};

/// \brief One aligned dimension pair with its level and member alignments.
struct DimensionMapping {
  std::string local_dimension;   ///< Dimension name in the local schema.
  std::string remote_dimension;  ///< Dimension name in the remote schema.
  /// Aligned level pairs, in local finest-first order. Local levels with
  /// no remote counterpart are simply absent (remote members are null
  /// there after a merge).
  std::vector<LevelMapping> levels;
  /// Lowercased remote base-member name → canonical local spelling, from
  /// the ontology instance merge ("kennedy international airport" →
  /// "JFK"). Remote-only members are absent.
  std::map<std::string, std::string> member_map;

  /// The mapping whose local side is `level` (case-insensitive), or null.
  const LevelMapping* FindLocalLevel(const std::string& level) const;
};

/// \brief One aligned measure pair, with the unit conversion that takes a
/// remote value into the local measure's unit (1.0 when units agree).
struct MeasureMapping {
  std::string local_measure;   ///< Measure name in the local fact.
  std::string remote_measure;  ///< Measure name in the remote fact.
  MatchKind kind = MatchKind::kExact;  ///< How the pair was aligned.
  /// Multiplier converting one remote value into local units
  /// (kilometres × 0.625 → miles).
  double conversion = 1.0;
  std::string local_unit;   ///< Declared local unit ("" when none).
  std::string remote_unit;  ///< Declared remote unit ("" when none).
};

/// \brief One aligned dimension-role pair of a fact mapping.
struct RoleMapping {
  std::string local_role;   ///< Role name in the local fact.
  std::string remote_role;  ///< Role name in the remote fact.
};

/// \brief The alignment of one local fact with one remote fact.
///
/// A FactMapping is only emitted when *every* local measure mapped —
/// otherwise merged aggregates would silently miss the remote share.
/// Remote-only measures are ignored; remote-only roles roll up away.
struct FactMapping {
  std::string local_fact;   ///< Fact name in the local schema.
  std::string remote_fact;  ///< Fact name in the remote schema.
  std::vector<RoleMapping> roles;        ///< Aligned role pairs.
  std::vector<MeasureMapping> measures;  ///< Aligned measure pairs.
  /// Local roles with no remote counterpart: remote facts land on the
  /// kUnattributedMember sentinel along these axes.
  std::vector<std::string> unmapped_local_roles;
  /// True when every local role mapped — only then do the two fact tables
  /// share a key space and the conflict policies of merge_warehouses.h
  /// apply. Facts with unmapped roles merge purely additively.
  bool key_complete = false;

  /// The role mapping whose local side is `role` (case-insensitive), null
  /// when the role is unmapped.
  const RoleMapping* FindLocalRole(const std::string& role) const;
  /// The measure mapping whose local side is `measure` (case-insensitive),
  /// or null.
  const MeasureMapping* FindLocalMeasure(const std::string& measure) const;
};

/// \brief The full typed alignment of two warehouse schemas.
struct SchemaMapping {
  std::vector<DimensionMapping> dimensions;  ///< Aligned dimension pairs.
  std::vector<FactMapping> facts;            ///< Aligned (mergeable) facts.
  /// Human-readable refusals and ambiguities the matcher recorded instead
  /// of guessing (ambiguous head-word ties, unconvertible units).
  std::vector<std::string> notes;

  /// The fact mapping whose local side is `fact` (case-insensitive), or
  /// null when the fact has no mergeable remote counterpart.
  const FactMapping* FindLocalFact(const std::string& fact) const;
  /// The dimension mapping whose local side is `dimension`
  /// (case-insensitive), or null.
  const DimensionMapping* FindLocalDimension(
      const std::string& dimension) const;
};

/// \brief Knobs of the schema matcher.
struct MatcherOptions {
  /// Thresholds of the Step-3 ladder (partial-match similarity floor,
  /// head-word enablement) — shared with the ontology merger.
  ontology::MergeOptions merge;
  /// Lowercased local measure name → declared unit ("price" → "EUR").
  /// Measures absent here have no declared unit.
  std::map<std::string, std::string> local_units;
  /// Lowercased remote measure name → declared unit.
  std::map<std::string, std::string> remote_units;
  /// "remoteunit->localunit" (lowercased) → multiplicative conversion
  /// factor ("km->mi" → 0.625). Name-matched measures whose declared units
  /// differ do NOT map without an entry here; unit-only pairs (kUnit) map
  /// only through one.
  std::map<std::string, double> unit_conversions;
  /// Lowercased base-member name → extra aliases, registered on the
  /// matching side's member instances before the ontology merge
  /// ("jfk" → {"Kennedy International Airport"}).
  std::map<std::string, std::vector<std::string>> member_aliases;
};

/// \brief Aligns a remote warehouse schema (and its members) against the
/// local one, producing the SchemaMapping that federation plans with.
///
/// Matching ladder per element kind, mirroring paper Step 3:
///   1. exact lemma;
///   2. partial string match at or above `merge.partial_threshold`
///      (a tie between two equally-similar candidates is refused and
///      recorded in `notes` — never guessed);
///   3. head word ("Member State" aligns under "State"; a head shared by
///      several local levels is ambiguous and refused);
///   4. measures only: a unique convertible unit pair ("km" ↔ "mi").
/// Members are aligned by OntologyMerger::Merge over per-dimension
/// instance ontologies, so alias enrichment and exact instance matching
/// behave exactly as in the Step-3 ontology merge.
class SchemaMatcher {
 public:
  /// Matcher with `options` (defaults mirror the ontology merger's).
  explicit SchemaMatcher(MatcherOptions options = {});

  /// Aligns `remote`'s schema and members against `local`'s.
  Result<SchemaMapping> Match(const Warehouse& local,
                              const Warehouse& remote) const;

 private:
  /// Aligns the levels of one dimension pair (empty result = no overlap).
  std::vector<LevelMapping> MatchLevels(const DimensionDef& local,
                                        const DimensionDef& remote,
                                        std::vector<std::string>* notes) const;
  /// Aligns base-level members of one matched dimension pair via the
  /// Step-3 ontology merge.
  Result<std::map<std::string, std::string>> MatchMembers(
      const Warehouse& local_wh, const DimensionDef& local,
      const Warehouse& remote_wh, const DimensionDef& remote) const;
  /// Aligns the measures of one fact pair; false when a local measure
  /// cannot map (the fact pair is then refused).
  bool MatchMeasures(const FactDef& local, const FactDef& remote,
                     std::vector<MeasureMapping>* out,
                     std::vector<std::string>* notes) const;

  MatcherOptions options_;
};

}  // namespace fed
}  // namespace dw
}  // namespace dwqa

#endif  // DWQA_DW_FEDERATION_SCHEMA_MAPPING_H_
