#ifndef DWQA_DW_FEDERATION_FEDERATED_ENGINE_H_
#define DWQA_DW_FEDERATION_FEDERATED_ENGINE_H_

#include <mutex>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/metrics.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "dw/federation/merge_warehouses.h"
#include "dw/federation/schema_mapping.h"
#include "dw/olap.h"
#include "dw/warehouse.h"

namespace dwqa {
namespace dw {
namespace fed {

/// \file federated_engine.h
/// \brief Query-time federation: plan a BI query against the schema
/// mappings, fan per-warehouse sub-queries out on the ThreadPool, merge
/// the partial aggregates with the shared AggState arithmetic.
///
/// Each sub-query ships the *aggregation state* (sum/count/min/max per
/// group and measure) rather than finished values, so the merged answer is
/// byte-identical to the same query over the MergeWarehouses oracle — the
/// same split/merge identity the materialized views rely on, stretched
/// across warehouses. Per-warehouse failures (chaos or real) degrade into
/// a typed partial-coverage annotation instead of an error; only the loss
/// of every member warehouse fails the query.

/// \brief One member warehouse that could not contribute to an answer.
struct CoverageGap {
  std::string warehouse;  ///< Member name ("local", "partner", ...).
  std::string reason;     ///< Human-readable failure reason.
};

/// \brief Which member warehouses an answer actually covers.
struct FederatedCoverage {
  size_t warehouses_total = 0;  ///< Members the plan addressed.
  size_t answered = 0;          ///< Members whose share is exact.
  std::vector<CoverageGap> missing;  ///< The members that are not.

  /// True when every member contributed.
  bool full() const { return answered == warehouses_total; }
};

/// "full", "partial", or "failed" (nothing answered).
const char* CoverageName(const FederatedCoverage& coverage);

/// \brief A federated answer: the merged OLAP result plus its coverage.
struct FederatedResult {
  OlapResult result;            ///< Merged rows, oracle-identical shape.
  FederatedCoverage coverage;   ///< Which members the rows cover.
};

/// \brief The federation planner/executor over one local warehouse and any
/// number of mapped remote warehouses.
///
/// Thread-safety: Execute is const and safe to call concurrently (chaos
/// injectors are probed under an internal mutex; metrics instruments are
/// lock-free; sub-queries go through the view catalogs' shared locks). The
/// trace recorder is the exception — TraceRecorder parenting assumes one
/// logical flow of control, so set one only where Execute calls are
/// serialized (the serving layer holds its tenant lock) and leave it null
/// for concurrent use. Pool workers never touch the recorder or the
/// injectors.
class FederatedEngine {
 public:
  /// Engine over `local` (not owned, must outlive the engine), reported in
  /// coverage under `local_name`.
  explicit FederatedEngine(const Warehouse* local,
                           std::string local_name = "local");

  /// Registers a remote member warehouse (not owned) under `name`, reached
  /// through `mapping` (local→remote). `chaos` (optional, not owned) is
  /// probed at `fed.subquery` before each dispatch — NOT thread-safe by
  /// itself, so the engine serializes all probes internally.
  Status AddRemote(std::string name, const Warehouse* remote,
                   SchemaMapping mapping, FaultInjector* chaos = nullptr);

  /// Arms a chaos injector on the local member as well.
  void set_local_chaos(FaultInjector* chaos) { local_chaos_ = chaos; }

  /// Pool the sub-queries fan out on (null = inline, serial execution).
  void set_pool(ThreadPool* pool) { pool_ = pool; }

  /// Receives the dwqa_fed_* series (null = observability off).
  void set_metrics(MetricRegistry* metrics) { metrics_ = metrics; }

  /// Recorder for `fed.plan` / `fed.fanout` / `fed.merge` spans. See the
  /// class comment: only safe when Execute calls are serialized.
  void set_trace_recorder(TraceRecorder* trace) { trace_ = trace; }

  /// Conflict policy applied to key-complete fact mappings at query time —
  /// keep it equal to the MergeWarehouses policy for oracle identity.
  void set_policy(MergePolicy policy) { policy_ = std::move(policy); }

  /// Registered remote members.
  size_t remote_count() const { return remotes_.size(); }
  /// The schema mapping of remote member `i`.
  const SchemaMapping& mapping(size_t i) const { return remotes_[i].mapping; }

  /// Plans, fans out and merges `query` (spelled against the *local*
  /// schema). Headers, group ordering and values are byte-identical to
  /// OlapEngine::Execute over the MergeWarehouses oracle when coverage is
  /// full. Fails only on an invalid query or when no member could answer.
  Result<FederatedResult> Execute(const OlapQuery& query) const;

 private:
  struct Remote {
    std::string name;
    const Warehouse* warehouse = nullptr;
    SchemaMapping mapping;
    FaultInjector* chaos = nullptr;
  };

  const Warehouse* local_;
  std::string local_name_;
  std::vector<Remote> remotes_;
  FaultInjector* local_chaos_ = nullptr;
  ThreadPool* pool_ = nullptr;
  MetricRegistry* metrics_ = nullptr;
  TraceRecorder* trace_ = nullptr;
  MergePolicy policy_;
  /// Serializes chaos-injector probes (FaultInjector mutates its RNG).
  mutable std::mutex chaos_mu_;
};

}  // namespace fed
}  // namespace dw
}  // namespace dwqa

#endif  // DWQA_DW_FEDERATION_FEDERATED_ENGINE_H_
