#ifndef DWQA_DW_FEDERATION_PARTNER_WAREHOUSE_H_
#define DWQA_DW_FEDERATION_PARTNER_WAREHOUSE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/date.h"
#include "common/result.h"
#include "dw/federation/schema_mapping.h"
#include "dw/warehouse.h"

namespace dwqa {
namespace dw {
namespace fed {

/// \file partner_warehouse.h
/// \brief The second synthetic warehouse of the federation scenario: a
/// partner airline whose star schema overlaps the Last Minute Sales model
/// but was designed by someone else.
///
/// The overlap is deliberate and typed: renamed levels ("Airports",
/// "Member State"), a renamed unit-bearing measure (DistanceKm in
/// kilometres against the local Miles), one extra dimension (Aircraft) the
/// local schema lacks, a missing one (Customer) the local schema has, and
/// a member population that intersects the local airports without
/// coinciding. Every generated measure is a dyadic rational (quarter-euro
/// prices, integer kilometres and tickets, half-degree temperatures) so
/// partial-aggregate merges are exact and federated answers can be
/// asserted byte-identical to the merged-warehouse oracle.

/// \brief An aerodrome the partner airline serves, with its rollup path.
struct PartnerAirport {
  std::string name;     ///< "Kennedy International Airport"
  std::string city;     ///< "New York"
  std::string state;    ///< "New York" (the partner's "Member State" level)
  std::string country;  ///< "United States"
};

/// \brief Builders of the partner airline's warehouse and data.
class PartnerAirline {
 public:
  /// The partner's aerodromes: four overlap the local airline's airports
  /// under the same spelling, one overlaps under an alias ("Kennedy
  /// International Airport" for the local "JFK"), five are partner-only.
  static const std::vector<PartnerAirport>& Airports();

  /// Aircraft models flown by the partner: {model, manufacturer} pairs for
  /// the Aircraft dimension the local schema has no counterpart of.
  static const std::vector<std::vector<std::string>>& Aircraft();

  /// The partner's star schema. Dimensions: Aerodrome (Airports → City →
  /// Member State → Country), Date, Aircraft (Model → Manufacturer), City
  /// and Source. Facts: "Partner Sales" (Price EUR, DistanceKm km, Tickets,
  /// BaggageFees USD; roles origin/destination/date/aircraft) and the same
  /// "Weather" feedback fact the local warehouse carries.
  static MdSchema MakeSchema();

  /// Creates the partner warehouse and registers aerodrome and aircraft
  /// members.
  static Result<Warehouse> MakeWarehouse();

  /// Populates "Partner Sales" with `days` days of deterministic synthetic
  /// sales starting at `start`. All measures are dyadic rationals. Returns
  /// rows inserted.
  static Result<size_t> GeneratePartnerSales(Warehouse* warehouse,
                                             const Date& start, int days,
                                             uint64_t seed = 11);

  /// Populates the partner's "Weather" fact with half-degree temperatures
  /// for its destination cities, sourced from partner-domain URLs (so the
  /// fact keys never collide with the locally ingested weather). Returns
  /// rows inserted.
  static Result<size_t> GeneratePartnerWeather(Warehouse* warehouse,
                                               const Date& start, int days,
                                               uint64_t seed = 13);

  /// Matcher options of the scenario: declared measure units (local Price
  /// EUR / Miles mi, partner Price EUR / DistanceKm km / BaggageFees USD),
  /// the km→mi conversion (0.625, exactly representable so converted sums
  /// stay dyadic), and the JFK alias bridging the two member populations.
  static MatcherOptions DefaultMatcherOptions();

  /// The exact km→mi factor used by DefaultMatcherOptions().
  static constexpr double kKmToMiles = 0.625;
};

}  // namespace fed
}  // namespace dw
}  // namespace dwqa

#endif  // DWQA_DW_FEDERATION_PARTNER_WAREHOUSE_H_
