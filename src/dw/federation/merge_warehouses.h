#ifndef DWQA_DW_FEDERATION_MERGE_WAREHOUSES_H_
#define DWQA_DW_FEDERATION_MERGE_WAREHOUSES_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "dw/federation/schema_mapping.h"
#include "dw/quarantine.h"
#include "dw/warehouse.h"

namespace dwqa {
namespace dw {
namespace fed {

/// \file merge_warehouses.h
/// \brief Offline schema-instance merge of two warehouses under a
/// SchemaMapping — the golden oracle of the federation layer.
///
/// MergeWarehouses materializes one warehouse (in the *local* schema) that
/// contains the local facts plus every mergeable remote fact, members
/// translated and measures unit-converted through the mapping. The
/// FederatedEngine is asserted byte-identical against queries over this
/// oracle, and both share ResolveConflicts so they exclude the exact same
/// rows when the two warehouses disagree.

/// How cross-warehouse fact conflicts (same key, different measures) are
/// resolved.
enum class ConflictPolicy {
  kPreferLocal,    ///< The local warehouse's rows win.
  kPreferFresher,  ///< The warehouse with the later refresh date wins.
  kQuarantine,     ///< Both sides' rows are excluded and quarantined.
};

/// "prefer_local", "prefer_fresher", "quarantine".
const char* ConflictPolicyName(ConflictPolicy policy);

/// \brief Conflict-handling configuration of a merge (and of the
/// FederatedEngine, which applies the same exclusions at query time).
struct MergePolicy {
  /// The conflict policy applied to key-complete fact mappings.
  ConflictPolicy conflicts = ConflictPolicy::kPreferLocal;
  /// ISO date of the local warehouse's last refresh (kPreferFresher).
  std::string local_refresh_iso = "1970-01-01";
  /// ISO date of the remote warehouse's last refresh (kPreferFresher).
  std::string remote_refresh_iso = "1970-01-01";
};

/// \brief Counters of one fact's conflict resolution.
struct ConflictStats {
  size_t keys_in_both = 0;        ///< Fact keys present on both sides.
  size_t deduplicated_rows = 0;   ///< Remote rows identical to local ones.
  size_t conflicting_keys = 0;    ///< Keys whose measures disagree.
  size_t local_rows_dropped = 0;  ///< Local rows a policy excluded.
  size_t remote_rows_dropped = 0;  ///< Remote rows excluded (conflict only).
  size_t quarantined_rows = 0;    ///< Rows routed to the quarantine store.
};

/// \brief The row exclusions one conflict pass computed.
///
/// Shared by MergeWarehouses (which skips excluded rows while
/// materializing) and FederatedEngine::Execute (which skips them while
/// scanning), so the two paths always agree on which rows exist.
struct ConflictResolution {
  std::set<size_t> local_excluded;   ///< Excluded local fact-row indices.
  std::set<size_t> remote_excluded;  ///< Excluded remote fact-row indices.
  /// One record per quarantined row (kQuarantine policy only); reason is
  /// "FederationConflict". Not yet sequenced — QuarantineStore::Add stamps.
  std::vector<QuarantineRecord> quarantine;
  ConflictStats stats;  ///< What happened, for reports and metrics.
};

/// Resolves cross-warehouse conflicts of one key-complete fact mapping:
/// rows sharing a fact key (the tuple of base-level member values per
/// mapped role, remote members canonicalized through the member map) with
/// identical measure multisets are deduplicated (remote copy excluded);
/// disagreeing keys are resolved per `policy`. Fact mappings that are not
/// key-complete merge purely additively — the resolution is then empty.
Result<ConflictResolution> ResolveConflicts(const Warehouse& local,
                                            const Warehouse& remote,
                                            const SchemaMapping& mapping,
                                            const FactMapping& fact,
                                            const MergePolicy& policy);

/// \brief Summary of one MergeWarehouses run.
struct MergeWarehousesReport {
  size_t local_facts_kept = 0;     ///< Local fact rows materialized.
  size_t remote_facts_merged = 0;  ///< Remote fact rows materialized.
  size_t members_added = 0;        ///< Dimension members the merge created.
  /// Conflict counters per local fact name (key-complete mappings only).
  std::map<std::string, ConflictStats> conflicts;
  /// Remote facts without a mapping, dimensions skipped, and similar.
  std::vector<std::string> notes;
};

/// Materializes the offline merge of `remote` into `local` under `mapping`:
/// a new warehouse in the local schema holding every kept local fact, a
/// "(unattributed)" sentinel member per dimension that backs an unmapped
/// fact role, every translated remote member, and every kept remote fact
/// with measures converted into local units. Conflicts are resolved per
/// `policy`; kQuarantine exclusions are routed into `quarantine` when one
/// is provided. `report` (optional) receives the run summary. The merged
/// warehouse has no view catalog attached — callers derive and bind one if
/// they want view-answered queries.
Result<Warehouse> MergeWarehouses(const Warehouse& local,
                                  const Warehouse& remote,
                                  const SchemaMapping& mapping,
                                  const MergePolicy& policy = {},
                                  QuarantineStore* quarantine = nullptr,
                                  MergeWarehousesReport* report = nullptr);

}  // namespace fed
}  // namespace dw
}  // namespace dwqa

#endif  // DWQA_DW_FEDERATION_MERGE_WAREHOUSES_H_
