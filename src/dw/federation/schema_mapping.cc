#include "dw/federation/schema_mapping.h"

#include <algorithm>
#include <set>
#include <utility>

#include "common/string_util.h"

namespace dwqa {
namespace dw {
namespace fed {

using ontology::MergeDecision;
using ontology::MergeRecord;
using ontology::MergeReport;
using ontology::Ontology;
using ontology::OntologyMerger;

const char* MatchKindName(MatchKind kind) {
  switch (kind) {
    case MatchKind::kExact:
      return "exact";
    case MatchKind::kPartial:
      return "partial";
    case MatchKind::kHeadWord:
      return "head-word";
    case MatchKind::kUnit:
      return "unit";
    case MatchKind::kAlias:
      return "alias";
  }
  return "?";
}

const LevelMapping* DimensionMapping::FindLocalLevel(
    const std::string& level) const {
  for (const LevelMapping& lm : levels) {
    if (ToLower(lm.local_level) == ToLower(level)) return &lm;
  }
  return nullptr;
}

const RoleMapping* FactMapping::FindLocalRole(const std::string& role) const {
  for (const RoleMapping& rm : roles) {
    if (ToLower(rm.local_role) == ToLower(role)) return &rm;
  }
  return nullptr;
}

const MeasureMapping* FactMapping::FindLocalMeasure(
    const std::string& measure) const {
  for (const MeasureMapping& mm : measures) {
    if (ToLower(mm.local_measure) == ToLower(measure)) return &mm;
  }
  return nullptr;
}

const FactMapping* SchemaMapping::FindLocalFact(
    const std::string& fact) const {
  for (const FactMapping& fm : facts) {
    if (ToLower(fm.local_fact) == ToLower(fact)) return &fm;
  }
  return nullptr;
}

const DimensionMapping* SchemaMapping::FindLocalDimension(
    const std::string& dimension) const {
  for (const DimensionMapping& dm : dimensions) {
    if (ToLower(dm.local_dimension) == ToLower(dimension)) return &dm;
  }
  return nullptr;
}

SchemaMatcher::SchemaMatcher(MatcherOptions options)
    : options_(std::move(options)) {}

std::vector<LevelMapping> SchemaMatcher::MatchLevels(
    const DimensionDef& local, const DimensionDef& remote,
    std::vector<std::string>* notes) const {
  const size_t nl = local.levels.size();
  const size_t nr = remote.levels.size();
  std::vector<int> local_to_remote(nl, -1);
  std::vector<bool> remote_claimed(nr, false);
  std::vector<MatchKind> kinds(nl, MatchKind::kExact);
  std::vector<double> sims(nl, 1.0);

  auto lower_local = [&](size_t i) { return ToLower(local.levels[i].name); };
  auto lower_remote = [&](size_t j) {
    return ToLower(remote.levels[j].name);
  };

  // Tier 1: exact lemma.
  for (size_t i = 0; i < nl; ++i) {
    for (size_t j = 0; j < nr; ++j) {
      if (remote_claimed[j]) continue;
      if (lower_local(i) == lower_remote(j)) {
        local_to_remote[i] = static_cast<int>(j);
        remote_claimed[j] = true;
        kinds[i] = MatchKind::kExact;
        sims[i] = 1.0;
        break;
      }
    }
  }

  // Tier 2: best partial string match at or above the threshold; an exact
  // tie between two remote candidates is refused, never guessed.
  if (options_.merge.enable_partial) {
    for (size_t i = 0; i < nl; ++i) {
      if (local_to_remote[i] >= 0) continue;
      int best = -1;
      double best_sim = options_.merge.partial_threshold;
      bool tie = false;
      for (size_t j = 0; j < nr; ++j) {
        if (remote_claimed[j]) continue;
        double sim = StringSimilarity(lower_local(i), lower_remote(j));
        if (sim > best_sim) {
          best = static_cast<int>(j);
          best_sim = sim;
          tie = false;
        } else if (best >= 0 && sim == best_sim) {
          tie = true;
        }
      }
      if (best >= 0 && tie) {
        if (notes != nullptr) {
          notes->push_back("level '" + local.levels[i].name + "' of '" +
                           local.name +
                           "': partial-match tie between remote levels of '" +
                           remote.name + "' — refused");
        }
        continue;
      }
      if (best >= 0) {
        local_to_remote[i] = best;
        remote_claimed[static_cast<size_t>(best)] = true;
        kinds[i] = MatchKind::kPartial;
        sims[i] = best_sim;
      }
    }
  }

  // Tier 3: head-word hyponymy. Pass (a) matches a head against the other
  // side's full lemma ("Member State" under "State"); pass (b) matches head
  // against head. A head shared by several local levels is ambiguous and
  // refused — the satellite edge case this matcher is tested on.
  if (options_.merge.enable_head) {
    for (size_t j = 0; j < nr; ++j) {
      if (remote_claimed[j]) continue;
      const std::string rhead = OntologyMerger::HeadWord(remote.levels[j].name);
      std::vector<size_t> pass_a;
      std::vector<size_t> pass_b;
      for (size_t i = 0; i < nl; ++i) {
        if (local_to_remote[i] >= 0) continue;
        const std::string lhead =
            OntologyMerger::HeadWord(local.levels[i].name);
        if (rhead == lower_local(i) || lhead == lower_remote(j)) {
          pass_a.push_back(i);
        } else if (!rhead.empty() && rhead == lhead) {
          pass_b.push_back(i);
        }
      }
      const std::vector<size_t>& candidates =
          pass_a.empty() ? pass_b : pass_a;
      if (candidates.size() > 1) {
        if (notes != nullptr) {
          std::vector<std::string> names;
          for (size_t i : candidates) names.push_back(local.levels[i].name);
          notes->push_back("level '" + remote.levels[j].name + "' of '" +
                           remote.name + "': head word '" + rhead +
                           "' is ambiguous between local levels {" +
                           Join(names, ", ") + "} — refused");
        }
        continue;
      }
      if (candidates.size() == 1) {
        size_t i = candidates.front();
        local_to_remote[i] = static_cast<int>(j);
        remote_claimed[j] = true;
        kinds[i] = MatchKind::kHeadWord;
        sims[i] = StringSimilarity(lower_local(i), lower_remote(j));
      }
    }
  }

  std::vector<LevelMapping> out;
  for (size_t i = 0; i < nl; ++i) {
    if (local_to_remote[i] < 0) continue;
    out.push_back({local.levels[i].name,
                   remote.levels[static_cast<size_t>(local_to_remote[i])].name,
                   kinds[i], sims[i]});
  }
  return out;
}

Result<std::map<std::string, std::string>> SchemaMatcher::MatchMembers(
    const Warehouse& local_wh, const DimensionDef& local,
    const Warehouse& remote_wh, const DimensionDef& remote) const {
  // Build a tiny "upper" ontology from the local members and a "domain"
  // ontology from the remote ones, then run the Step-3 merge: exact
  // instance matching through the lemma/alias index is exactly the member
  // alignment federation needs, and the alias enrichment is the paper's
  // "Kennedy International Airport gains the alias JFK" behaviour.
  auto add_aliases = [&](Ontology* onto, ontology::ConceptId id,
                         const std::string& name) -> Status {
    auto it = options_.member_aliases.find(ToLower(name));
    if (it == options_.member_aliases.end()) return Status::OK();
    for (const std::string& alias : it->second) {
      DWQA_RETURN_NOT_OK(onto->AddAlias(id, alias));
    }
    return Status::OK();
  };

  Ontology upper;
  DWQA_ASSIGN_OR_RETURN(
      ontology::ConceptId upper_class,
      upper.AddConcept(local.levels.front().name, "", "dw"));
  DWQA_ASSIGN_OR_RETURN(std::vector<std::string> local_members,
                        local_wh.MemberNames(local.name));
  for (const std::string& name : local_members) {
    if (name.empty()) continue;
    DWQA_ASSIGN_OR_RETURN(ontology::ConceptId id,
                          upper.AddInstance(name, "", "dw"));
    DWQA_RETURN_NOT_OK(
        upper.AddRelation(id, ontology::RelationKind::kInstanceOf,
                          upper_class));
    DWQA_RETURN_NOT_OK(add_aliases(&upper, id, name));
  }

  Ontology domain;
  DWQA_ASSIGN_OR_RETURN(
      ontology::ConceptId domain_class,
      domain.AddConcept(remote.levels.front().name, "", "dw"));
  DWQA_ASSIGN_OR_RETURN(std::vector<std::string> remote_members,
                        remote_wh.MemberNames(remote.name));
  for (const std::string& name : remote_members) {
    if (name.empty()) continue;
    DWQA_ASSIGN_OR_RETURN(ontology::ConceptId id,
                          domain.AddInstance(name, "", "dw"));
    DWQA_RETURN_NOT_OK(
        domain.AddRelation(id, ontology::RelationKind::kInstanceOf,
                           domain_class));
    DWQA_RETURN_NOT_OK(add_aliases(&domain, id, name));
  }

  DWQA_ASSIGN_OR_RETURN(MergeReport report,
                        OntologyMerger::Merge(&upper, domain, options_.merge));
  std::map<std::string, std::string> member_map;
  for (const MergeRecord& record : report.records) {
    if (!record.is_instance) continue;
    if (record.decision != MergeDecision::kExactMatch) continue;
    member_map[ToLower(record.domain_concept)] = record.target;
  }
  return member_map;
}

bool SchemaMatcher::MatchMeasures(const FactDef& local, const FactDef& remote,
                                  std::vector<MeasureMapping>* out,
                                  std::vector<std::string>* notes) const {
  const size_t nl = local.measures.size();
  const size_t nr = remote.measures.size();
  std::vector<bool> remote_claimed(nr, false);

  auto unit_of = [](const std::map<std::string, std::string>& units,
                    const std::string& name) -> std::string {
    auto it = units.find(ToLower(name));
    return it == units.end() ? std::string() : it->second;
  };
  // Conversion factor remote → local, 1.0 when units agree, < 0 when the
  // units are declared, differ and no conversion is registered.
  auto conversion = [&](const std::string& local_unit,
                        const std::string& remote_unit) -> double {
    if (local_unit.empty() || remote_unit.empty() ||
        ToLower(local_unit) == ToLower(remote_unit)) {
      return 1.0;
    }
    auto it = options_.unit_conversions.find(ToLower(remote_unit) + "->" +
                                             ToLower(local_unit));
    return it == options_.unit_conversions.end() ? -1.0 : it->second;
  };

  bool all_mapped = true;
  std::vector<size_t> unit_pass;  // Local measures deferred to tier 4.
  for (size_t i = 0; i < nl; ++i) {
    const std::string lname = ToLower(local.measures[i].name);
    const std::string lunit = unit_of(options_.local_units, lname);
    int best = -1;
    MatchKind kind = MatchKind::kExact;
    double best_sim = options_.merge.partial_threshold;
    // Tier 1: exact.
    for (size_t j = 0; j < nr; ++j) {
      if (remote_claimed[j]) continue;
      if (lname == ToLower(remote.measures[j].name)) {
        best = static_cast<int>(j);
        kind = MatchKind::kExact;
        break;
      }
    }
    // Tier 2: partial.
    if (best < 0 && options_.merge.enable_partial) {
      for (size_t j = 0; j < nr; ++j) {
        if (remote_claimed[j]) continue;
        double sim =
            StringSimilarity(lname, ToLower(remote.measures[j].name));
        if (sim > best_sim) {
          best = static_cast<int>(j);
          best_sim = sim;
          kind = MatchKind::kPartial;
        }
      }
    }
    // Tier 3: head word, either direction, unique candidate only.
    if (best < 0 && options_.merge.enable_head) {
      const std::string lhead = OntologyMerger::HeadWord(local.measures[i].name);
      std::vector<size_t> candidates;
      for (size_t j = 0; j < nr; ++j) {
        if (remote_claimed[j]) continue;
        const std::string rhead =
            OntologyMerger::HeadWord(remote.measures[j].name);
        if (rhead == lname || lhead == ToLower(remote.measures[j].name)) {
          candidates.push_back(j);
        }
      }
      if (candidates.size() == 1) {
        best = static_cast<int>(candidates.front());
        kind = MatchKind::kHeadWord;
      }
    }
    if (best < 0) {
      unit_pass.push_back(i);
      continue;
    }
    const std::string& rname_orig =
        remote.measures[static_cast<size_t>(best)].name;
    const std::string runit = unit_of(options_.remote_units, rname_orig);
    double factor = conversion(lunit, runit);
    if (factor < 0.0) {
      // The unit gate: a name-matched measure whose declared units differ
      // and cannot be converted must NOT auto-map (the EUR/USD edge case).
      if (notes != nullptr) {
        notes->push_back("measure '" + local.measures[i].name + "' (" +
                         lunit + ") of '" + local.name +
                         "' name-matches remote '" + rname_orig + "' (" +
                         runit + ") but the units are not convertible — "
                         "refused");
      }
      unit_pass.push_back(i);
      continue;
    }
    remote_claimed[static_cast<size_t>(best)] = true;
    out->push_back({local.measures[i].name, rname_orig, kind, factor, lunit,
                    runit});
  }

  // Tier 4: a unique convertible unit pair rescues name-incompatible
  // measures (Miles ↔ DistanceKm through km→mi).
  for (size_t i : unit_pass) {
    const std::string lunit =
        unit_of(options_.local_units, local.measures[i].name);
    std::vector<std::pair<size_t, double>> candidates;
    if (!lunit.empty()) {
      for (size_t j = 0; j < nr; ++j) {
        if (remote_claimed[j]) continue;
        const std::string runit =
            unit_of(options_.remote_units, remote.measures[j].name);
        if (runit.empty()) continue;
        double factor = conversion(lunit, runit);
        if (factor > 0.0 && ToLower(lunit) != ToLower(runit)) {
          candidates.emplace_back(j, factor);
        }
      }
    }
    if (candidates.size() == 1) {
      auto [j, factor] = candidates.front();
      remote_claimed[j] = true;
      out->push_back({local.measures[i].name, remote.measures[j].name,
                      MatchKind::kUnit, factor, lunit,
                      unit_of(options_.remote_units,
                              remote.measures[j].name)});
      continue;
    }
    if (notes != nullptr && candidates.size() > 1) {
      notes->push_back("measure '" + local.measures[i].name + "' of '" +
                       local.name +
                       "': several remote measures convert into '" + lunit +
                       "' — refused");
    }
    all_mapped = false;
  }
  return all_mapped;
}

Result<SchemaMapping> SchemaMatcher::Match(const Warehouse& local,
                                           const Warehouse& remote) const {
  SchemaMapping mapping;
  const MdSchema& ls = local.schema();
  const MdSchema& rs = remote.schema();

  // ---- Dimensions: score every pair by aligned-level count, assign
  // greedily (best score first, exact dimension-name match breaking ties).
  struct DimCandidate {
    size_t li = 0;
    size_t rj = 0;
    std::vector<LevelMapping> levels;
    std::vector<std::string> notes;
    bool name_exact = false;
  };
  std::vector<DimCandidate> candidates;
  for (size_t li = 0; li < ls.dimensions().size(); ++li) {
    for (size_t rj = 0; rj < rs.dimensions().size(); ++rj) {
      DimCandidate c;
      c.li = li;
      c.rj = rj;
      c.levels =
          MatchLevels(ls.dimensions()[li], rs.dimensions()[rj], &c.notes);
      c.name_exact = ToLower(ls.dimensions()[li].name) ==
                     ToLower(rs.dimensions()[rj].name);
      if (!c.levels.empty()) candidates.push_back(std::move(c));
    }
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [&](const DimCandidate& a, const DimCandidate& b) {
                     if (a.levels.size() != b.levels.size()) {
                       return a.levels.size() > b.levels.size();
                     }
                     if (a.name_exact != b.name_exact) return a.name_exact;
                     if (a.li != b.li) return a.li < b.li;
                     return a.rj < b.rj;
                   });
  std::set<size_t> local_claimed;
  std::set<size_t> remote_claimed;
  for (const DimCandidate& c : candidates) {
    if (local_claimed.count(c.li) || remote_claimed.count(c.rj)) continue;
    local_claimed.insert(c.li);
    remote_claimed.insert(c.rj);
    const DimensionDef& ld = ls.dimensions()[c.li];
    const DimensionDef& rd = rs.dimensions()[c.rj];
    DimensionMapping dm;
    dm.local_dimension = ld.name;
    dm.remote_dimension = rd.name;
    dm.levels = c.levels;
    for (const std::string& note : c.notes) mapping.notes.push_back(note);
    // Members align only when the two *base* levels aligned with each
    // other — otherwise remote base members have no local counterpart
    // level and member translation would be meaningless.
    const LevelMapping* base_lm = dm.FindLocalLevel(ld.levels.front().name);
    if (base_lm != nullptr &&
        ToLower(base_lm->remote_level) == ToLower(rd.levels.front().name)) {
      DWQA_ASSIGN_OR_RETURN(dm.member_map,
                            MatchMembers(local, ld, remote, rd));
    }
    mapping.dimensions.push_back(std::move(dm));
  }

  // ---- Facts: a pair is viable when every local measure maps and at
  // least one role does; the best-scoring remote candidate wins.
  std::set<size_t> remote_facts_claimed;
  for (size_t fi = 0; fi < ls.facts().size(); ++fi) {
    const FactDef& lf = ls.facts()[fi];
    struct FactCandidate {
      size_t rj = 0;
      FactMapping fm;
      std::vector<std::string> notes;
      bool name_exact = false;
      size_t score = 0;
    };
    std::vector<FactCandidate> fact_candidates;
    // Notes of refused candidates, surfaced only when the fact ends up
    // unmapped — they then explain *why* (e.g. the unit gate).
    std::vector<std::string> refusal_notes;
    for (size_t rj = 0; rj < rs.facts().size(); ++rj) {
      if (remote_facts_claimed.count(rj)) continue;
      const FactDef& rf = rs.facts()[rj];
      FactCandidate c;
      c.rj = rj;
      c.fm.local_fact = lf.name;
      c.fm.remote_fact = rf.name;
      c.name_exact = ToLower(lf.name) == ToLower(rf.name);
      if (!MatchMeasures(lf, rf, &c.fm.measures, &c.notes)) {
        refusal_notes.insert(refusal_notes.end(), c.notes.begin(),
                             c.notes.end());
        continue;
      }
      // Roles: same role name over mapped dimensions first, then the
      // unique remaining remote role over the mapped remote dimension.
      std::set<std::string> remote_roles_claimed;
      for (const DimRole& lrole : lf.roles) {
        const DimensionMapping* dm =
            mapping.FindLocalDimension(lrole.dimension);
        const DimRole* matched = nullptr;
        if (dm != nullptr) {
          for (const DimRole& rrole : rf.roles) {
            if (remote_roles_claimed.count(ToLower(rrole.role))) continue;
            if (ToLower(rrole.dimension) !=
                ToLower(dm->remote_dimension)) {
              continue;
            }
            if (ToLower(rrole.role) == ToLower(lrole.role)) {
              matched = &rrole;
              break;
            }
            if (matched == nullptr) {
              matched = &rrole;  // Unique-dimension fallback candidate.
            } else {
              matched = nullptr;  // Two candidates, no name match: refuse.
              break;
            }
          }
        }
        if (matched != nullptr) {
          remote_roles_claimed.insert(ToLower(matched->role));
          c.fm.roles.push_back({lrole.role, matched->role});
        } else {
          c.fm.unmapped_local_roles.push_back(lrole.role);
        }
      }
      if (c.fm.roles.empty()) continue;
      c.fm.key_complete = c.fm.unmapped_local_roles.empty();
      c.score = c.fm.roles.size() + c.fm.measures.size();
      fact_candidates.push_back(std::move(c));
    }
    std::stable_sort(fact_candidates.begin(), fact_candidates.end(),
                     [](const FactCandidate& a, const FactCandidate& b) {
                       if (a.name_exact != b.name_exact) return a.name_exact;
                       if (a.score != b.score) return a.score > b.score;
                       return a.rj < b.rj;
                     });
    if (fact_candidates.empty()) {
      for (std::string& note : refusal_notes) {
        mapping.notes.push_back(std::move(note));
      }
      mapping.notes.push_back("fact '" + lf.name +
                              "' has no mergeable remote counterpart");
      continue;
    }
    FactCandidate& won = fact_candidates.front();
    remote_facts_claimed.insert(won.rj);
    for (const std::string& note : won.notes) mapping.notes.push_back(note);
    mapping.facts.push_back(std::move(won.fm));
  }
  return mapping;
}

}  // namespace fed
}  // namespace dw
}  // namespace dwqa
