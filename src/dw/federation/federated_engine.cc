#include "dw/federation/federated_engine.h"

#include <future>
#include <map>
#include <set>
#include <unordered_set>
#include <utility>

#include "common/metric_names.h"
#include "common/string_util.h"
#include "dw/cost_estimator.h"
#include "dw/materialized_view.h"

namespace dwqa {
namespace dw {
namespace fed {

namespace {

/// How one original group-by axis is reconstructed from a sub-result.
enum class AxisKind {
  kValue,            ///< Sub-result carries the value verbatim.
  kValueTranslated,  ///< Carried value, canonicalized through a member map.
  kSentinel,         ///< Axis absent remotely: the "(unattributed)" member.
  kNull,             ///< Level absent remotely: remote members are null.
};

struct AxisPlan {
  AxisKind kind = AxisKind::kValue;
  /// Lowercased remote base name → canonical local spelling
  /// (kValueTranslated only).
  const std::map<std::string, std::string>* member_map = nullptr;
};

/// One member warehouse's share of a federated query.
struct SubPlan {
  std::string name;
  const Warehouse* warehouse = nullptr;
  FaultInjector* chaos = nullptr;
  OlapQuery subquery;
  std::vector<AxisPlan> axes;       ///< One per original group-by axis.
  std::vector<double> conversions;  ///< Per underlying measure, remote→local.
  std::set<size_t> excluded;        ///< Fact rows a conflict policy removed.
  /// A filter proved this member's share empty: exact zero contribution,
  /// no sub-query dispatched.
  bool zero_contribution = false;
};

/// OlapEngine::Execute with a conflict-exclusion set: identical scan, but
/// excluded fact rows are skipped (they do not exist in the merged oracle,
/// so they must not exist here either). Mirrors dw/olap.cc.
Result<OlapResult> ExecuteWithExclusions(const Warehouse& wh,
                                         const OlapQuery& query,
                                         const std::set<size_t>& excluded) {
  DWQA_ASSIGN_OR_RETURN(const FactDef* fact,
                        wh.schema().FindFact(query.fact));
  DWQA_ASSIGN_OR_RETURN(const Table* ftab, wh.FactTable(query.fact));
  std::vector<size_t> measure_cols;
  for (const QueryMeasure& qm : query.measures) {
    DWQA_ASSIGN_OR_RETURN(size_t mi, fact->MeasureIndex(qm.measure));
    measure_cols.push_back(fact->roles.size() + mi);
  }
  struct Axis {
    size_t fk_col;
    std::string dimension;
    std::string level;
  };
  std::vector<Axis> axes;
  for (const GroupBy& g : query.group_by) {
    DWQA_ASSIGN_OR_RETURN(size_t ri, fact->RoleIndex(g.role));
    axes.push_back({ri, fact->roles[ri].dimension, g.level});
  }
  struct ResolvedFilter {
    size_t fk_col;
    std::string dimension;
    std::string level;
    std::unordered_set<std::string> values;
  };
  std::vector<ResolvedFilter> filters;
  for (const Filter& f : query.filters) {
    DWQA_ASSIGN_OR_RETURN(size_t ri, fact->RoleIndex(f.role));
    ResolvedFilter rf{ri, fact->roles[ri].dimension, f.level, {}};
    for (const std::string& v : f.values) rf.values.insert(ToLower(v));
    filters.push_back(std::move(rf));
  }
  std::map<std::vector<std::string>, std::vector<AggState>> groups;
  OlapResult result;
  result.facts_scanned = ftab->row_count() - excluded.size();
  for (size_t r = 0; r < ftab->row_count(); ++r) {
    if (excluded.count(r)) continue;
    bool keep = true;
    for (const ResolvedFilter& f : filters) {
      MemberId member =
          static_cast<MemberId>(ftab->Get(r, f.fk_col).as_int());
      DWQA_ASSIGN_OR_RETURN(
          std::string v, wh.MemberLevelValue(f.dimension, member, f.level));
      if (!f.values.count(ToLower(v))) {
        keep = false;
        break;
      }
    }
    if (!keep) continue;
    ++result.facts_matched;
    std::vector<std::string> key;
    for (const Axis& a : axes) {
      MemberId member =
          static_cast<MemberId>(ftab->Get(r, a.fk_col).as_int());
      DWQA_ASSIGN_OR_RETURN(
          std::string v, wh.MemberLevelValue(a.dimension, member, a.level));
      key.push_back(std::move(v));
    }
    auto [it, inserted] =
        groups.try_emplace(std::move(key), query.measures.size());
    for (size_t m = 0; m < measure_cols.size(); ++m) {
      it->second[m].Add(ftab->column(measure_cols[m]).GetDouble(r));
    }
  }
  for (const GroupBy& g : query.group_by) {
    result.headers.push_back(g.role + "." + g.level);
  }
  for (const QueryMeasure& qm : query.measures) {
    result.headers.push_back(std::string(AggFnName(qm.agg)) + "(" +
                             qm.measure + ")");
  }
  for (const auto& [key, states] : groups) {
    std::vector<Value> row;
    for (const std::string& k : key) row.emplace_back(k);
    for (size_t m = 0; m < states.size(); ++m) {
      row.push_back(states[m].Finish(query.measures[m].agg));
    }
    result.rows.push_back(std::move(row));
  }
  return result;
}

/// Runs one member's sub-query: exclusion-aware scan when a conflict policy
/// removed rows, otherwise view-first with a recompute fallback (each
/// member honors its own materialized-view catalog).
Result<OlapResult> RunSubquery(const SubPlan& plan) {
  if (!plan.excluded.empty()) {
    return ExecuteWithExclusions(*plan.warehouse, plan.subquery,
                                 plan.excluded);
  }
  if (plan.warehouse->views() != nullptr) {
    Result<OlapResult> from_view =
        plan.warehouse->views()->Answer(plan.subquery);
    if (from_view.ok()) return from_view;
  }
  return OlapEngine(plan.warehouse).Execute(plan.subquery);
}

}  // namespace

const char* CoverageName(const FederatedCoverage& coverage) {
  if (coverage.answered == 0) return "failed";
  return coverage.full() ? "full" : "partial";
}

FederatedEngine::FederatedEngine(const Warehouse* local,
                                 std::string local_name)
    : local_(local), local_name_(std::move(local_name)) {}

Status FederatedEngine::AddRemote(std::string name, const Warehouse* remote,
                                  SchemaMapping mapping,
                                  FaultInjector* chaos) {
  if (remote == nullptr) {
    return Status::InvalidArgument("remote warehouse must not be null");
  }
  if (ToLower(name) == ToLower(local_name_)) {
    return Status::AlreadyExists("member name '" + name +
                                 "' collides with the local warehouse");
  }
  for (const Remote& r : remotes_) {
    if (ToLower(r.name) == ToLower(name)) {
      return Status::AlreadyExists("member name '" + name +
                                   "' already registered");
    }
  }
  remotes_.push_back({std::move(name), remote, std::move(mapping), chaos});
  return Status::OK();
}

Result<FederatedResult> FederatedEngine::Execute(
    const OlapQuery& query) const {
  if (local_ == nullptr) {
    return Status::InvalidArgument("federation has no local warehouse");
  }
  if (query.measures.empty()) {
    return Status::InvalidArgument("OLAP query needs at least one measure");
  }

  FederatedResult out;
  Span plan_span(trace_, "fed.plan");
  plan_span.Annotate("fact", query.fact);
  plan_span.Annotate("members",
                     static_cast<double>(1 + remotes_.size()));

  // Validate the query against the local schema (the federation's query
  // vocabulary), mirroring the OLAP engine's resolution errors.
  DWQA_ASSIGN_OR_RETURN(const FactDef* lfact,
                        local_->schema().FindFact(query.fact));
  for (const Having& h : query.having) {
    if (h.measure_index >= query.measures.size()) {
      return Status::InvalidArgument(
          "HAVING refers to measure index " +
          std::to_string(h.measure_index) + ", query has " +
          std::to_string(query.measures.size()));
    }
  }

  // Distinct underlying measures, in first-mention order; every original
  // measure indexes into this list.
  std::vector<std::string> underlying;
  std::vector<size_t> orig_to_underlying;
  for (const QueryMeasure& qm : query.measures) {
    DWQA_RETURN_NOT_OK(lfact->MeasureIndex(qm.measure).status());
    size_t slot = underlying.size();
    for (size_t u = 0; u < underlying.size(); ++u) {
      if (ToLower(underlying[u]) == ToLower(qm.measure)) slot = u;
    }
    if (slot == underlying.size()) underlying.push_back(qm.measure);
    orig_to_underlying.push_back(slot);
  }
  // The axis/filter vocabulary must resolve locally too.
  for (const GroupBy& g : query.group_by) {
    DWQA_ASSIGN_OR_RETURN(size_t ri, lfact->RoleIndex(g.role));
    DWQA_ASSIGN_OR_RETURN(
        const DimensionDef* dim,
        local_->schema().FindDimension(lfact->roles[ri].dimension));
    DWQA_RETURN_NOT_OK(dim->LevelIndex(g.level).status());
  }
  for (const Filter& f : query.filters) {
    DWQA_ASSIGN_OR_RETURN(size_t ri, lfact->RoleIndex(f.role));
    DWQA_ASSIGN_OR_RETURN(
        const DimensionDef* dim,
        local_->schema().FindDimension(lfact->roles[ri].dimension));
    DWQA_RETURN_NOT_OK(dim->LevelIndex(f.level).status());
  }

  // Expand each underlying measure into the four components of its
  // aggregation state: sub-queries ship AggStates, not finished values.
  auto expand_measures = [](const std::vector<std::string>& names) {
    std::vector<QueryMeasure> expanded;
    for (const std::string& name : names) {
      expanded.push_back({name, AggFn::kSum});
      expanded.push_back({name, AggFn::kCount});
      expanded.push_back({name, AggFn::kMin});
      expanded.push_back({name, AggFn::kMax});
    }
    return expanded;
  };

  std::vector<SubPlan> plans;
  out.coverage.warehouses_total = 1 + remotes_.size();

  SubPlan local_plan;
  local_plan.name = local_name_;
  local_plan.warehouse = local_;
  local_plan.chaos = local_chaos_;
  local_plan.subquery.fact = query.fact;
  local_plan.subquery.measures = expand_measures(underlying);
  local_plan.subquery.group_by = query.group_by;
  local_plan.subquery.filters = query.filters;
  local_plan.axes.assign(query.group_by.size(), AxisPlan{});
  local_plan.conversions.assign(underlying.size(), 1.0);
  plans.push_back(std::move(local_plan));

  for (const Remote& r : remotes_) {
    const FactMapping* fm = r.mapping.FindLocalFact(query.fact);
    if (fm == nullptr) {
      out.coverage.missing.push_back(
          {r.name, "no schema mapping for fact '" + query.fact + "'"});
      if (metrics_ != nullptr) {
        metrics_
            ->GetCounter(kMetricFedSubqueries,
                         {{"warehouse", r.name}, {"outcome", "skipped"}})
            ->Increment();
      }
      continue;
    }
    SubPlan plan;
    plan.name = r.name;
    plan.warehouse = r.warehouse;
    plan.chaos = r.chaos;
    plan.subquery.fact = fm->remote_fact;
    std::vector<std::string> remote_measures;
    for (const std::string& name : underlying) {
      const MeasureMapping* mm = fm->FindLocalMeasure(name);
      // FactMapping guarantees every local measure maps; guarded anyway.
      if (mm == nullptr) break;
      remote_measures.push_back(mm->remote_measure);
      plan.conversions.push_back(mm->conversion);
    }
    if (remote_measures.size() != underlying.size()) {
      out.coverage.missing.push_back(
          {r.name, "a queried measure is not mapped"});
      continue;
    }
    plan.subquery.measures = expand_measures(remote_measures);

    for (const GroupBy& g : query.group_by) {
      DWQA_ASSIGN_OR_RETURN(size_t ri, lfact->RoleIndex(g.role));
      const std::string& dim_name = lfact->roles[ri].dimension;
      const RoleMapping* rm = fm->FindLocalRole(g.role);
      const DimensionMapping* dm =
          rm == nullptr ? nullptr : r.mapping.FindLocalDimension(dim_name);
      const LevelMapping* lm =
          dm == nullptr ? nullptr : dm->FindLocalLevel(g.level);
      if (rm == nullptr || dm == nullptr) {
        plan.axes.push_back({AxisKind::kSentinel, nullptr});
        continue;
      }
      if (lm == nullptr) {
        plan.axes.push_back({AxisKind::kNull, nullptr});
        continue;
      }
      DWQA_ASSIGN_OR_RETURN(
          const DimensionDef* ld, local_->schema().FindDimension(dim_name));
      DWQA_ASSIGN_OR_RETURN(
          const DimensionDef* rd,
          r.warehouse->schema().FindDimension(dm->remote_dimension));
      const bool base_pair =
          ToLower(g.level) == ToLower(ld->levels.front().name) &&
          ToLower(lm->remote_level) == ToLower(rd->levels.front().name);
      plan.subquery.group_by.push_back({rm->remote_role, lm->remote_level});
      plan.axes.push_back({base_pair ? AxisKind::kValueTranslated
                                     : AxisKind::kValue,
                           base_pair ? &dm->member_map : nullptr});
    }

    for (const Filter& f : query.filters) {
      if (plan.zero_contribution) break;
      DWQA_ASSIGN_OR_RETURN(size_t ri, lfact->RoleIndex(f.role));
      const std::string& dim_name = lfact->roles[ri].dimension;
      const RoleMapping* rm = fm->FindLocalRole(f.role);
      const DimensionMapping* dm =
          rm == nullptr ? nullptr : r.mapping.FindLocalDimension(dim_name);
      const LevelMapping* lm =
          dm == nullptr ? nullptr : dm->FindLocalLevel(f.level);
      auto contains = [&](const std::string& needle) {
        for (const std::string& v : f.values) {
          if (ToLower(v) == ToLower(needle)) return true;
        }
        return false;
      };
      if (rm == nullptr || dm == nullptr) {
        // Every remote fact sits on the sentinel along this axis: the
        // filter either passes all remote rows or none of them.
        if (!contains(kUnattributedMember)) plan.zero_contribution = true;
        continue;
      }
      if (lm == nullptr) {
        // Remote members are null at this level ("" after rendering).
        if (!contains("")) plan.zero_contribution = true;
        continue;
      }
      DWQA_ASSIGN_OR_RETURN(
          const DimensionDef* ld, local_->schema().FindDimension(dim_name));
      DWQA_ASSIGN_OR_RETURN(
          const DimensionDef* rd,
          r.warehouse->schema().FindDimension(dm->remote_dimension));
      const bool base_pair =
          ToLower(f.level) == ToLower(ld->levels.front().name) &&
          ToLower(lm->remote_level) == ToLower(rd->levels.front().name);
      Filter translated{rm->remote_role, lm->remote_level, {}};
      if (!base_pair) {
        translated.values = f.values;  // Vocabularies agree above base.
      } else {
        for (const std::string& v : f.values) {
          // Remote spellings whose canonical local form is this value…
          for (const auto& [remote_lower, canonical] : dm->member_map) {
            if (ToLower(canonical) == ToLower(v)) {
              translated.values.push_back(remote_lower);
            }
          }
          // …plus the value itself unless it is a remote spelling of a
          // *different* local member (then matching it would double count).
          if (!dm->member_map.count(ToLower(v))) {
            translated.values.push_back(v);
          }
        }
      }
      plan.subquery.filters.push_back(std::move(translated));
    }

    if (fm->key_complete) {
      DWQA_ASSIGN_OR_RETURN(
          ConflictResolution resolution,
          ResolveConflicts(*local_, *r.warehouse, r.mapping, *fm, policy_));
      if (metrics_ != nullptr) {
        const std::string policy_name =
            ConflictPolicyName(policy_.conflicts);
        auto bump = [&](const char* resolved, size_t n) {
          if (n == 0) return;
          metrics_
              ->GetCounter(kMetricFedConflicts, {{"policy", policy_name},
                                                 {"resolution", resolved}})
              ->Increment(static_cast<double>(n));
        };
        bump("deduplicated", resolution.stats.deduplicated_rows);
        bump("quarantined", resolution.stats.quarantined_rows);
        if (policy_.conflicts != ConflictPolicy::kQuarantine) {
          bump("remote", resolution.stats.remote_rows_dropped);
          bump("local", resolution.stats.local_rows_dropped);
        }
      }
      plan.excluded = std::move(resolution.remote_excluded);
      for (size_t row : resolution.local_excluded) {
        plans.front().excluded.insert(row);
      }
    }
    plans.push_back(std::move(plan));
  }

  if (trace_ != nullptr) {
    CostEstimator estimator;
    for (const SubPlan& plan : plans) {
      auto estimate = estimator.Estimate(*plan.warehouse, plan.subquery);
      if (estimate.ok()) {
        plan_span.Annotate(plan.name + ".cost_units",
                           estimate->cost_units);
      }
    }
  }
  plan_span.End();

  // ---- Fan-out: probe each member's chaos injector serially (injectors
  // are not thread-safe), then dispatch the surviving sub-queries on the
  // pool. Workers receive no recorder and no injector.
  Span fanout_span(trace_, "fed.fanout");
  struct Dispatched {
    const SubPlan* plan;
    std::future<Result<OlapResult>> future;
  };
  std::vector<Dispatched> dispatched;
  for (const SubPlan& plan : plans) {
    if (plan.zero_contribution) {
      // The translated filter proved this member's share empty: exact.
      ++out.coverage.answered;
      if (metrics_ != nullptr) {
        metrics_
            ->GetCounter(kMetricFedSubqueries,
                         {{"warehouse", plan.name}, {"outcome", "skipped"}})
            ->Increment();
      }
      continue;
    }
    if (plan.chaos != nullptr) {
      Status chaos_status;
      {
        std::lock_guard<std::mutex> lock(chaos_mu_);
        chaos_status = plan.chaos->Hit(kFaultPointFedSubquery);
      }
      if (!chaos_status.ok()) {
        out.coverage.missing.push_back({plan.name, chaos_status.message()});
        if (metrics_ != nullptr) {
          metrics_
              ->GetCounter(kMetricFedSubqueries,
                           {{"warehouse", plan.name}, {"outcome", "error"}})
              ->Increment();
        }
        continue;
      }
    }
    Histogram* latency =
        metrics_ == nullptr
            ? nullptr
            : metrics_->GetHistogram(kMetricFedSubqueryLatency,
                                     {{"warehouse", plan.name}});
    auto task = [&plan, latency]() -> Result<OlapResult> {
      ScopedLatencyTimer timer(latency);
      return RunSubquery(plan);
    };
    Dispatched d{&plan, pool_ != nullptr
                            ? pool_->Submit(task)
                            : std::async(std::launch::deferred, task)};
    dispatched.push_back(std::move(d));
  }

  std::vector<std::pair<const SubPlan*, OlapResult>> sub_results;
  for (Dispatched& d : dispatched) {
    Result<OlapResult> result = d.future.get();
    if (!result.ok()) {
      out.coverage.missing.push_back(
          {d.plan->name, result.status().message()});
      if (metrics_ != nullptr) {
        metrics_
            ->GetCounter(kMetricFedSubqueries, {{"warehouse", d.plan->name},
                                                {"outcome", "error"}})
            ->Increment();
      }
      continue;
    }
    ++out.coverage.answered;
    if (metrics_ != nullptr) {
      metrics_
          ->GetCounter(kMetricFedSubqueries,
                       {{"warehouse", d.plan->name}, {"outcome", "ok"}})
          ->Increment();
    }
    sub_results.emplace_back(d.plan, std::move(*result));
  }
  fanout_span.Annotate("answered",
                       static_cast<double>(out.coverage.answered));
  fanout_span.Annotate("missing",
                       static_cast<double>(out.coverage.missing.size()));
  fanout_span.End();

  if (out.coverage.answered == 0) {
    if (metrics_ != nullptr) {
      metrics_
          ->GetCounter(kMetricFedQueries, {{"coverage", "failed"}})
          ->Increment();
    }
    std::string reasons;
    for (const CoverageGap& gap : out.coverage.missing) {
      if (!reasons.empty()) reasons += "; ";
      reasons += gap.warehouse + ": " + gap.reason;
    }
    return Status::Unavailable("federation: no member could answer (" +
                               reasons + ")");
  }

  // ---- Merge: reconstruct each sub-result's aggregation states, convert
  // remote units, canonicalize keys, and fold with AggState::Merge — the
  // exact arithmetic a single-warehouse scan would have run.
  Span merge_span(trace_, "fed.merge");
  Histogram* merge_latency =
      metrics_ == nullptr
          ? nullptr
          : metrics_->GetHistogram(kMetricFedMergeLatency);
  size_t groups_merged = 0;
  {
    ScopedLatencyTimer merge_timer(merge_latency);
    std::map<std::vector<std::string>, std::vector<AggState>> groups;
    for (const auto& [plan, sub] : sub_results) {
      out.result.facts_scanned += sub.facts_scanned;
      out.result.facts_matched += sub.facts_matched;
      size_t value_axes = 0;
      for (const AxisPlan& axis : plan->axes) {
        if (axis.kind == AxisKind::kValue ||
            axis.kind == AxisKind::kValueTranslated) {
          ++value_axes;
        }
      }
      for (const std::vector<Value>& row : sub.rows) {
        std::vector<std::string> key;
        size_t pos = 0;
        for (const AxisPlan& axis : plan->axes) {
          switch (axis.kind) {
            case AxisKind::kSentinel:
              key.push_back(kUnattributedMember);
              break;
            case AxisKind::kNull:
              key.push_back("");
              break;
            case AxisKind::kValueTranslated: {
              std::string v = row[pos++].ToString();
              auto it = axis.member_map->find(ToLower(v));
              key.push_back(it == axis.member_map->end() ? v : it->second);
              break;
            }
            case AxisKind::kValue:
              key.push_back(row[pos++].ToString());
              break;
          }
        }
        auto [it, inserted] =
            groups.try_emplace(std::move(key), underlying.size());
        for (size_t u = 0; u < underlying.size(); ++u) {
          size_t base = value_axes + 4 * u;
          AggState st;
          st.count = static_cast<size_t>(row[base + 1].as_int());
          if (st.count == 0) continue;  // Empty share, nothing to fold.
          double conv = plan->conversions[u];
          st.sum = row[base].ToDouble() * conv;
          st.min = row[base + 2].ToDouble() * conv;
          st.max = row[base + 3].ToDouble() * conv;
          it->second[u].Merge(st);
        }
        ++groups_merged;
      }
    }
    for (const GroupBy& g : query.group_by) {
      out.result.headers.push_back(g.role + "." + g.level);
    }
    for (const QueryMeasure& qm : query.measures) {
      out.result.headers.push_back(std::string(AggFnName(qm.agg)) + "(" +
                                   qm.measure + ")");
    }
    for (const auto& [key, states] : groups) {
      bool keep = true;
      for (const Having& h : query.having) {
        double aggregated =
            states[orig_to_underlying[h.measure_index]]
                .Finish(query.measures[h.measure_index].agg)
                .ToDouble();
        if (!EvalCompare(aggregated, h.op, h.value)) {
          keep = false;
          break;
        }
      }
      if (!keep) continue;
      std::vector<Value> row;
      for (const std::string& k : key) row.emplace_back(k);
      for (size_t m = 0; m < query.measures.size(); ++m) {
        row.push_back(states[orig_to_underlying[m]].Finish(
            query.measures[m].agg));
      }
      out.result.rows.push_back(std::move(row));
    }
  }
  if (metrics_ != nullptr) {
    metrics_->GetCounter(kMetricFedGroupsMerged)
        ->Increment(static_cast<double>(groups_merged));
    metrics_
        ->GetCounter(kMetricFedQueries,
                     {{"coverage", CoverageName(out.coverage)}})
        ->Increment();
  }
  merge_span.Annotate("groups", static_cast<double>(out.result.rows.size()));
  merge_span.Annotate("coverage", CoverageName(out.coverage));
  merge_span.End();
  return out;
}

}  // namespace fed
}  // namespace dw
}  // namespace dwqa
