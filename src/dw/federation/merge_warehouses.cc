#include "dw/federation/merge_warehouses.h"

#include <algorithm>
#include <utility>

#include "common/string_util.h"

namespace dwqa {
namespace dw {
namespace fed {

namespace {

constexpr char kKeySep = '\x1f';

/// Rows of one fact grouped by their federation key: the row indices and
/// the (ordered, then sorted) measure vectors sharing each key.
struct KeyedRows {
  std::map<std::string, std::vector<size_t>> rows;
  std::map<std::string, std::vector<std::vector<double>>> measures;
};

std::string RenderMeasures(const FactMapping& fact,
                           const std::vector<double>& values) {
  std::vector<std::string> parts;
  for (size_t m = 0; m < fact.measures.size(); ++m) {
    parts.push_back(fact.measures[m].local_measure + "=" +
                    FormatDouble(values[m], 4));
  }
  return Join(parts, ";");
}

QuarantineRecord MakeConflictRecord(const FactMapping& fact,
                                    const std::string& side,
                                    const std::string& fact_name,
                                    size_t row, const std::string& key,
                                    const std::vector<double>& values) {
  QuarantineRecord record;
  record.attribute = fact.local_fact;
  record.value = RenderMeasures(fact, values);
  // The key carries the full provenance; pick its date and place parts into
  // the record's dedicated fields so quarantine reports read like the
  // Step-5 validator's (location = the member, not the whole key).
  for (const std::string& part : Split(key, kKeySep)) {
    if (record.date_iso.empty() && Date::FromIsoString(part).ok()) {
      record.date_iso = part;
    } else if (StartsWith(part, "http://") ||
               StartsWith(part, "https://")) {
      if (record.url.empty()) record.url = part;
    } else if (record.location.empty()) {
      record.location = part;
    }
  }
  if (record.url.empty()) {
    record.url = "dw://" + side + "/" + fact_name + "#row" +
                 std::to_string(row);
  }
  record.reason = "FederationConflict";
  record.detail = "cross-warehouse measure disagreement under policy "
                  "'quarantine' (" + side + " row " + std::to_string(row) +
                  " of '" + fact_name + "', key " +
                  ReplaceAll(key, std::string(1, kKeySep), "|") + ")";
  return record;
}

}  // namespace

const char* ConflictPolicyName(ConflictPolicy policy) {
  switch (policy) {
    case ConflictPolicy::kPreferLocal:
      return "prefer_local";
    case ConflictPolicy::kPreferFresher:
      return "prefer_fresher";
    case ConflictPolicy::kQuarantine:
      return "quarantine";
  }
  return "?";
}

Result<ConflictResolution> ResolveConflicts(const Warehouse& local,
                                            const Warehouse& remote,
                                            const SchemaMapping& mapping,
                                            const FactMapping& fact,
                                            const MergePolicy& policy) {
  ConflictResolution resolution;
  // Without a complete key the two fact tables do not share a key space:
  // the merge is purely additive and there is nothing to resolve.
  if (!fact.key_complete) return resolution;

  DWQA_ASSIGN_OR_RETURN(const FactDef* lf,
                        local.schema().FindFact(fact.local_fact));
  DWQA_ASSIGN_OR_RETURN(const FactDef* rf,
                        remote.schema().FindFact(fact.remote_fact));
  DWQA_ASSIGN_OR_RETURN(const Table* ltab, local.FactTable(fact.local_fact));
  DWQA_ASSIGN_OR_RETURN(const Table* rtab,
                        remote.FactTable(fact.remote_fact));

  // Resolve, per mapped role, the fk columns and base levels on both sides
  // plus the member map that canonicalizes remote spellings.
  struct KeyPart {
    size_t local_col = 0;
    size_t remote_col = 0;
    std::string local_dim, local_base;
    std::string remote_dim, remote_base;
    const std::map<std::string, std::string>* member_map = nullptr;
  };
  std::vector<KeyPart> parts;
  for (const RoleMapping& rm : fact.roles) {
    KeyPart part;
    DWQA_ASSIGN_OR_RETURN(part.local_col, lf->RoleIndex(rm.local_role));
    DWQA_ASSIGN_OR_RETURN(part.remote_col, rf->RoleIndex(rm.remote_role));
    part.local_dim = lf->roles[part.local_col].dimension;
    part.remote_dim = rf->roles[part.remote_col].dimension;
    DWQA_ASSIGN_OR_RETURN(const DimensionDef* ld,
                          local.schema().FindDimension(part.local_dim));
    DWQA_ASSIGN_OR_RETURN(const DimensionDef* rd,
                          remote.schema().FindDimension(part.remote_dim));
    part.local_base = ld->levels.front().name;
    part.remote_base = rd->levels.front().name;
    const DimensionMapping* dm = mapping.FindLocalDimension(part.local_dim);
    part.member_map = dm == nullptr ? nullptr : &dm->member_map;
    parts.push_back(std::move(part));
  }
  std::vector<size_t> local_mcols, remote_mcols;
  for (const MeasureMapping& mm : fact.measures) {
    DWQA_ASSIGN_OR_RETURN(size_t lm, lf->MeasureIndex(mm.local_measure));
    DWQA_ASSIGN_OR_RETURN(size_t rm, rf->MeasureIndex(mm.remote_measure));
    local_mcols.push_back(lf->roles.size() + lm);
    remote_mcols.push_back(rf->roles.size() + rm);
  }

  auto key_rows = [&](const Warehouse& wh, const Table* tab, bool is_local)
      -> Result<KeyedRows> {
    KeyedRows keyed;
    for (size_t r = 0; r < tab->row_count(); ++r) {
      std::vector<std::string> key_parts;
      for (const KeyPart& part : parts) {
        size_t col = is_local ? part.local_col : part.remote_col;
        MemberId member = static_cast<MemberId>(tab->Get(r, col).as_int());
        DWQA_ASSIGN_OR_RETURN(
            std::string v,
            wh.MemberLevelValue(is_local ? part.local_dim : part.remote_dim,
                                member,
                                is_local ? part.local_base
                                         : part.remote_base));
        if (!is_local && part.member_map != nullptr) {
          auto it = part.member_map->find(ToLower(v));
          if (it != part.member_map->end()) v = it->second;
        }
        key_parts.push_back(ToLower(v));
      }
      std::string key = Join(key_parts, std::string(1, kKeySep));
      std::vector<double> values;
      const std::vector<size_t>& mcols =
          is_local ? local_mcols : remote_mcols;
      for (size_t m = 0; m < mcols.size(); ++m) {
        double v = tab->column(mcols[m]).GetDouble(r);
        if (!is_local) v *= fact.measures[m].conversion;
        values.push_back(v);
      }
      keyed.rows[key].push_back(r);
      keyed.measures[key].push_back(std::move(values));
    }
    return keyed;
  };

  DWQA_ASSIGN_OR_RETURN(KeyedRows lkeyed, key_rows(local, ltab, true));
  DWQA_ASSIGN_OR_RETURN(KeyedRows rkeyed, key_rows(remote, rtab, false));

  const bool remote_fresher =
      policy.remote_refresh_iso > policy.local_refresh_iso;
  for (const auto& [key, lrows] : lkeyed.rows) {
    auto rit = rkeyed.rows.find(key);
    if (rit == rkeyed.rows.end()) continue;
    ++resolution.stats.keys_in_both;
    std::vector<std::vector<double>> lvals = lkeyed.measures[key];
    std::vector<std::vector<double>> rvals = rkeyed.measures[key];
    std::sort(lvals.begin(), lvals.end());
    std::sort(rvals.begin(), rvals.end());
    if (lvals == rvals) {
      // The remote warehouse carries the same observations: keep one copy.
      for (size_t r : rit->second) resolution.remote_excluded.insert(r);
      resolution.stats.deduplicated_rows += rit->second.size();
      continue;
    }
    ++resolution.stats.conflicting_keys;
    switch (policy.conflicts) {
      case ConflictPolicy::kPreferLocal:
        for (size_t r : rit->second) resolution.remote_excluded.insert(r);
        resolution.stats.remote_rows_dropped += rit->second.size();
        break;
      case ConflictPolicy::kPreferFresher:
        if (remote_fresher) {
          for (size_t r : lrows) resolution.local_excluded.insert(r);
          resolution.stats.local_rows_dropped += lrows.size();
        } else {
          for (size_t r : rit->second) resolution.remote_excluded.insert(r);
          resolution.stats.remote_rows_dropped += rit->second.size();
        }
        break;
      case ConflictPolicy::kQuarantine:
        for (size_t i = 0; i < lrows.size(); ++i) {
          resolution.local_excluded.insert(lrows[i]);
          resolution.quarantine.push_back(MakeConflictRecord(
              fact, "local", fact.local_fact, lrows[i], key,
              lkeyed.measures[key][i]));
        }
        for (size_t i = 0; i < rit->second.size(); ++i) {
          resolution.remote_excluded.insert(rit->second[i]);
          resolution.quarantine.push_back(MakeConflictRecord(
              fact, "remote", fact.remote_fact, rit->second[i], key,
              rkeyed.measures[key][i]));
        }
        resolution.stats.local_rows_dropped += lrows.size();
        resolution.stats.remote_rows_dropped += rit->second.size();
        resolution.stats.quarantined_rows +=
            lrows.size() + rit->second.size();
        break;
    }
  }
  return resolution;
}

Result<Warehouse> MergeWarehouses(const Warehouse& local,
                                  const Warehouse& remote,
                                  const SchemaMapping& mapping,
                                  const MergePolicy& policy,
                                  QuarantineStore* quarantine,
                                  MergeWarehousesReport* report) {
  DWQA_ASSIGN_OR_RETURN(Warehouse merged,
                        Warehouse::Create(local.schema()));
  MergeWarehousesReport local_report;

  // 1. Re-register every local member in dimension-table row order, so the
  // surrogate keys of the merged warehouse coincide with the local ones and
  // local fact rows can be copied verbatim.
  size_t local_member_rows = 0;
  for (const DimensionDef& dim : local.schema().dimensions()) {
    DWQA_ASSIGN_OR_RETURN(const Table* dtab, local.DimensionTable(dim.name));
    local_member_rows += dtab->row_count();
    for (size_t r = 0; r < dtab->row_count(); ++r) {
      std::vector<std::string> path;
      for (size_t c = 0; c < dim.levels.size(); ++c) {
        path.push_back(dtab->Get(r, c).ToString());
      }
      while (!path.empty() && path.back().empty()) path.pop_back();
      DWQA_RETURN_NOT_OK(merged.AddMember(dim.name, path).status());
    }
  }

  // 2. Resolve conflicts per key-complete fact mapping — the same
  // exclusions the FederatedEngine applies at query time.
  std::map<std::string, ConflictResolution> resolutions;
  for (const FactMapping& fm : mapping.facts) {
    DWQA_ASSIGN_OR_RETURN(
        ConflictResolution resolution,
        ResolveConflicts(local, remote, mapping, fm, policy));
    if (quarantine != nullptr) {
      for (const QuarantineRecord& record : resolution.quarantine) {
        quarantine->Add(record);
      }
    }
    local_report.conflicts[fm.local_fact] = resolution.stats;
    resolutions[ToLower(fm.local_fact)] = std::move(resolution);
  }

  // 3. Copy every kept local fact row (surrogate keys unchanged).
  for (const FactDef& fact : local.schema().facts()) {
    DWQA_ASSIGN_OR_RETURN(const Table* ftab, local.FactTable(fact.name));
    auto rit = resolutions.find(ToLower(fact.name));
    const std::set<size_t>* excluded =
        rit == resolutions.end() ? nullptr : &rit->second.local_excluded;
    for (size_t r = 0; r < ftab->row_count(); ++r) {
      if (excluded != nullptr && excluded->count(r)) continue;
      std::vector<MemberId> members;
      for (size_t c = 0; c < fact.roles.size(); ++c) {
        members.push_back(static_cast<MemberId>(ftab->Get(r, c).as_int()));
      }
      std::vector<Value> measures;
      for (size_t m = 0; m < fact.measures.size(); ++m) {
        measures.push_back(ftab->Get(r, fact.roles.size() + m));
      }
      DWQA_RETURN_NOT_OK(merged.InsertFact(fact.name, members, measures));
      ++local_report.local_facts_kept;
    }
  }

  // 4. Register the "(unattributed)" sentinel for every dimension that
  // backs an unmapped local role of a mapped fact: remote facts roll up
  // into the sentinel along those axes instead of dropping them.
  for (const FactMapping& fm : mapping.facts) {
    if (fm.unmapped_local_roles.empty()) continue;
    DWQA_ASSIGN_OR_RETURN(const FactDef* lf,
                          local.schema().FindFact(fm.local_fact));
    for (const std::string& role : fm.unmapped_local_roles) {
      DWQA_ASSIGN_OR_RETURN(size_t ri, lf->RoleIndex(role));
      const std::string& dim_name = lf->roles[ri].dimension;
      DWQA_ASSIGN_OR_RETURN(const DimensionDef* dim,
                            local.schema().FindDimension(dim_name));
      std::vector<std::string> path(dim->levels.size(), kUnattributedMember);
      DWQA_RETURN_NOT_OK(merged.AddMember(dim_name, path).status());
    }
  }

  // 5. Translate remote-only members of every mapped dimension whose base
  // levels aligned: mapped local levels take the remote value, unmapped
  // local levels stay null.
  for (const DimensionMapping& dm : mapping.dimensions) {
    DWQA_ASSIGN_OR_RETURN(const DimensionDef* ld,
                          local.schema().FindDimension(dm.local_dimension));
    DWQA_ASSIGN_OR_RETURN(
        const DimensionDef* rd,
        remote.schema().FindDimension(dm.remote_dimension));
    const LevelMapping* base = dm.FindLocalLevel(ld->levels.front().name);
    if (base == nullptr ||
        ToLower(base->remote_level) != ToLower(rd->levels.front().name)) {
      local_report.notes.push_back(
          "dimension '" + dm.local_dimension +
          "': base levels did not align — remote members not merged");
      continue;
    }
    DWQA_ASSIGN_OR_RETURN(const Table* rdtab,
                          remote.DimensionTable(dm.remote_dimension));
    for (size_t r = 0; r < rdtab->row_count(); ++r) {
      std::string base_value = rdtab->Get(r, 0).ToString();
      if (base_value.empty()) continue;
      if (dm.member_map.count(ToLower(base_value))) continue;  // Shared.
      std::vector<std::string> path;
      for (const LevelDef& level : ld->levels) {
        const LevelMapping* lm = dm.FindLocalLevel(level.name);
        if (lm == nullptr) {
          path.push_back("");
          continue;
        }
        DWQA_ASSIGN_OR_RETURN(
            std::string v,
            remote.MemberLevelValue(dm.remote_dimension,
                                    static_cast<MemberId>(r),
                                    lm->remote_level));
        path.push_back(std::move(v));
      }
      while (!path.empty() && path.back().empty()) path.pop_back();
      DWQA_RETURN_NOT_OK(merged.AddMember(dm.local_dimension, path).status());
    }
  }

  // 6. Insert every kept remote fact row, members translated through the
  // member maps (or the sentinel) and measures converted into local units.
  for (const FactMapping& fm : mapping.facts) {
    DWQA_ASSIGN_OR_RETURN(const FactDef* lf,
                          local.schema().FindFact(fm.local_fact));
    DWQA_ASSIGN_OR_RETURN(const FactDef* rf,
                          remote.schema().FindFact(fm.remote_fact));
    DWQA_ASSIGN_OR_RETURN(const Table* rtab,
                          remote.FactTable(fm.remote_fact));
    const ConflictResolution& resolution =
        resolutions[ToLower(fm.local_fact)];
    for (size_t r = 0; r < rtab->row_count(); ++r) {
      if (resolution.remote_excluded.count(r)) continue;
      std::vector<MemberId> members;
      bool resolvable = true;
      for (const DimRole& role : lf->roles) {
        const std::string& dim_name = role.dimension;
        const RoleMapping* rm = fm.FindLocalRole(role.role);
        if (rm == nullptr) {
          DWQA_ASSIGN_OR_RETURN(
              MemberId sentinel,
              merged.FindMember(dim_name, kUnattributedMember));
          members.push_back(sentinel);
          continue;
        }
        DWQA_ASSIGN_OR_RETURN(size_t rri, rf->RoleIndex(rm->remote_role));
        MemberId remote_member =
            static_cast<MemberId>(rtab->Get(r, rri).as_int());
        DWQA_ASSIGN_OR_RETURN(
            const DimensionDef* rd,
            remote.schema().FindDimension(rf->roles[rri].dimension));
        DWQA_ASSIGN_OR_RETURN(
            std::string base_value,
            remote.MemberLevelValue(rf->roles[rri].dimension, remote_member,
                                    rd->levels.front().name));
        const DimensionMapping* dm = mapping.FindLocalDimension(dim_name);
        if (dm != nullptr) {
          auto it = dm->member_map.find(ToLower(base_value));
          if (it != dm->member_map.end()) base_value = it->second;
        }
        auto found = merged.FindMember(dim_name, base_value);
        if (!found.ok()) {
          resolvable = false;
          break;
        }
        members.push_back(*found);
      }
      if (!resolvable) {
        local_report.notes.push_back(
            "fact '" + fm.remote_fact + "' row " + std::to_string(r) +
            ": a remote member could not be translated — row skipped");
        continue;
      }
      std::vector<Value> measures;
      for (const MeasureDef& md : lf->measures) {
        const MeasureMapping* mm = fm.FindLocalMeasure(md.name);
        DWQA_ASSIGN_OR_RETURN(size_t rmi, rf->MeasureIndex(mm->remote_measure));
        double v = rtab->column(rf->roles.size() + rmi).GetDouble(r);
        measures.push_back(Value(v * mm->conversion));
      }
      DWQA_RETURN_NOT_OK(
          merged.InsertFact(fm.local_fact, members, measures));
      ++local_report.remote_facts_merged;
    }
  }

  for (const FactDef& rfact : remote.schema().facts()) {
    bool mapped = false;
    for (const FactMapping& fm : mapping.facts) {
      if (ToLower(fm.remote_fact) == ToLower(rfact.name)) mapped = true;
    }
    if (!mapped) {
      local_report.notes.push_back("remote fact '" + rfact.name +
                                   "' has no mapping — not merged");
    }
  }

  size_t merged_member_rows = 0;
  for (const DimensionDef& dim : merged.schema().dimensions()) {
    DWQA_ASSIGN_OR_RETURN(const Table* dtab,
                          merged.DimensionTable(dim.name));
    merged_member_rows += dtab->row_count();
  }
  local_report.members_added = merged_member_rows - local_member_rows;

  if (report != nullptr) *report = std::move(local_report);
  return merged;
}

}  // namespace fed
}  // namespace dw
}  // namespace dwqa
