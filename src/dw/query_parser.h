#ifndef DWQA_DW_QUERY_PARSER_H_
#define DWQA_DW_QUERY_PARSER_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "dw/olap.h"

namespace dwqa {
namespace dw {

/// \brief Parser for a small textual OLAP query language over the
/// warehouse — the "set of queries" interface the paper's §3 assumes the
/// analyst poses against the multidimensional schema.
///
/// Grammar (case-insensitive keywords; identifiers may be quoted with
/// double quotes when they contain spaces):
///
///   query  := SELECT aggs FROM fact [BY axes] [WHERE preds]
///             [HAVING hpreds]
///   aggs   := agg(measure) {"," agg(measure)}
///   agg    := SUM | COUNT | AVG | MIN | MAX
///   axes   := role "." level {"," role "." level}
///   preds  := pred {AND pred}
///   pred   := role "." level ("=" value | IN "(" value {"," value} ")")
///   hpreds := hpred {AND hpred}
///   hpred  := agg(measure) op number        — must match a selected
///             aggregation; op ∈ { < , <= , > , >= , = }
///
/// Examples:
///   SELECT SUM(Tickets) FROM LastMinuteSales BY destination.City
///   SELECT AVG(Price), SUM(Tickets) FROM LastMinuteSales
///     BY destination.Country, date.Year
///     WHERE destination.Country IN (Spain, France) AND date.Year = 2004
///
/// The parser is purely syntactic; name resolution happens when the query
/// executes against a Warehouse (OlapEngine::Execute).
class QueryParser {
 public:
  static Result<OlapQuery> Parse(std::string_view text);
};

}  // namespace dw
}  // namespace dwqa

#endif  // DWQA_DW_QUERY_PARSER_H_
