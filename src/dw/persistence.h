#ifndef DWQA_DW_PERSISTENCE_H_
#define DWQA_DW_PERSISTENCE_H_

#include <string>

#include "common/io.h"
#include "common/result.h"
#include "dw/warehouse.h"

namespace dwqa {
namespace dw {

/// \brief Text serialization of a multidimensional schema.
///
/// Line-based, tab-separated (names may contain spaces but not tabs):
///
///   dimension<TAB>Airport
///   level<TAB>Airport
///   level<TAB>City
///   fact<TAB>LastMinuteSales
///   role<TAB>destination<TAB>Airport
///   measure<TAB>Price<TAB>double<TAB>SUM
class SchemaSerde {
 public:
  static std::string ToText(const MdSchema& schema);
  static Result<MdSchema> FromText(const std::string& text);
};

/// \brief Directory-based warehouse persistence.
///
/// Layout: `schema.txt` plus one denormalized CSV per fact
/// (`fact_<Name>.csv`, the CsvEtl format) and one CSV per dimension table
/// (`dim_<Name>.csv`, so members without facts survive). Load rebuilds the
/// warehouse; surrogate keys are reassigned but all level values, member
/// sets and fact rows round-trip exactly.
///
/// All I/O goes through a common/io Fs (null = the real filesystem) so the
/// crash-point harness can interpose. Each file is written atomically
/// (temp + fsync + rename): a crash mid-save leaves every file either its
/// old or its new version, never a torn half-write.
class WarehousePersistence {
 public:
  static Status Save(const Warehouse& warehouse, const std::string& dir,
                     Fs* fs = nullptr);
  static Result<Warehouse> Load(const std::string& dir, Fs* fs = nullptr);
};

}  // namespace dw
}  // namespace dwqa

#endif  // DWQA_DW_PERSISTENCE_H_
