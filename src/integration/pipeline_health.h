#ifndef DWQA_INTEGRATION_PIPELINE_HEALTH_H_
#define DWQA_INTEGRATION_PIPELINE_HEALTH_H_

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "common/circuit_breaker.h"
#include "common/deadline.h"
#include "common/metrics.h"

namespace dwqa {
namespace integration {

/// \brief Snapshot of one circuit breaker for the health summary.
struct BreakerHealth {
  std::string name;
  std::string state;
  size_t opens = 0;
  size_t rejected = 0;
  size_t failures = 0;
};

/// \brief Operational summary of a feed run: budget spent per stage,
/// breaker states, degradation mix. Rendered as a table by bench_degradation
/// and printable from any FeedReport.
struct PipelineHealth {
  /// \name Deadline budget
  /// @{
  double budget_limit = 0.0;  ///< +inf when no deadline is configured.
  double budget_spent = 0.0;
  bool deadline_exhausted = false;
  /// Stage that first hit the exhausted budget ("" when none did).
  std::string deadline_stage;
  /// Units charged per stage ("web.fetch", "qa.extraction", ...).
  std::map<std::string, double> spent_by_stage;
  /// @}

  /// \name Circuit breakers
  /// @{
  std::vector<BreakerHealth> breakers;
  size_t breakers_open = 0;
  /// Admissions the breakers refused (facts quarantined as kCircuitOpen,
  /// questions skipped).
  size_t breaker_rejections = 0;
  /// @}

  /// \name Degradation mix
  /// @{
  /// Answered questions per DegradationLevel name.
  std::map<std::string, size_t> questions_by_degradation;
  /// @}

  /// Retry attempts beyond the first on operations that ultimately failed
  /// — the waste a breaker exists to cut.
  size_t wasted_retries = 0;

  /// Populates the budget and breaker sections from the live objects.
  void Capture(const Deadline& deadline,
               const CircuitBreakerRegistry& breakers_registry);

  /// Same, plus the registry-backed sections: breaker_rejections,
  /// wasted_retries and questions_by_degradation become thin views over the
  /// `dwqa_breaker_rejections_total`, `dwqa_feed_wasted_retries_total` and
  /// `dwqa_feed_questions_by_level_total` families, so a health snapshot
  /// taken outside RunStep5 (IntegrationPipeline::Health) reports the same
  /// cumulative numbers the exporters do.
  void Capture(const Deadline& deadline,
               const CircuitBreakerRegistry& breakers_registry,
               const MetricRegistry& metrics);

  /// Renders the summary as one aligned table (common/table_printer).
  std::string RenderTable() const;
};

}  // namespace integration
}  // namespace dwqa

#endif  // DWQA_INTEGRATION_PIPELINE_HEALTH_H_
