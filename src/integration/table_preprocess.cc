#include "integration/table_preprocess.h"

#include <vector>

#include "common/string_util.h"
#include "ir/html.h"

namespace dwqa {
namespace integration {

namespace {

enum class ColumnRole { kDate, kTemperatureHigh, kTemperatureLow,
                        kTemperature, kCondition, kOther };

ColumnRole ClassifyHeader(const std::string& header) {
  std::string h = ToLower(header);
  bool temp = h.find("temp") != std::string::npos ||
              h.find("\xC2\xBA") != std::string::npos ||
              h.find("celsius") != std::string::npos ||
              h.find("fahrenheit") != std::string::npos;
  if (h.find("high") != std::string::npos && temp) {
    return ColumnRole::kTemperatureHigh;
  }
  if (h.find("low") != std::string::npos && temp) {
    return ColumnRole::kTemperatureLow;
  }
  if (temp) return ColumnRole::kTemperature;
  if (h.find("date") != std::string::npos ||
      h.find("day") != std::string::npos) {
    return ColumnRole::kDate;
  }
  if (h.find("condition") != std::string::npos ||
      h.find("sky") != std::string::npos ||
      h.find("weather") != std::string::npos) {
    return ColumnRole::kCondition;
  }
  return ColumnRole::kOther;
}

/// The unit promised by a header like "High (ºC)".
std::string HeaderUnit(const std::string& header) {
  std::string h = ToLower(header);
  if (h.find("f)") != std::string::npos ||
      h.find("fahrenheit") != std::string::npos) {
    return "F";
  }
  return "\xC2\xBA\x43";  // Default Celsius, as in the Figure 5 table.
}

/// The numeric part of a cell ("12º" → "12"); empty when there is none.
std::string CellNumber(const std::string& cell) {
  std::string out;
  for (char c : cell) {
    if ((c >= '0' && c <= '9') || c == '.' ||
        (out.empty() && (c == '-' || c == '+'))) {
      out += c;
    } else if (!out.empty()) {
      break;
    }
  }
  return out;
}

}  // namespace

std::string TablePreprocessor::operator()(const ir::Document& doc) const {
  if (doc.format == ir::DocFormat::kPlainText) return doc.raw;
  std::vector<ir::HtmlTable> tables = ir::Html::ExtractTables(doc.raw);
  // The prose rewrites *replace* the table markup: stripping the raw rows
  // too would reintroduce the unit-less numbers the rewrite fixes.
  std::string without_tables;
  {
    std::string lower = ToLower(doc.raw);
    size_t pos = 0;
    while (pos < doc.raw.size()) {
      size_t tstart = lower.find("<table", pos);
      if (tstart == std::string::npos) {
        without_tables.append(doc.raw, pos, std::string::npos);
        break;
      }
      without_tables.append(doc.raw, pos, tstart - pos);
      size_t tend = lower.find("</table>", tstart);
      if (tend == std::string::npos) break;
      pos = tend + 8;
    }
  }
  std::string out = ir::Html::StripTags(without_tables);
  for (const ir::HtmlTable& table : tables) {
    if (!table.has_header || table.rows.size() < 2) continue;
    const std::vector<std::string>& header = table.rows.front();
    std::vector<ColumnRole> roles;
    for (const std::string& h : header) roles.push_back(ClassifyHeader(h));
    for (size_t r = 1; r < table.rows.size(); ++r) {
      const std::vector<std::string>& row = table.rows[r];
      std::string date_text;
      std::vector<std::string> clauses;
      for (size_t c = 0; c < row.size() && c < roles.size(); ++c) {
        switch (roles[c]) {
          case ColumnRole::kDate:
            date_text = row[c];
            break;
          case ColumnRole::kTemperatureHigh: {
            std::string num = CellNumber(row[c]);
            if (!num.empty()) {
              clauses.push_back("the high temperature was " + num + " " +
                                HeaderUnit(header[c]));
            }
            break;
          }
          case ColumnRole::kTemperatureLow: {
            std::string num = CellNumber(row[c]);
            if (!num.empty()) {
              clauses.push_back("the low temperature was " + num + " " +
                                HeaderUnit(header[c]));
            }
            break;
          }
          case ColumnRole::kTemperature: {
            std::string num = CellNumber(row[c]);
            if (!num.empty()) {
              clauses.push_back("the temperature was " + num + " " +
                                HeaderUnit(header[c]));
            }
            break;
          }
          case ColumnRole::kCondition:
            clauses.push_back("the sky condition was " + row[c]);
            break;
          case ColumnRole::kOther:
            break;
        }
      }
      if (clauses.empty()) continue;
      std::string sentence;
      if (!date_text.empty()) sentence += "On " + date_text + ", ";
      sentence += Join(clauses, " and ");
      sentence += ".";
      out += "\n" + sentence;
    }
  }
  return out;
}

}  // namespace integration
}  // namespace dwqa
