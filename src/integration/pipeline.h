#ifndef DWQA_INTEGRATION_PIPELINE_H_
#define DWQA_INTEGRATION_PIPELINE_H_

#include <limits>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/circuit_breaker.h"
#include "common/deadline.h"
#include "common/fault.h"
#include "common/metrics.h"
#include "common/result.h"
#include "common/retry.h"
#include "common/trace.h"
#include "dw/federation/federated_engine.h"
#include "dw/quarantine.h"
#include "dw/wal.h"
#include "dw/warehouse.h"
#include "integration/feed_checkpoint.h"
#include "integration/pipeline_health.h"
#include "ir/document.h"
#include "ontology/merge.h"
#include "ontology/ontology.h"
#include "ontology/uml_model.h"
#include "qa/aliqan.h"
#include "qa/fact_validator.h"
#include "qa/structured.h"

namespace dwqa {
namespace integration {

/// \brief Both exporter renderings of one MetricRegistry snapshot, produced
/// by IntegrationPipeline::DumpMetrics (and teed into BENCH_phase3.json by
/// bench_degradation).
struct MetricsDump {
  /// Prometheus text exposition format.
  std::string prometheus;
  /// `{"schema": "dwqa-metrics-v1", "metrics": [...]}`.
  std::string json;
};

/// \brief One recorded Step-5 question trace: the question text plus the
/// span tree its processing produced.
struct QuestionTrace {
  std::string question;
  /// The recorder holding the spans (unique_ptr: TraceRecorder owns a
  /// mutex and is therefore not movable itself).
  std::unique_ptr<TraceRecorder> recorder;
};

/// \brief Crash-safe durability of the Step-5 feed (dw/wal.h,
/// dw/snapshot.h, dw/recovery.h).
///
/// When `dir` is set, every fact that survives validation, dedup and
/// breaker admission is appended to the write-ahead log *before* it
/// touches the ETL: a crash at any point loses at most the unacknowledged
/// tail, and Recovery::Open restores the warehouse to exactly the
/// acknowledged fact set. FlushDurability() (called by QaServer::Drain and
/// available to embedders) syncs the log, cuts an atomic snapshot and
/// drops the WAL segments the snapshot covers.
struct DurabilityConfig {
  /// Durability root (WAL segments + snapshot directories). Empty (the
  /// default) disables the WAL entirely — zero cost for feeds that do not
  /// need crash safety.
  std::string dir;
  /// Segment rotation threshold, forwarded to dw::WalOptions.
  size_t wal_segment_bytes = 64 * 1024;
  /// fsync after every append (the crash-safety default). Turning this off
  /// trades the tail of the log for throughput.
  bool sync_each_append = true;
  /// Cut a snapshot (and garbage-collect covered WAL segments) on
  /// FlushDurability. Off leaves flush = sync only.
  bool snapshot_on_flush = true;
  /// All durability I/O goes through this Fs (null = real filesystem) so
  /// the crash-point harness can interpose.
  Fs* fs = nullptr;
};

/// \brief Resilience of the Step-5 feed: how the pipeline survives an
/// unreliable web, implausible extractions and mid-run crashes.
struct ResilienceConfig {
  /// Injected faults (tests/benches). Default: no rules, nothing fires.
  FaultConfig fault;
  /// Retry schedule for the transient fault points (corpus indexation,
  /// per-question fetch/ask, per-record ETL load).
  RetryPolicy retry;
  /// Gate facts through the Step-4 axiom validator; failures go to the
  /// quarantine with a typed RejectReason instead of being dropped.
  bool validate_facts = true;
  /// Per-attribute admission rules layered over the ontology-derived ones —
  /// the feed boundary may be stricter than the extraction-side axioms
  /// (e.g. a warehouse that only accepts a narrower interval than the QA
  /// system extracts).
  std::map<std::string, qa::AttributeRule> validator_rules;
  /// When non-empty, RunStep5 persists a FeedCheckpoint here after every
  /// `checkpoint_every` questions and resumes from it when the file
  /// already exists.
  std::string checkpoint_path;
  size_t checkpoint_every = 1;
  /// Circuit breakers per fault point and per source URL (off by default —
  /// a disabled breaker admits everything and never trips).
  BreakerConfig breaker;
  /// Shared attempt/cost budget across indexation, ask and load
  /// (unlimited by default).
  DeadlineConfig deadline;
  /// Forwarded to the fact validator: facts whose extraction confidence is
  /// below this floor are quarantined (kBelowConfidenceFloor). The default
  /// (-inf) admits everything, degraded-ladder answers included.
  double confidence_floor = -std::numeric_limits<double>::infinity();
  /// Write-ahead logging + snapshots of the feed (off unless dir is set).
  DurabilityConfig durability;
};

/// \brief Configuration of the five-step integration.
struct PipelineConfig {
  /// Step 2 on/off — the enrichment ablation of bench_ontology_enrichment.
  bool enrich_with_dw_contents = true;
  ontology::MergeOptions merge;
  qa::AliQAnConfig qa;
  /// Plug the table-aware page preprocessor (the paper's §5 future work) —
  /// the ablation of bench_fig5_table_extraction.
  bool table_preprocess = false;
  /// Alternative names per dimension member, keyed by lowercase member name
  /// — DW metadata like "JFK" ↔ "Kennedy International Airport" that Step 2
  /// registers as ontology aliases (so the Step-3 merge can link them to
  /// upper-ontology instances).
  std::map<std::string, std::vector<std::string>> member_aliases;
  /// Deduplicate the Step-5 feed: an (attribute, location, date) key is
  /// loaded at most once across all RunStep5 calls of this pipeline, so
  /// re-asking (or overlapping month questions) does not double facts in
  /// the warehouse.
  bool dedup_feed = true;
  /// Worker threads for the batched Step-5 ask phase. 1 (the default) is
  /// the serial loop; N > 1 speculatively answers the batch's questions on
  /// a pool (AliQAn::AskWith against private deadline ledgers) while fault
  /// draws, retries, breaker admission, validation, dedup, ETL and
  /// checkpointing all stay serialized in question order at a single merge
  /// point — so FeedReport accounting and chaos semantics are byte-for-byte
  /// those of the serial run. Ignored — with a log line — under a finite
  /// deadline budget (mid-batch exhaustion is order-dependent).
  size_t parallel_questions = 1;
  /// When true, RunStep5 records one trace tree per processed question
  /// (step5.question → qa.ask → analysis/retrieval/extraction → per-fact
  /// validate/load spans), retrievable via question_traces() /
  /// RenderTraces(). Off by default — tracing allocates per question.
  bool trace_questions = false;
  ResilienceConfig resilience;
};

/// \brief Counters of one Step-5 feed run.
///
/// Accounting identity: every extracted fact ends up in exactly one bucket,
/// `facts_extracted == rows_loaded + rows_deduplicated + rows_quarantined`.
struct FeedReport {
  size_t questions_asked = 0;
  size_t questions_answered = 0;
  /// Questions whose retry budget ran out (transient faults outlasted the
  /// RetryPolicy) or that failed permanently; not marked completed, so a
  /// checkpointed resume re-asks them.
  size_t questions_failed = 0;
  /// Questions skipped because a loaded checkpoint marks them completed.
  size_t questions_resumed = 0;
  size_t facts_extracted = 0;
  size_t rows_loaded = 0;
  /// ETL-layer refusals (a subset of rows_quarantined: those facts land in
  /// the quarantine with reason EtlRejected/TransientExhausted).
  size_t rows_rejected = 0;
  /// Facts skipped because their (attribute, location, date) key was
  /// already fed (PipelineConfig::dedup_feed).
  size_t rows_deduplicated = 0;
  /// Facts diverted to the QuarantineStore (axiom violations + ETL
  /// refusals), never silently dropped.
  size_t rows_quarantined = 0;
  std::map<qa::RejectReason, size_t> quarantined_by_reason;
  /// Extra attempts spent on transient faults across ask + ETL calls.
  size_t retries = 0;
  /// Transient failures observed (each either masked by a retry or ending
  /// in questions_failed / TransientExhausted quarantine).
  size_t transient_failures = 0;
  /// Retries the last IndexCorpus call needed (informational).
  size_t corpus_index_retries = 0;
  /// Boundary checkpoint saves that failed (logged, retried at the next
  /// boundary; only a failed *final* save fails the run).
  size_t checkpoint_failures = 0;
  /// Retry attempts beyond the first on operations that ultimately failed
  /// — the waste the circuit breaker exists to cut.
  size_t wasted_retries = 0;
  /// Admissions refused by an open breaker (questions skipped + facts
  /// quarantined with kCircuitOpen).
  size_t breaker_rejections = 0;
  /// Questions skipped (not asked, not completed) because the deadline
  /// budget was already exhausted; a checkpointed resume re-asks them.
  size_t questions_deadline_skipped = 0;
  /// The shared deadline budget ran out at some point of this run.
  bool deadline_exhausted = false;
  /// Asked-and-answered questions per ladder rung (qa/degradation.h).
  std::map<qa::DegradationLevel, size_t> questions_by_degradation;
  /// Every extracted fact with its disposition
  /// (loaded/deduplicated/quarantined/rejected) — the full audit trail, not
  /// just the loaded rows.
  std::vector<qa::StructuredFact> facts;
  /// Operational summary (budget per stage, breaker states).
  PipelineHealth health;
};

/// \brief The paper's contribution: the ontology-mediated DW ⇄ QA
/// integration, as the five semi-automatic steps of §3.
///
///  1. `RunStep1` — domain ontology from the DW's UML model;
///  2. `RunStep2` — enrich it with the DW contents (dimension members);
///  3. `RunStep3` — merge into the QA system's upper ontology (mini-WordNet);
///  4. `RunStep4` — tune the QA system: temperature/price axioms
///     ("a temperature is a number followed by the scale, the right
///     temperature intervals, the conversion formulae");
///  5. `RunStep5` — pose questions, structure the answers and feed the DW.
///
/// `RunAll` executes 1–4 and indexes the corpus; Step 5 runs per question
/// batch.
class IntegrationPipeline {
 public:
  /// `warehouse` and `uml` must outlive the pipeline.
  IntegrationPipeline(dw::Warehouse* warehouse,
                      const ontology::UmlModel* uml,
                      PipelineConfig config = {});

  Status RunStep1();
  Status RunStep2();
  Status RunStep3();
  Status RunStep4();

  /// Indexes the unstructured corpus with the (merged) ontology-backed QA
  /// system. Must run after Step 3 (the QA system needs the merged
  /// ontology). `docs` must outlive the pipeline.
  Status IndexCorpus(const ir::DocumentStore* docs);

  /// Incremental ingest: indexes every document appended to the store
  /// since IndexCorpus (or the previous ingest) — an append into the QA
  /// system's segmented indexes, cost proportional to the new documents
  /// only. Returns the number of documents ingested; they are answerable
  /// by Ask/RunStep5 on return.
  Result<size_t> IngestNewDocuments();

  /// Steps 1–4 plus corpus indexation.
  Status RunAll(const ir::DocumentStore* docs);

  /// Step 5: asks each question, converts answers to structured facts and
  /// loads them into `fact_name` (roles: location/City, day/Date,
  /// source/Source; measure = the fact value). `attribute` labels the
  /// extracted measure ("temperature").
  Result<FeedReport> RunStep5(const std::vector<std::string>& questions,
                              const std::string& fact_name,
                              const std::string& attribute,
                              size_t answers_per_question = 31);

  /// \name Checkpoint/resume of the Step-5 feed
  /// @{
  /// Snapshot of the feed progress (completed questions, fed keys,
  /// cumulative reject counters, rows loaded).
  FeedCheckpoint MakeFeedCheckpoint() const;
  /// Persists MakeFeedCheckpoint() to `path` (atomic replace).
  Status SaveFeedCheckpoint(const std::string& path) const;
  /// Restores feed progress from `path`: completed questions are skipped
  /// by subsequent RunStep5 calls and restored fed keys dedup against the
  /// rows the interrupted run already loaded. When the WAL is enabled, a
  /// checkpoint whose recorded WAL position exceeds the log's LSN is
  /// rejected with OutOfRange (ValidateCheckpointAgainstLsn) — it claims
  /// progress the durable data does not back.
  Status LoadFeedCheckpoint(const std::string& path);
  /// @}

  /// \name Durability (ResilienceConfig::durability)
  /// @{
  /// Syncs the WAL and, when snapshot_on_flush, cuts an atomic snapshot at
  /// the current LSN and drops the WAL segments it covers. No-op (OK) when
  /// durability is disabled.
  Status FlushDurability();
  /// Highest LSN the WAL has acknowledged (0 when durability is disabled
  /// or the WAL has not been opened yet).
  uint64_t wal_last_lsn() const { return wal_ ? wal_->last_lsn() : 0; }
  /// @}

  /// \name Introspection for benches/tests
  /// @{
  const ontology::Ontology& domain_ontology() const { return domain_; }
  const ontology::Ontology& merged_ontology() const { return merged_; }
  const ontology::MergeReport& merge_report() const { return merge_report_; }
  qa::AliQAn* aliqan() { return aliqan_.get(); }
  const dw::Warehouse& warehouse() const { return *wh_; }
  bool step_done(int step) const { return steps_done_[size_t(step - 1)]; }
  /// Dead-letter store of the facts rejected by validation or the ETL.
  const dw::QuarantineStore& quarantine() const { return quarantine_; }
  dw::QuarantineStore* mutable_quarantine() { return &quarantine_; }
  const FaultInjector& fault_injector() const { return fault_; }
  const CircuitBreakerRegistry& breakers() const { return breakers_; }
  const Deadline& deadline() const { return deadline_; }
  /// Snapshot of budget + breaker state right now (RunStep5 also embeds
  /// one, with the feed counters filled in, in FeedReport::health).
  PipelineHealth Health() const;
  /// @}

  /// \name Federation (dw/federation)
  /// @{
  /// Attaches a federated query engine whose local member is this
  /// pipeline's warehouse (caller-owned, must outlive the pipeline). The
  /// BI layer and the serving `bi` endpoint route `scope=federated`
  /// requests through it; nothing else changes when none is attached.
  void AttachFederation(dw::fed::FederatedEngine* federation) {
    federation_ = federation;
  }
  /// The attached federation engine (null when the tenant has none).
  dw::fed::FederatedEngine* federation() const { return federation_; }
  /// @}

  /// \name Observability
  /// @{
  /// The pipeline-wide metrics registry. Every component the pipeline owns
  /// (deadline, breakers, QA engine, both IR indexes, the Step-5 feed)
  /// records into it; tests and benches may register their own series too.
  MetricRegistry* metrics() { return &metrics_; }
  const MetricRegistry& metrics() const { return metrics_; }
  /// Renders the current registry contents through both exporters.
  MetricsDump DumpMetrics() const;
  /// Traces recorded by RunStep5 (empty unless
  /// PipelineConfig::trace_questions is set). Cleared at the start of each
  /// RunStep5 call, so they describe the last run.
  const std::vector<QuestionTrace>& question_traces() const {
    return traces_;
  }
  /// Flame-style rendering of every recorded trace, one block per question.
  std::string RenderTraces() const;
  /// @}

 private:
  /// Diverts `fact` to the quarantine and updates the report counters.
  void QuarantineFact(const qa::StructuredFact& fact,
                      qa::RejectReason reason, const std::string& detail,
                      FeedReport* report);

  /// Opens the WAL on first use (durability.dir set, wal_ still null).
  Status EnsureWalOpen();

  dw::Warehouse* wh_;
  const ontology::UmlModel* uml_;
  PipelineConfig config_;
  /// Federated query engine over this warehouse + mapped partners
  /// (caller-owned; null = tenant is not federated).
  dw::fed::FederatedEngine* federation_ = nullptr;
  /// Declared before the components that hold a pointer to it (breakers,
  /// deadline, QA engine) so it outlives them all.
  MetricRegistry metrics_;
  /// Per-question trace trees of the last RunStep5 (trace_questions only).
  std::vector<QuestionTrace> traces_;

  ontology::Ontology domain_;
  ontology::Ontology merged_;
  ontology::MergeReport merge_report_;
  std::unique_ptr<qa::AliQAn> aliqan_;
  /// (attribute|location|date) keys already loaded (dedup_feed).
  std::set<std::string> fed_keys_;
  bool steps_done_[5] = {false, false, false, false, false};

  /// \name Resilience state
  /// @{
  FaultInjector fault_;
  /// One breaker per fault point plus one per source URL, lazily created.
  CircuitBreakerRegistry breakers_;
  /// Shared cost budget across indexation, ask and load.
  Deadline deadline_;
  /// Result of validating ResilienceConfig at construction; checked at the
  /// entry of every Run* method (constructors cannot return Status).
  Status config_status_;
  qa::FactValidator validator_;
  dw::QuarantineStore quarantine_;
  /// Questions fully processed (asked, answered or empty, facts settled).
  std::set<std::string> completed_questions_;
  /// Cumulative rejects per RejectReason name, surviving resume.
  std::map<std::string, size_t> reject_counts_;
  /// Cumulative rows loaded across resumed runs.
  size_t rows_loaded_total_ = 0;
  size_t corpus_index_retries_ = 0;
  /// Guards against re-loading the checkpoint on every RunStep5 call.
  bool checkpoint_loaded_ = false;
  /// Write-ahead log (null until the first RunStep5 with durability on).
  std::unique_ptr<dw::WalWriter> wal_;
  /// @}
};

}  // namespace integration
}  // namespace dwqa

#endif  // DWQA_INTEGRATION_PIPELINE_H_
