#ifndef DWQA_INTEGRATION_PIPELINE_H_
#define DWQA_INTEGRATION_PIPELINE_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "dw/warehouse.h"
#include "ir/document.h"
#include "ontology/merge.h"
#include "ontology/ontology.h"
#include "ontology/uml_model.h"
#include "qa/aliqan.h"
#include "qa/structured.h"

namespace dwqa {
namespace integration {

/// \brief Configuration of the five-step integration.
struct PipelineConfig {
  /// Step 2 on/off — the enrichment ablation of bench_ontology_enrichment.
  bool enrich_with_dw_contents = true;
  ontology::MergeOptions merge;
  qa::AliQAnConfig qa;
  /// Plug the table-aware page preprocessor (the paper's §5 future work) —
  /// the ablation of bench_fig5_table_extraction.
  bool table_preprocess = false;
  /// Alternative names per dimension member, keyed by lowercase member name
  /// — DW metadata like "JFK" ↔ "Kennedy International Airport" that Step 2
  /// registers as ontology aliases (so the Step-3 merge can link them to
  /// upper-ontology instances).
  std::map<std::string, std::vector<std::string>> member_aliases;
  /// Deduplicate the Step-5 feed: an (attribute, location, date) key is
  /// loaded at most once across all RunStep5 calls of this pipeline, so
  /// re-asking (or overlapping month questions) does not double facts in
  /// the warehouse.
  bool dedup_feed = true;
};

/// \brief Counters of one Step-5 feed run.
struct FeedReport {
  size_t questions_asked = 0;
  size_t questions_answered = 0;
  size_t facts_extracted = 0;
  size_t rows_loaded = 0;
  size_t rows_rejected = 0;
  /// Facts skipped because their (attribute, location, date) key was
  /// already fed (PipelineConfig::dedup_feed).
  size_t rows_deduplicated = 0;
  std::vector<qa::StructuredFact> facts;
};

/// \brief The paper's contribution: the ontology-mediated DW ⇄ QA
/// integration, as the five semi-automatic steps of §3.
///
///  1. `RunStep1` — domain ontology from the DW's UML model;
///  2. `RunStep2` — enrich it with the DW contents (dimension members);
///  3. `RunStep3` — merge into the QA system's upper ontology (mini-WordNet);
///  4. `RunStep4` — tune the QA system: temperature/price axioms
///     ("a temperature is a number followed by the scale, the right
///     temperature intervals, the conversion formulae");
///  5. `RunStep5` — pose questions, structure the answers and feed the DW.
///
/// `RunAll` executes 1–4 and indexes the corpus; Step 5 runs per question
/// batch.
class IntegrationPipeline {
 public:
  /// `warehouse` and `uml` must outlive the pipeline.
  IntegrationPipeline(dw::Warehouse* warehouse,
                      const ontology::UmlModel* uml,
                      PipelineConfig config = {});

  Status RunStep1();
  Status RunStep2();
  Status RunStep3();
  Status RunStep4();

  /// Indexes the unstructured corpus with the (merged) ontology-backed QA
  /// system. Must run after Step 3 (the QA system needs the merged
  /// ontology). `docs` must outlive the pipeline.
  Status IndexCorpus(const ir::DocumentStore* docs);

  /// Steps 1–4 plus corpus indexation.
  Status RunAll(const ir::DocumentStore* docs);

  /// Step 5: asks each question, converts answers to structured facts and
  /// loads them into `fact_name` (roles: location/City, day/Date,
  /// source/Source; measure = the fact value). `attribute` labels the
  /// extracted measure ("temperature").
  Result<FeedReport> RunStep5(const std::vector<std::string>& questions,
                              const std::string& fact_name,
                              const std::string& attribute,
                              size_t answers_per_question = 31);

  /// \name Introspection for benches/tests
  /// @{
  const ontology::Ontology& domain_ontology() const { return domain_; }
  const ontology::Ontology& merged_ontology() const { return merged_; }
  const ontology::MergeReport& merge_report() const { return merge_report_; }
  qa::AliQAn* aliqan() { return aliqan_.get(); }
  const dw::Warehouse& warehouse() const { return *wh_; }
  bool step_done(int step) const { return steps_done_[size_t(step - 1)]; }
  /// @}

 private:
  dw::Warehouse* wh_;
  const ontology::UmlModel* uml_;
  PipelineConfig config_;

  ontology::Ontology domain_;
  ontology::Ontology merged_;
  ontology::MergeReport merge_report_;
  std::unique_ptr<qa::AliQAn> aliqan_;
  /// (attribute|location|date) keys already loaded (dedup_feed).
  std::set<std::string> fed_keys_;
  bool steps_done_[5] = {false, false, false, false, false};
};

}  // namespace integration
}  // namespace dwqa

#endif  // DWQA_INTEGRATION_PIPELINE_H_
