#ifndef DWQA_INTEGRATION_TABLE_PREPROCESS_H_
#define DWQA_INTEGRATION_TABLE_PREPROCESS_H_

#include <string>

#include "ir/document.h"

namespace dwqa {
namespace integration {

/// \brief Table-aware web page preprocessing — the paper's first future-work
/// item (§5): "we will study the pre-processing of web pages in order to
/// handle tables correctly (such as the table in Figure 5)".
///
/// For each HTML table with a header row, the preprocessor interprets the
/// columns by their header names (date-like, temperature-like with the unit
/// in the header, condition-like) and rewrites every data row as a prose
/// sentence — "On January 5, 2004, the high temperature was 12 ºC and the
/// low temperature was 5 ºC." — so the regular prose extraction patterns
/// apply, restoring the measure-unit association the naive tag stripper
/// loses. Non-table content is tag-stripped as usual.
///
/// The functor signature matches qa::AliQAn::Preprocessor.
struct TablePreprocessor {
  std::string operator()(const ir::Document& doc) const;
};

}  // namespace integration
}  // namespace dwqa

#endif  // DWQA_INTEGRATION_TABLE_PREPROCESS_H_
