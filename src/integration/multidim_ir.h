#ifndef DWQA_INTEGRATION_MULTIDIM_IR_H_
#define DWQA_INTEGRATION_MULTIDIM_IR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/date.h"
#include "common/result.h"
#include "dw/olap.h"
#include "dw/warehouse.h"
#include "ir/document.h"
#include "ir/inverted_index.h"
#include "text/analyzed_corpus.h"

namespace dwqa {
namespace integration {

/// \brief Multidimensional IR — the related-work baseline of the paper's
/// §2 (McCabe, Lee, Chowdhury, Grossman & Frieder, SIGIR 2000): an IR
/// system built on a multidimensional database, "where the document
/// collection is categorized by location and time", so that one can
/// retrieve "the documents with the terms 'financial crisis' published
/// during the first quarter of 1998 in New York, and then drill down".
///
/// Documents are registered as facts of an internal star schema
/// (location: City → Country; published: Date → Month → Year) and keyword
/// search is scoped by OLAP-style slice/dice filters on those dimensions.
/// Included to make the paper's comparison concrete: this *scopes* which
/// documents are returned, but still returns documents — only the QA layer
/// turns them into structured tuples.
class MultidimIr {
 public:
  /// Creates the empty document warehouse.
  static Result<MultidimIr> Create();

  /// Shares an analyze-once corpus (e.g. AliQAn's): the internal keyword
  /// index is rebuilt over the corpus's TermDictionary, and AddDocument
  /// reuses each document's cached analysis — analyzing it into `corpus`
  /// first when absent — instead of re-tokenizing. Call before the first
  /// AddDocument; `corpus` must outlive this object.
  Status AttachCorpus(text::AnalyzedCorpus* corpus);

  /// Registers a document with its location/time categorization and
  /// indexes `plain_text` for keyword search.
  Status AddDocument(ir::DocId doc, const std::string& plain_text,
                     const std::string& city, const std::string& country,
                     const Date& published);

  struct Hit {
    ir::DocId doc = ir::kInvalidDoc;
    double score = 0.0;
  };

  /// Keyword search restricted to documents whose dimension members pass
  /// the filters (role "location" levels City/Country; role "published"
  /// levels Date/Month/Year — month values are "YYYY-MM").
  Result<std::vector<Hit>> Search(const std::string& query,
                                  const std::vector<dw::Filter>& filters,
                                  size_t k = 10) const;

  /// Document counts grouped at a hierarchy level (the drill-down /
  /// roll-up view over the collection).
  Result<dw::OlapResult> CountBy(const std::string& role,
                                 const std::string& level,
                                 const std::vector<dw::Filter>& filters =
                                     {}) const;

  size_t document_count() const { return doc_count_; }

 private:
  MultidimIr() = default;

  /// Doc ids whose categorization passes all filters.
  Result<std::vector<ir::DocId>> FilterDocs(
      const std::vector<dw::Filter>& filters) const;

  std::unique_ptr<dw::Warehouse> wh_;
  /// Borrowed analyze-once corpus; null = self-contained tokenization.
  text::AnalyzedCorpus* corpus_ = nullptr;
  ir::InvertedIndex index_;
  size_t doc_count_ = 0;
};

}  // namespace integration
}  // namespace dwqa

#endif  // DWQA_INTEGRATION_MULTIDIM_IR_H_
