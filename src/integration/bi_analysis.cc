#include "integration/bi_analysis.h"

#include <cmath>
#include <map>

#include "common/string_util.h"
#include "dw/olap.h"

namespace dwqa {
namespace integration {

Result<BiReport> BiAnalysis::SalesVsTemperature(
    const dw::Warehouse& wh, const std::string& sales_fact,
    const std::string& weather_fact, double bucket_width_c) {
  if (bucket_width_c <= 0.0) {
    return Status::InvalidArgument("bucket width must be positive");
  }
  dw::OlapEngine engine(&wh);

  // Daily tickets per destination city.
  dw::OlapQuery sales_q;
  sales_q.fact = sales_fact;
  sales_q.measures = {{"Tickets", dw::AggFn::kSum}};
  sales_q.group_by = {{"destination", "City"}, {"date", "Date"}};
  DWQA_ASSIGN_OR_RETURN(dw::OlapResult sales, engine.Execute(sales_q));

  // Daily temperature per city from the QA-fed Weather fact (average of
  // the extracted tuples for that day).
  dw::OlapQuery weather_q;
  weather_q.fact = weather_fact;
  weather_q.measures = {{"TemperatureC", dw::AggFn::kAvg}};
  weather_q.group_by = {{"location", "City"}, {"day", "Date"}};
  DWQA_ASSIGN_OR_RETURN(dw::OlapResult weather, engine.Execute(weather_q));

  std::map<std::pair<std::string, std::string>, double> temp_by_city_day;
  for (const auto& row : weather.rows) {
    temp_by_city_day[{ToLower(row[0].ToString()), row[1].ToString()}] =
        row[2].ToDouble();
  }

  // Join and bucket.
  std::map<int64_t, TempRangeStat> buckets;
  double sum_t = 0, sum_k = 0, sum_tt = 0, sum_kk = 0, sum_tk = 0;
  size_t n = 0;
  for (const auto& row : sales.rows) {
    auto it = temp_by_city_day.find(
        {ToLower(row[0].ToString()), row[1].ToString()});
    if (it == temp_by_city_day.end()) continue;
    double temp = it->second;
    double tickets = row[2].ToDouble();
    int64_t bucket = static_cast<int64_t>(
        std::floor(temp / bucket_width_c));
    TempRangeStat& stat = buckets[bucket];
    stat.low_c = static_cast<double>(bucket) * bucket_width_c;
    stat.high_c = stat.low_c + bucket_width_c;
    stat.avg_tickets += tickets;  // Sum for now; divided below.
    ++stat.observations;
    sum_t += temp;
    sum_k += tickets;
    sum_tt += temp * temp;
    sum_kk += tickets * tickets;
    sum_tk += temp * tickets;
    ++n;
  }
  if (n == 0) {
    return Status::NotFound(
        "no (city, day) pairs joined between '" + sales_fact + "' and '" +
        weather_fact + "' — has Step 5 fed the warehouse?");
  }

  BiReport report;
  report.joined_days = n;
  for (auto& [bucket, stat] : buckets) {
    stat.avg_tickets /= static_cast<double>(stat.observations);
    report.ranges.push_back(stat);
  }
  report.best = report.ranges.front();
  for (const TempRangeStat& s : report.ranges) {
    // Prefer well-supported buckets (≥ 3 observations) over outliers.
    bool better = s.avg_tickets > report.best.avg_tickets;
    if (report.best.observations >= 3 && s.observations < 3) better = false;
    if (report.best.observations < 3 && s.observations >= 3 &&
        s.avg_tickets > 0) {
      better = true;
    }
    if (better) report.best = s;
  }
  double dn = static_cast<double>(n);
  double cov = sum_tk / dn - (sum_t / dn) * (sum_k / dn);
  double var_t = sum_tt / dn - (sum_t / dn) * (sum_t / dn);
  double var_k = sum_kk / dn - (sum_k / dn) * (sum_k / dn);
  if (var_t > 0 && var_k > 0) {
    report.pearson_temperature_tickets = cov / std::sqrt(var_t * var_k);
  }
  return report;
}

}  // namespace integration
}  // namespace dwqa
