#include "integration/bi_analysis.h"

#include <cmath>
#include <map>

#include "common/string_util.h"
#include "dw/materialized_view.h"
#include "dw/olap.h"

namespace dwqa {
namespace integration {

const char* BiModeName(BiMode mode) {
  switch (mode) {
    case BiMode::kViewFirst:
      return "view_first";
    case BiMode::kViewOnly:
      return "view_only";
    case BiMode::kRecompute:
      return "recompute";
  }
  return "?";
}

namespace {

/// Answers `query` from the warehouse's view catalog when `mode` allows and
/// a view covers it (byte-identical to the recompute by the catalog's
/// contract), recomputing otherwise. kViewOnly never scans base facts.
Result<dw::OlapResult> RunQuery(const dw::Warehouse& wh,
                                const dw::OlapEngine& engine,
                                const dw::OlapQuery& query, BiMode mode,
                                bool* from_view) {
  *from_view = false;
  if (mode != BiMode::kRecompute && wh.views() != nullptr) {
    auto viewed = wh.views()->Answer(query);
    if (viewed.ok()) {
      *from_view = true;
      return viewed;
    }
    if (!viewed.status().IsNotFound()) return viewed.status();
  }
  if (mode == BiMode::kViewOnly) {
    return Status::Unavailable(
        "no materialized view covers the '" + query.fact +
        "' aggregate and view-only mode never recomputes from base facts");
  }
  return engine.Execute(query);
}

/// The shared tail of both analyses: joins the two aggregates on (city,
/// day), buckets tickets by temperature and computes the correlation. The
/// local and federated paths differ only in where the aggregates came from.
Result<BiReport> JoinAndBucket(const dw::OlapResult& sales,
                               const dw::OlapResult& weather,
                               const std::string& sales_fact,
                               const std::string& weather_fact,
                               double bucket_width_c) {
  std::map<std::pair<std::string, std::string>, double> temp_by_city_day;
  for (const auto& row : weather.rows) {
    temp_by_city_day[{ToLower(row[0].ToString()), row[1].ToString()}] =
        row[2].ToDouble();
  }

  // Join and bucket.
  std::map<int64_t, TempRangeStat> buckets;
  double sum_t = 0, sum_k = 0, sum_tt = 0, sum_kk = 0, sum_tk = 0;
  size_t n = 0;
  for (const auto& row : sales.rows) {
    auto it = temp_by_city_day.find(
        {ToLower(row[0].ToString()), row[1].ToString()});
    if (it == temp_by_city_day.end()) continue;
    double temp = it->second;
    double tickets = row[2].ToDouble();
    int64_t bucket = static_cast<int64_t>(
        std::floor(temp / bucket_width_c));
    TempRangeStat& stat = buckets[bucket];
    stat.low_c = static_cast<double>(bucket) * bucket_width_c;
    stat.high_c = stat.low_c + bucket_width_c;
    stat.avg_tickets += tickets;  // Sum for now; divided below.
    ++stat.observations;
    sum_t += temp;
    sum_k += tickets;
    sum_tt += temp * temp;
    sum_kk += tickets * tickets;
    sum_tk += temp * tickets;
    ++n;
  }
  if (n == 0) {
    return Status::NotFound(
        "no (city, day) pairs joined between '" + sales_fact + "' and '" +
        weather_fact + "' — has Step 5 fed the warehouse?");
  }

  BiReport report;
  report.joined_days = n;
  for (auto& [bucket, stat] : buckets) {
    stat.avg_tickets /= static_cast<double>(stat.observations);
    report.ranges.push_back(stat);
  }
  report.best = report.ranges.front();
  for (const TempRangeStat& s : report.ranges) {
    // Prefer well-supported buckets (≥ 3 observations) over outliers.
    bool better = s.avg_tickets > report.best.avg_tickets;
    if (report.best.observations >= 3 && s.observations < 3) better = false;
    if (report.best.observations < 3 && s.observations >= 3 &&
        s.avg_tickets > 0) {
      better = true;
    }
    if (better) report.best = s;
  }
  double dn = static_cast<double>(n);
  double cov = sum_tk / dn - (sum_t / dn) * (sum_k / dn);
  double var_t = sum_tt / dn - (sum_t / dn) * (sum_t / dn);
  double var_k = sum_kk / dn - (sum_k / dn) * (sum_k / dn);
  if (var_t > 0 && var_k > 0) {
    report.pearson_temperature_tickets = cov / std::sqrt(var_t * var_k);
  }
  return report;
}

}  // namespace

dw::OlapQuery BiAnalysis::SalesQuery(const std::string& sales_fact) {
  // Daily tickets per destination city.
  dw::OlapQuery q;
  q.fact = sales_fact;
  q.measures = {{"Tickets", dw::AggFn::kSum}};
  q.group_by = {{"destination", "City"}, {"date", "Date"}};
  return q;
}

dw::OlapQuery BiAnalysis::WeatherQuery(const std::string& weather_fact) {
  // Daily temperature per city from the QA-fed Weather fact (average of
  // the extracted tuples for that day).
  dw::OlapQuery q;
  q.fact = weather_fact;
  q.measures = {{"TemperatureC", dw::AggFn::kAvg}};
  q.group_by = {{"location", "City"}, {"day", "Date"}};
  return q;
}

Result<dw::CostEstimate> BiAnalysis::EstimateCost(
    const dw::Warehouse& wh, const dw::CostEstimator& estimator,
    const std::string& sales_fact, const std::string& weather_fact) {
  DWQA_ASSIGN_OR_RETURN(dw::CostEstimate sales,
                        estimator.Estimate(wh, SalesQuery(sales_fact)));
  DWQA_ASSIGN_OR_RETURN(dw::CostEstimate weather,
                        estimator.Estimate(wh, WeatherQuery(weather_fact)));
  dw::CostEstimate combined;
  combined.estimated_rows = sales.estimated_rows + weather.estimated_rows;
  combined.from_view = sales.from_view && weather.from_view;
  combined.cost_units = sales.cost_units + weather.cost_units;
  return combined;
}

Result<BiReport> BiAnalysis::SalesVsTemperature(
    const dw::Warehouse& wh, const std::string& sales_fact,
    const std::string& weather_fact, double bucket_width_c, BiMode mode) {
  if (bucket_width_c <= 0.0) {
    return Status::InvalidArgument("bucket width must be positive");
  }
  dw::OlapEngine engine(&wh);

  bool sales_from_view = false;
  DWQA_ASSIGN_OR_RETURN(
      dw::OlapResult sales,
      RunQuery(wh, engine, SalesQuery(sales_fact), mode, &sales_from_view));

  bool weather_from_view = false;
  DWQA_ASSIGN_OR_RETURN(dw::OlapResult weather,
                        RunQuery(wh, engine, WeatherQuery(weather_fact),
                                 mode, &weather_from_view));

  DWQA_ASSIGN_OR_RETURN(BiReport report,
                        JoinAndBucket(sales, weather, sales_fact,
                                      weather_fact, bucket_width_c));
  report.sales_from_view = sales_from_view;
  report.weather_from_view = weather_from_view;
  return report;
}

Result<FederatedBiReport> BiAnalysis::SalesVsTemperatureFederated(
    const dw::fed::FederatedEngine& engine, const std::string& sales_fact,
    const std::string& weather_fact, double bucket_width_c) {
  if (bucket_width_c <= 0.0) {
    return Status::InvalidArgument("bucket width must be positive");
  }
  DWQA_ASSIGN_OR_RETURN(dw::fed::FederatedResult sales,
                        engine.Execute(SalesQuery(sales_fact)));
  DWQA_ASSIGN_OR_RETURN(dw::fed::FederatedResult weather,
                        engine.Execute(WeatherQuery(weather_fact)));
  FederatedBiReport out;
  out.sales_coverage = std::move(sales.coverage);
  out.weather_coverage = std::move(weather.coverage);
  DWQA_ASSIGN_OR_RETURN(out.report,
                        JoinAndBucket(sales.result, weather.result,
                                      sales_fact, weather_fact,
                                      bucket_width_c));
  return out;
}

}  // namespace integration
}  // namespace dwqa
