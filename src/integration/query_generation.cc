#include "integration/query_generation.h"

#include <set>

#include "common/date.h"
#include "common/string_util.h"

namespace dwqa {
namespace integration {

Result<std::vector<std::string>> QueryGeneration::GenerateQuestions(
    const dw::Warehouse& wh, const AnalysisContext& ctx) {
  if (ctx.month < 1 || ctx.month > 12) {
    return Status::InvalidArgument("month out of range");
  }
  DWQA_ASSIGN_OR_RETURN(const dw::DimensionDef* dim,
                        wh.schema().FindDimension(ctx.dimension));
  DWQA_RETURN_NOT_OK(dim->LevelIndex(ctx.level).status());

  std::string when = Date(ctx.year, ctx.month, 1).MonthName() + " of " +
                     std::to_string(ctx.year);
  std::string what;
  if (ToLower(ctx.attribute) == "temperature") {
    what = "What is the temperature in ";
  } else if (ToLower(ctx.attribute) == "weather") {
    what = "What is the weather like in ";
  } else if (ToLower(ctx.attribute) == "price") {
    what = "What is the price of a ticket to ";
  } else {
    return Status::Unimplemented("no question template for attribute '" +
                                 ctx.attribute + "'");
  }

  DWQA_ASSIGN_OR_RETURN(std::vector<std::string> members,
                        wh.MemberNames(ctx.dimension));
  std::set<std::string> seen;
  std::vector<std::string> questions;
  for (const std::string& base : members) {
    DWQA_ASSIGN_OR_RETURN(dw::MemberId id,
                          wh.FindMember(ctx.dimension, base));
    DWQA_ASSIGN_OR_RETURN(
        std::string value, wh.MemberLevelValue(ctx.dimension, id, ctx.level));
    if (value.empty() || !seen.insert(ToLower(value)).second) continue;
    questions.push_back(what + value + " in " + when + "?");
  }
  return questions;
}

}  // namespace integration
}  // namespace dwqa
