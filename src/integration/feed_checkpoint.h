#ifndef DWQA_INTEGRATION_FEED_CHECKPOINT_H_
#define DWQA_INTEGRATION_FEED_CHECKPOINT_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>

#include "common/io.h"
#include "common/result.h"

namespace dwqa {
namespace integration {

/// \brief Durable progress of a Step-5 feed run.
///
/// Persisted after every question batch so that a feed interrupted mid-run
/// (crash, kill, deploy) resumes idempotently: completed questions are not
/// re-asked, and the fed (attribute, location, date) key set guarantees no
/// fact is double-loaded even if the warehouse already holds the rows of
/// the interrupted run.
struct FeedCheckpoint {
  /// Questions whose facts are fully loaded (asked-and-fed batches).
  std::set<std::string> completed_questions;
  /// Dedup keys of every row ever loaded by this feed.
  std::set<std::string> fed_keys;
  /// Cumulative rejects per RejectReason name, across resumed runs.
  std::map<std::string, size_t> reject_counts;
  /// Cumulative rows loaded across resumed runs.
  size_t rows_loaded = 0;
  /// Highest WAL LSN committed when this checkpoint was taken (0 when the
  /// feed runs without a WAL). A checkpoint can never be *ahead* of the
  /// durable data it summarizes — ValidateCheckpointAgainstLsn enforces
  /// that on load.
  uint64_t wal_lsn = 0;

  bool operator==(const FeedCheckpoint& other) const = default;
};

/// The satellite invariant between checkpoint and WAL: a checkpoint whose
/// recorded WAL position exceeds the recovered LSN claims progress the
/// durable data does not back (a stale copy restored over a rolled-back
/// warehouse, or a checkpoint from a different log). Returns OutOfRange in
/// that case, OK otherwise.
Status ValidateCheckpointAgainstLsn(const FeedCheckpoint& checkpoint,
                                    uint64_t recovered_lsn);

/// \brief Text round-trip, WarehousePersistence-style: line-based,
/// tab-separated, with a versioned magic header.
///
///   dwqa-feed-checkpoint<TAB>2
///   loaded<TAB>62
///   lsn<TAB>62
///   question<TAB>What is the temperature in Barcelona in January of 2004?
///   key<TAB>temperature|barcelona|2004-01-31
///   reject<TAB>ValueOutOfRange<TAB>3
class FeedCheckpointSerde {
 public:
  static std::string ToText(const FeedCheckpoint& checkpoint);

  /// Hardened parse: truncated or garbage input yields InvalidArgument
  /// with the offending line number, never a partially-trusted checkpoint.
  static Result<FeedCheckpoint> FromText(const std::string& text);
};

/// \brief File-backed checkpoint with atomic replace.
///
/// All I/O goes through a common/io Fs (null = the real filesystem) so the
/// crash-point harness can interpose on checkpoint saves.
class FeedCheckpointFile {
 public:
  /// Writes via a temp file + fsync + rename so a crash mid-save leaves
  /// the previous checkpoint intact (never a half-written one).
  static Status Save(const FeedCheckpoint& checkpoint,
                     const std::string& path, Fs* fs = nullptr);

  static Result<FeedCheckpoint> Load(const std::string& path,
                                     Fs* fs = nullptr);

  static bool Exists(const std::string& path, Fs* fs = nullptr);
};

}  // namespace integration
}  // namespace dwqa

#endif  // DWQA_INTEGRATION_FEED_CHECKPOINT_H_
