#include "integration/last_minute_sales.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"
#include "common/rng.h"
#include "dw/etl.h"

namespace dwqa {
namespace integration {

using ontology::AssocKind;
using ontology::AttrStereotype;
using ontology::ClassStereotype;
using ontology::UmlAssociation;
using ontology::UmlAttribute;
using ontology::UmlClass;
using ontology::UmlModel;

const std::vector<AirportInfo>& LastMinuteSales::Airports() {
  static const auto* kAirports = new std::vector<AirportInfo>{
      {"El Prat", "Barcelona", "Catalonia", "Spain", {}},
      {"Barajas", "Madrid", "Community of Madrid", "Spain", {}},
      {"Manises", "Valencia", "Valencian Community", "Spain", {}},
      {"San Pablo", "Seville", "Andalusia", "Spain", {}},
      {"JFK", "New York", "New York", "United States",
       {"Kennedy International Airport"}},
      {"La Guardia", "New York", "New York", "United States", {}},
      {"John Wayne", "Costa Mesa", "California", "United States", {}},
      {"Charles de Gaulle", "Paris", "Ile-de-France", "France", {}},
      {"Heathrow", "London", "Greater London", "United Kingdom", {}},
      {"Fiumicino", "Rome", "Lazio", "Italy", {}},
  };
  return *kAirports;
}

UmlModel LastMinuteSales::MakeUmlModel() {
  UmlModel model;
  UmlClass fact;
  fact.name = "Last Minute Sales";
  fact.stereotype = ClassStereotype::kFact;
  fact.attributes = {
      {"Price", "double", AttrStereotype::kFactAttribute},
      {"Miles", "double", AttrStereotype::kFactAttribute},
      {"Tickets", "int", AttrStereotype::kFactAttribute},
  };
  DWQA_CHECK(model.AddClass(std::move(fact)).ok());

  auto add_dim = [&](const char* name) {
    UmlClass dim;
    dim.name = name;
    dim.stereotype = ClassStereotype::kDimension;
    DWQA_CHECK(model.AddClass(std::move(dim)).ok());
  };
  auto add_base = [&](const char* name,
                      std::vector<UmlAttribute> attrs) {
    UmlClass base;
    base.name = name;
    base.stereotype = ClassStereotype::kBase;
    base.attributes = std::move(attrs);
    DWQA_CHECK(model.AddClass(std::move(base)).ok());
  };

  add_dim("Airport Dimension");
  add_base("Airport", {{"Name", "string", AttrStereotype::kDescriptor}});
  add_base("City", {{"Population", "int",
                     AttrStereotype::kDimensionAttribute}});
  add_base("State", {});
  add_base("Country", {});

  add_dim("Customer Dimension");
  add_base("Customer", {{"Rate", "double",
                         AttrStereotype::kDimensionAttribute}});
  add_base("Segment", {});

  add_dim("Date Dimension");
  add_base("Date", {});
  add_base("Month", {});
  add_base("Year", {});

  auto assoc = [&](const char* from, const char* to, AssocKind kind,
                   const char* role = "") {
    DWQA_CHECK(model.AddAssociation({from, to, kind, role}).ok());
  };
  assoc("Last Minute Sales", "Airport Dimension", AssocKind::kAssociation,
        "origin");
  assoc("Last Minute Sales", "Airport Dimension", AssocKind::kAssociation,
        "destination");
  assoc("Last Minute Sales", "Customer Dimension", AssocKind::kAssociation,
        "customer");
  assoc("Last Minute Sales", "Date Dimension", AssocKind::kAssociation,
        "date");
  assoc("Airport Dimension", "Airport", AssocKind::kAggregation);
  assoc("Customer Dimension", "Customer", AssocKind::kAggregation);
  assoc("Date Dimension", "Date", AssocKind::kAggregation);
  assoc("Airport", "City", AssocKind::kRollsUpTo);
  assoc("City", "State", AssocKind::kRollsUpTo);
  assoc("State", "Country", AssocKind::kRollsUpTo);
  assoc("Customer", "Segment", AssocKind::kRollsUpTo);
  assoc("Date", "Month", AssocKind::kRollsUpTo);
  assoc("Month", "Year", AssocKind::kRollsUpTo);
  return model;
}

dw::MdSchema LastMinuteSales::MakeSchema() {
  dw::MdSchema schema;
  DWQA_CHECK(schema
                 .AddDimension({"Airport",
                                {{"Airport"}, {"City"}, {"State"},
                                 {"Country"}}})
                 .ok());
  DWQA_CHECK(
      schema.AddDimension({"Customer", {{"Customer"}, {"Segment"}}}).ok());
  DWQA_CHECK(
      schema.AddDimension({"Date", {{"Date"}, {"Month"}, {"Year"}}}).ok());
  DWQA_CHECK(schema.AddDimension({"City", {{"City"}, {"Country"}}}).ok());
  DWQA_CHECK(schema.AddDimension({"Source", {{"Url"}}}).ok());

  dw::FactDef sales;
  sales.name = "LastMinuteSales";
  sales.measures = {
      {"Price", dw::ColumnType::kDouble, dw::AggFn::kSum},
      {"Miles", dw::ColumnType::kDouble, dw::AggFn::kSum},
      {"Tickets", dw::ColumnType::kDouble, dw::AggFn::kSum},
  };
  sales.roles = {{"origin", "Airport"},
                 {"destination", "Airport"},
                 {"customer", "Customer"},
                 {"date", "Date"}};
  DWQA_CHECK(schema.AddFact(std::move(sales)).ok());

  // The feedback fact Step 5 populates with QA-extracted weather tuples:
  // (temperature – date – city – web page).
  dw::FactDef weather;
  weather.name = "Weather";
  weather.measures = {{"TemperatureC", dw::ColumnType::kDouble,
                       dw::AggFn::kAvg}};
  weather.roles = {{"location", "City"}, {"day", "Date"},
                   {"source", "Source"}};
  DWQA_CHECK(schema.AddFact(std::move(weather)).ok());
  return schema;
}

Result<dw::Warehouse> LastMinuteSales::MakeWarehouse() {
  DWQA_ASSIGN_OR_RETURN(dw::Warehouse wh,
                        dw::Warehouse::Create(MakeSchema()));
  for (const AirportInfo& a : Airports()) {
    DWQA_RETURN_NOT_OK(
        wh.AddMember("Airport", {a.name, a.city, a.state, a.country})
            .status());
  }
  static const char* kSegments[] = {"Business", "Leisure"};
  for (int i = 0; i < 40; ++i) {
    DWQA_RETURN_NOT_OK(wh.AddMember("Customer",
                                    {"Customer-" + std::to_string(i),
                                     kSegments[i % 2]})
                           .status());
  }
  return wh;
}

PipelineConfig LastMinuteSales::DefaultPipelineConfig() {
  PipelineConfig config;
  for (const AirportInfo& a : Airports()) {
    if (!a.aliases.empty()) {
      config.member_aliases[ToLower(a.name)] = a.aliases;
    }
  }
  return config;
}

Result<size_t> LastMinuteSales::GenerateSales(dw::Warehouse* wh,
                                              const web::WeatherModel& weather,
                                              const Date& start, int days,
                                              uint64_t seed) {
  if (wh == nullptr) {
    return Status::InvalidArgument("warehouse must not be null");
  }
  Rng rng(seed);
  const auto& airports = Airports();
  size_t inserted = 0;
  Date date = start;
  for (int d = 0; d < days; ++d, date = date.NextDay()) {
    DWQA_ASSIGN_OR_RETURN(
        dw::MemberId date_member,
        wh->AddMember("Date", dw::DateMemberPath(date)));
    for (size_t dest = 0; dest < airports.size(); ++dest) {
      // Demand: base plus the planted weather boost at the destination.
      auto temp = weather.TemperatureCelsius(airports[dest].city, date);
      double t = temp.ok() ? *temp : 10.0;
      bool pleasant = t >= kBoostLowC && t <= kBoostHighC;
      double lambda = pleasant ? 9.0 : 4.0;
      int tickets =
          static_cast<int>(std::max(0.0, rng.NextGaussian(lambda, 2.0)));
      if (tickets == 0) continue;
      size_t origin = rng.NextIndex(airports.size());
      if (origin == dest) origin = (origin + 1) % airports.size();
      DWQA_ASSIGN_OR_RETURN(
          dw::MemberId origin_m,
          wh->FindMember("Airport", airports[origin].name));
      DWQA_ASSIGN_OR_RETURN(
          dw::MemberId dest_m,
          wh->FindMember("Airport", airports[dest].name));
      DWQA_ASSIGN_OR_RETURN(
          dw::MemberId cust_m,
          wh->FindMember("Customer",
                         "Customer-" + std::to_string(rng.NextBelow(40))));
      double price =
          60.0 + rng.NextDouble() * 200.0 + (pleasant ? 30.0 : 0.0);
      double miles = 300.0 + rng.NextDouble() * 3000.0;
      DWQA_RETURN_NOT_OK(wh->InsertFact(
          "LastMinuteSales", {origin_m, dest_m, cust_m, date_member},
          {dw::Value(price), dw::Value(miles),
           dw::Value(static_cast<double>(tickets))}));
      ++inserted;
    }
  }
  return inserted;
}

}  // namespace integration
}  // namespace dwqa
