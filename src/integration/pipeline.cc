#include "integration/pipeline.h"

#include "common/logging.h"
#include "common/string_util.h"
#include "dw/etl.h"
#include "integration/table_preprocess.h"
#include "ontology/enrichment.h"
#include "ontology/uml_to_ontology.h"
#include "ontology/wordnet.h"

namespace dwqa {
namespace integration {

IntegrationPipeline::IntegrationPipeline(dw::Warehouse* warehouse,
                                         const ontology::UmlModel* uml,
                                         PipelineConfig config)
    : wh_(warehouse), uml_(uml), config_(config) {}

Status IntegrationPipeline::RunStep1() {
  if (uml_ == nullptr) {
    return Status::InvalidArgument("UML model must not be null");
  }
  DWQA_ASSIGN_OR_RETURN(domain_, ontology::UmlToOntology::Transform(*uml_));
  steps_done_[0] = true;
  DWQA_LOG(Info) << "Step 1: domain ontology with "
                 << domain_.concept_count() << " concepts";
  return Status::OK();
}

Status IntegrationPipeline::RunStep2() {
  if (!steps_done_[0]) {
    return Status::Internal("Step 1 must run before Step 2");
  }
  if (!config_.enrich_with_dw_contents) {
    steps_done_[1] = true;  // Ablation: step is a no-op.
    return Status::OK();
  }
  if (wh_ == nullptr) {
    return Status::InvalidArgument("warehouse must not be null");
  }
  // Export the Airport dimension members (with their city) into the
  // ontology — "the ontology is fed by the contents of the DW system"
  // (e.g. the different city airport destinations of an airline).
  std::vector<ontology::InstanceSeed> seeds;
  DWQA_ASSIGN_OR_RETURN(std::vector<std::string> airports,
                        wh_->MemberNames("Airport"));
  for (const std::string& name : airports) {
    DWQA_ASSIGN_OR_RETURN(dw::MemberId id,
                          wh_->FindMember("Airport", name));
    ontology::InstanceSeed seed;
    seed.name = name;
    DWQA_ASSIGN_OR_RETURN(seed.located_in,
                          wh_->MemberLevelValue("Airport", id, "City"));
    seed.gloss = "airport serving " + seed.located_in;
    // Alias knowledge from DW metadata (the paper's JFK example: "JFK" is
    // also "Kennedy International Airport").
    auto alias_it = config_.member_aliases.find(ToLower(name));
    if (alias_it != config_.member_aliases.end()) {
      seed.aliases = alias_it->second;
    }
    seeds.push_back(std::move(seed));
  }
  DWQA_ASSIGN_OR_RETURN(
      auto report, ontology::Enricher::Enrich(&domain_, "airport", seeds));
  steps_done_[1] = true;
  DWQA_LOG(Info) << "Step 2: " << report.instances_added
                 << " instances added, " << report.part_of_links
                 << " partOf links";
  return Status::OK();
}

Status IntegrationPipeline::RunStep3() {
  if (!steps_done_[1]) {
    return Status::Internal("Step 2 must run before Step 3");
  }
  merged_ = ontology::MiniWordNet::Build();
  DWQA_ASSIGN_OR_RETURN(
      merge_report_,
      ontology::OntologyMerger::Merge(&merged_, domain_, config_.merge));
  steps_done_[2] = true;
  DWQA_LOG(Info) << "Step 3: merged (" << merge_report_.exact << " exact, "
                 << merge_report_.partial << " partial, "
                 << merge_report_.head << " head, "
                 << merge_report_.new_tree << " new trees)";
  return Status::OK();
}

Status IntegrationPipeline::RunStep4() {
  if (!steps_done_[2]) {
    return Status::Internal("Step 3 must run before Step 4");
  }
  // Tune the QA system to the new query types: attach the axiomatic
  // information a "temperature" answer requires (paper §3, Step 4).
  DWQA_ASSIGN_OR_RETURN(ontology::ConceptId temp,
                        merged_.FindClass("temperature"));
  DWQA_RETURN_NOT_OK(merged_.SetAxiom(temp, "unit", "\xC2\xBA\x43|F"));
  DWQA_RETURN_NOT_OK(merged_.SetAxiom(temp, "min_celsius", "-90"));
  DWQA_RETURN_NOT_OK(merged_.SetAxiom(temp, "max_celsius", "60"));
  DWQA_RETURN_NOT_OK(
      merged_.SetAxiom(temp, "conversion", "F = C * 9 / 5 + 32"));
  if (auto price = merged_.FindClass("price"); price.ok()) {
    DWQA_RETURN_NOT_OK(merged_.SetAxiom(*price, "unit", "EUR|USD|GBP"));
    DWQA_RETURN_NOT_OK(merged_.SetAxiom(*price, "min", "0"));
  }
  steps_done_[3] = true;
  return Status::OK();
}

Status IntegrationPipeline::IndexCorpus(const ir::DocumentStore* docs) {
  if (!steps_done_[3]) {
    return Status::Internal("Step 4 must run before indexing the corpus");
  }
  aliqan_ = std::make_unique<qa::AliQAn>(&merged_, config_.qa);
  if (config_.table_preprocess) {
    aliqan_->set_preprocessor(TablePreprocessor{});
  }
  return aliqan_->IndexCorpus(docs);
}

Status IntegrationPipeline::RunAll(const ir::DocumentStore* docs) {
  DWQA_RETURN_NOT_OK(RunStep1());
  DWQA_RETURN_NOT_OK(RunStep2());
  DWQA_RETURN_NOT_OK(RunStep3());
  DWQA_RETURN_NOT_OK(RunStep4());
  return IndexCorpus(docs);
}

Result<FeedReport> IntegrationPipeline::RunStep5(
    const std::vector<std::string>& questions, const std::string& fact_name,
    const std::string& attribute, size_t answers_per_question) {
  if (aliqan_ == nullptr) {
    return Status::Internal("IndexCorpus must run before Step 5");
  }
  if (wh_ == nullptr) {
    return Status::InvalidArgument("warehouse must not be null");
  }
  FeedReport report;
  dw::EtlLoader loader(wh_);
  // Temporarily widen the answer cap so a month-scoped question can yield
  // one tuple per day of the month.
  qa::AliQAnConfig saved = config_.qa;
  (void)saved;
  for (const std::string& question : questions) {
    ++report.questions_asked;
    auto answers = aliqan_->Ask(question);
    if (!answers.ok() || answers->empty()) continue;
    ++report.questions_answered;
    std::vector<qa::StructuredFact> facts =
        qa::ToStructuredFacts(*answers, attribute);
    if (facts.size() > answers_per_question) {
      facts.resize(answers_per_question);
    }
    for (qa::StructuredFact& fact : facts) {
      ++report.facts_extracted;
      // Feed deduplication: one row per (attribute, location, date).
      if (config_.dedup_feed) {
        std::string key =
            attribute + "|" + ToLower(fact.location) + "|" +
            (fact.date.has_value() ? fact.date->ToIsoString() : "?");
        if (!fed_keys_.insert(key).second) {
          ++report.rows_deduplicated;
          continue;
        }
      }
      // Unit normalization per the Step-4 conversion axiom: the Weather
      // measure is Celsius, so Fahrenheit readings are converted before
      // loading ("the conversion formulae between Celsius and Fahrenheit
      // scales", §3 Step 4).
      if (fact.unit == "F") {
        fact.value = (fact.value - 32.0) * 5.0 / 9.0;
        fact.unit = "\xC2\xBA\x43";
      }
      dw::FactRecord record;
      // Roles: location (City), day (Date), source (Source/Url). The web
      // page is always stored, the paper's robustness measure.
      record.role_paths.push_back({fact.location.empty() ? std::string("?")
                                                         : fact.location});
      if (fact.date.has_value()) {
        record.role_paths.push_back(dw::DateMemberPath(*fact.date));
      } else {
        record.role_paths.push_back({"unknown-date"});
      }
      record.role_paths.push_back(
          {fact.url.empty() ? std::string("?") : fact.url});
      record.measures = {dw::Value(fact.value)};
      Status st = loader.LoadRecord(fact_name, record);
      if (st.ok()) {
        ++report.rows_loaded;
      } else {
        ++report.rows_rejected;
      }
      report.facts.push_back(std::move(fact));
    }
  }
  steps_done_[4] = true;
  return report;
}

}  // namespace integration
}  // namespace dwqa
