#include "integration/pipeline.h"

#include "common/logging.h"
#include "common/metric_names.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "dw/etl.h"
#include "dw/materialized_view.h"
#include "dw/snapshot.h"
#include "integration/table_preprocess.h"
#include "ontology/enrichment.h"
#include "ontology/uml_to_ontology.h"
#include "ontology/wordnet.h"

namespace dwqa {
namespace integration {

namespace {

/// Constructors cannot return Status, so the pipeline validates its
/// resilience knobs once here and every Run* entry point replays the
/// verdict.
Status ValidateResilienceConfig(const ResilienceConfig& resilience) {
  DWQA_RETURN_NOT_OK(resilience.retry.Validate());
  DWQA_RETURN_NOT_OK(resilience.breaker.Validate());
  DWQA_RETURN_NOT_OK(resilience.deadline.Validate());
  if (resilience.checkpoint_every == 0) {
    return Status::InvalidArgument(
        "checkpoint_every must be >= 1 (0 would checkpoint after every "
        "boundary check yet never count a question)");
  }
  return Status::OK();
}

/// Points the warehouse's view catalog (when attached) at one question's
/// trace recorder for the scope of its fact loads, and always resets it —
/// the recorder is per-question state the catalog must not outlive-hold.
class ScopedViewTrace {
 public:
  ScopedViewTrace(dw::Warehouse* wh, TraceRecorder* trace)
      : views_(wh != nullptr ? wh->views() : nullptr) {
    if (views_ != nullptr && trace != nullptr) {
      views_->set_trace_recorder(trace);
    }
  }
  ~ScopedViewTrace() {
    if (views_ != nullptr) views_->set_trace_recorder(nullptr);
  }
  ScopedViewTrace(const ScopedViewTrace&) = delete;
  ScopedViewTrace& operator=(const ScopedViewTrace&) = delete;

 private:
  dw::ViewCatalog* views_;
};

}  // namespace

IntegrationPipeline::IntegrationPipeline(dw::Warehouse* warehouse,
                                         const ontology::UmlModel* uml,
                                         PipelineConfig config)
    : wh_(warehouse),
      uml_(uml),
      config_(std::move(config)),
      fault_(config_.resilience.fault),
      breakers_(config_.resilience.breaker),
      deadline_(config_.resilience.deadline),
      config_status_(ValidateResilienceConfig(config_.resilience)) {
  breakers_.set_metrics(&metrics_);
  deadline_.set_metrics(&metrics_);
  // An attached view catalog reports its dwqa_view_* series next to the
  // feed metrics it is maintained by.
  if (wh_ != nullptr && wh_->views() != nullptr) {
    wh_->views()->set_metrics(&metrics_);
  }
}

Status IntegrationPipeline::RunStep1() {
  DWQA_RETURN_NOT_OK(config_status_);
  if (uml_ == nullptr) {
    return Status::InvalidArgument("UML model must not be null");
  }
  DWQA_ASSIGN_OR_RETURN(domain_, ontology::UmlToOntology::Transform(*uml_));
  steps_done_[0] = true;
  DWQA_LOG(Info) << "Step 1: domain ontology with "
                 << domain_.concept_count() << " concepts";
  return Status::OK();
}

Status IntegrationPipeline::RunStep2() {
  if (!steps_done_[0]) {
    return Status::Internal("Step 1 must run before Step 2");
  }
  if (!config_.enrich_with_dw_contents) {
    steps_done_[1] = true;  // Ablation: step is a no-op.
    return Status::OK();
  }
  if (wh_ == nullptr) {
    return Status::InvalidArgument("warehouse must not be null");
  }
  // Export the Airport dimension members (with their city) into the
  // ontology — "the ontology is fed by the contents of the DW system"
  // (e.g. the different city airport destinations of an airline).
  std::vector<ontology::InstanceSeed> seeds;
  DWQA_ASSIGN_OR_RETURN(std::vector<std::string> airports,
                        wh_->MemberNames("Airport"));
  for (const std::string& name : airports) {
    DWQA_ASSIGN_OR_RETURN(dw::MemberId id,
                          wh_->FindMember("Airport", name));
    ontology::InstanceSeed seed;
    seed.name = name;
    DWQA_ASSIGN_OR_RETURN(seed.located_in,
                          wh_->MemberLevelValue("Airport", id, "City"));
    seed.gloss = "airport serving " + seed.located_in;
    // Alias knowledge from DW metadata (the paper's JFK example: "JFK" is
    // also "Kennedy International Airport").
    auto alias_it = config_.member_aliases.find(ToLower(name));
    if (alias_it != config_.member_aliases.end()) {
      seed.aliases = alias_it->second;
    }
    seeds.push_back(std::move(seed));
  }
  DWQA_ASSIGN_OR_RETURN(
      auto report, ontology::Enricher::Enrich(&domain_, "airport", seeds));
  steps_done_[1] = true;
  DWQA_LOG(Info) << "Step 2: " << report.instances_added
                 << " instances added, " << report.part_of_links
                 << " partOf links";
  return Status::OK();
}

Status IntegrationPipeline::RunStep3() {
  if (!steps_done_[1]) {
    return Status::Internal("Step 2 must run before Step 3");
  }
  merged_ = ontology::MiniWordNet::Build();
  DWQA_ASSIGN_OR_RETURN(
      merge_report_,
      ontology::OntologyMerger::Merge(&merged_, domain_, config_.merge));
  steps_done_[2] = true;
  DWQA_LOG(Info) << "Step 3: merged (" << merge_report_.exact << " exact, "
                 << merge_report_.partial << " partial, "
                 << merge_report_.head << " head, "
                 << merge_report_.new_tree << " new trees)";
  return Status::OK();
}

Status IntegrationPipeline::RunStep4() {
  if (!steps_done_[2]) {
    return Status::Internal("Step 3 must run before Step 4");
  }
  // Tune the QA system to the new query types: attach the axiomatic
  // information a "temperature" answer requires (paper §3, Step 4).
  DWQA_ASSIGN_OR_RETURN(ontology::ConceptId temp,
                        merged_.FindClass("temperature"));
  DWQA_RETURN_NOT_OK(merged_.SetAxiom(temp, "unit", "\xC2\xBA\x43|F"));
  DWQA_RETURN_NOT_OK(merged_.SetAxiom(temp, "min_celsius", "-90"));
  DWQA_RETURN_NOT_OK(merged_.SetAxiom(temp, "max_celsius", "60"));
  DWQA_RETURN_NOT_OK(
      merged_.SetAxiom(temp, "conversion", "F = C * 9 / 5 + 32"));
  if (auto price = merged_.FindClass("price"); price.ok()) {
    DWQA_RETURN_NOT_OK(merged_.SetAxiom(*price, "unit", "EUR|USD|GBP"));
    DWQA_RETURN_NOT_OK(merged_.SetAxiom(*price, "min", "0"));
  }
  steps_done_[3] = true;
  return Status::OK();
}

Status IntegrationPipeline::IndexCorpus(const ir::DocumentStore* docs) {
  DWQA_RETURN_NOT_OK(config_status_);
  if (!steps_done_[3]) {
    return Status::Internal("Step 4 must run before indexing the corpus");
  }
  aliqan_ = std::make_unique<qa::AliQAn>(&merged_, config_.qa);
  aliqan_->set_deadline(&deadline_);
  aliqan_->set_metrics(&metrics_);
  if (config_.table_preprocess) {
    aliqan_->set_preprocessor(TablePreprocessor{});
  }
  CircuitBreaker* breaker = breakers_.Get(kFaultPointIndex);
  if (!breaker->Allow()) {
    return Status::Unavailable(
        "circuit open for 'ir.index': corpus indexation rejected");
  }
  // A half-open breaker grants exactly one probe attempt — the probe must
  // not burn the whole retry budget re-testing a dependency the breaker
  // already knows is sick.
  RetryPolicy policy = config_.resilience.retry;
  if (breaker->state() == BreakerState::kHalfOpen) policy.max_attempts = 1;
  // The corpus fetch can be flaky (the paper's sources are live web pages
  // and intranet reports); the injected fault fires *before* the actual
  // indexation so a retried attempt always starts from a clean slate.
  RetryStats stats;
  Status st = RetryCall(
      policy,
      [&]() -> Status {
        DWQA_RETURN_NOT_OK(fault_.Hit(kFaultPointIndex));
        return aliqan_->IndexCorpus(docs);
      },
      &stats, &deadline_, kFaultPointIndex);
  corpus_index_retries_ = size_t(stats.attempts > 0 ? stats.attempts - 1 : 0);
  // These stats were invisible to the registry (only FeedReport saw them);
  // mirror them so indexation retry pressure shows up in the export.
  MirrorRetryStats(&metrics_, kFaultPointIndex, stats, !st.ok());
  if (st.ok()) {
    breaker->RecordSuccess();
  } else if (!st.IsDeadlineExceeded()) {
    breaker->RecordFailure();
  }
  return st;
}

Result<size_t> IntegrationPipeline::IngestNewDocuments() {
  DWQA_RETURN_NOT_OK(config_status_);
  if (aliqan_ == nullptr) {
    return Status::Internal(
        "IndexCorpus must run before incremental ingest");
  }
  return aliqan_->IngestNewDocuments();
}

Status IntegrationPipeline::RunAll(const ir::DocumentStore* docs) {
  DWQA_RETURN_NOT_OK(RunStep1());
  DWQA_RETURN_NOT_OK(RunStep2());
  DWQA_RETURN_NOT_OK(RunStep3());
  DWQA_RETURN_NOT_OK(RunStep4());
  return IndexCorpus(docs);
}

void IntegrationPipeline::QuarantineFact(const qa::StructuredFact& fact,
                                         qa::RejectReason reason,
                                         const std::string& detail,
                                         FeedReport* report) {
  dw::QuarantineRecord record;
  record.attribute = fact.attribute;
  record.value = FormatDouble(fact.value, 2);
  record.unit = fact.unit;
  record.date_iso = fact.date.has_value() ? fact.date->ToIsoString() : "";
  record.location = fact.location;
  record.url = fact.url;
  record.reason = qa::RejectReasonName(reason);
  record.detail = detail;
  quarantine_.Add(std::move(record));
  ++report->rows_quarantined;
  ++report->quarantined_by_reason[reason];
  ++reject_counts_[qa::RejectReasonName(reason)];
  metrics_
      .GetCounter(kMetricFeedQuarantined,
                  {{"reason", qa::RejectReasonName(reason)}},
                  "Facts diverted to the quarantine, by RejectReason")
      ->Increment();
  metrics_
      .GetGauge(kMetricDwQuarantineRecords, {},
                "Records currently held in the QuarantineStore")
      ->Set(static_cast<double>(quarantine_.size()));
}

FeedCheckpoint IntegrationPipeline::MakeFeedCheckpoint() const {
  FeedCheckpoint checkpoint;
  checkpoint.completed_questions = completed_questions_;
  checkpoint.fed_keys = fed_keys_;
  checkpoint.reject_counts = reject_counts_;
  checkpoint.rows_loaded = rows_loaded_total_;
  checkpoint.wal_lsn = wal_last_lsn();
  return checkpoint;
}

Status IntegrationPipeline::SaveFeedCheckpoint(
    const std::string& path) const {
  return FeedCheckpointFile::Save(MakeFeedCheckpoint(), path,
                                  config_.resilience.durability.fs);
}

Status IntegrationPipeline::LoadFeedCheckpoint(const std::string& path) {
  DWQA_ASSIGN_OR_RETURN(FeedCheckpoint checkpoint,
                        FeedCheckpointFile::Load(
                            path, config_.resilience.durability.fs));
  // A checkpoint ahead of the recovered WAL claims rows the durable data
  // cannot back — refuse it instead of silently skipping questions whose
  // facts were rolled back with the log.
  if (wal_ != nullptr) {
    DWQA_RETURN_NOT_OK(
        ValidateCheckpointAgainstLsn(checkpoint, wal_->last_lsn()));
  }
  completed_questions_.insert(checkpoint.completed_questions.begin(),
                              checkpoint.completed_questions.end());
  fed_keys_.insert(checkpoint.fed_keys.begin(), checkpoint.fed_keys.end());
  for (const auto& [reason, count] : checkpoint.reject_counts) {
    reject_counts_[reason] += count;
  }
  rows_loaded_total_ += checkpoint.rows_loaded;
  checkpoint_loaded_ = true;
  DWQA_LOG(Info) << "Step 5: resumed from checkpoint '" << path << "' ("
                 << checkpoint.completed_questions.size()
                 << " questions completed, " << checkpoint.fed_keys.size()
                 << " keys fed)";
  return Status::OK();
}

Status IntegrationPipeline::EnsureWalOpen() {
  const DurabilityConfig& durability = config_.resilience.durability;
  if (durability.dir.empty() || wal_ != nullptr) return Status::OK();
  dw::WalOptions options;
  options.segment_bytes = durability.wal_segment_bytes;
  options.sync_each_append = durability.sync_each_append;
  DWQA_ASSIGN_OR_RETURN(
      wal_, dw::WalWriter::Open(durability.dir, options, durability.fs,
                                &metrics_));
  DWQA_LOG(Info) << "Step 5: WAL open at '" << durability.dir
                 << "', last LSN " << wal_->last_lsn();
  return Status::OK();
}

Status IntegrationPipeline::FlushDurability() {
  if (wal_ == nullptr) return Status::OK();
  const DurabilityConfig& durability = config_.resilience.durability;
  DWQA_RETURN_NOT_OK(wal_->Sync());
  if (!durability.snapshot_on_flush) return Status::OK();
  DWQA_ASSIGN_OR_RETURN(
      std::string snapshot_path,
      dw::SnapshotWriter::Write(durability.dir, *wh_, wal_->last_lsn(),
                                durability.fs));
  DWQA_ASSIGN_OR_RETURN(size_t dropped,
                        wal_->DropSegmentsCoveredBy(wal_->last_lsn()));
  DWQA_LOG(Info) << "Step 5: snapshot '" << snapshot_path << "' at LSN "
                 << wal_->last_lsn() << ", " << dropped
                 << " covered WAL segment(s) dropped";
  return Status::OK();
}

PipelineHealth IntegrationPipeline::Health() const {
  PipelineHealth health;
  health.Capture(deadline_, breakers_, metrics_);
  return health;
}

MetricsDump IntegrationPipeline::DumpMetrics() const {
  MetricsDump dump;
  dump.prometheus = metrics_.ExportPrometheus();
  dump.json = metrics_.ExportJson();
  return dump;
}

std::string IntegrationPipeline::RenderTraces() const {
  std::string out;
  for (const QuestionTrace& trace : traces_) {
    if (trace.recorder == nullptr || trace.recorder->empty()) continue;
    out += "=== " + trace.question + "\n";
    out += trace.recorder->Render();
  }
  return out;
}

Result<FeedReport> IntegrationPipeline::RunStep5(
    const std::vector<std::string>& questions, const std::string& fact_name,
    const std::string& attribute, size_t answers_per_question) {
  DWQA_RETURN_NOT_OK(config_status_);
  if (aliqan_ == nullptr) {
    return Status::Internal("IndexCorpus must run before Step 5");
  }
  if (wh_ == nullptr) {
    return Status::InvalidArgument("warehouse must not be null");
  }
  const ResilienceConfig& resilience = config_.resilience;
  // The WAL opens before the checkpoint loads: LoadFeedCheckpoint compares
  // the checkpoint's recorded LSN against the recovered log.
  DWQA_RETURN_NOT_OK(EnsureWalOpen());
  const bool checkpointing = !resilience.checkpoint_path.empty();
  if (checkpointing && !checkpoint_loaded_ &&
      FeedCheckpointFile::Exists(resilience.checkpoint_path,
                                 resilience.durability.fs)) {
    DWQA_RETURN_NOT_OK(LoadFeedCheckpoint(resilience.checkpoint_path));
  }
  if (resilience.validate_facts) {
    // The Step-4 axioms (temperature intervals, unit lists) become the
    // admission rules of the feed; explicit per-attribute rules override
    // the ontology-derived ones, and the confidence floor gates the
    // degraded-ladder answers.
    validator_ = qa::FactValidator::FromOntology(merged_, {attribute});
    qa::ValidatorConfig vconfig = validator_.config();
    for (const auto& [attr, rule] : resilience.validator_rules) {
      vconfig.rules[attr] = rule;
    }
    vconfig.confidence_floor = resilience.confidence_floor;
    validator_ = qa::FactValidator(std::move(vconfig));
  }
  FeedReport report;
  report.corpus_index_retries = corpus_index_retries_;
  traces_.clear();
  // Mirror helpers: every question gets exactly one terminal outcome, every
  // extracted fact exactly one disposition, so the exported families sum to
  // the FeedReport totals (the accounting identity the metrics test pins).
  auto count_outcome = [&](const char* outcome) {
    metrics_
        .GetCounter(kMetricFeedQuestions, {{"outcome", outcome}},
                    "Step-5 questions by terminal outcome")
        ->Increment();
  };
  auto count_fact = [&](const char* disposition) {
    metrics_
        .GetCounter(kMetricFeedFacts, {{"disposition", disposition}},
                    "Extracted facts by final disposition")
        ->Increment();
  };
  auto count_retries = [&](const RetryStats& stats) {
    if (stats.attempts > 1) {
      metrics_
          .GetCounter(kMetricFeedRetries, {},
                      "Extra attempts spent on transient faults")
          ->Increment(static_cast<double>(stats.attempts - 1));
    }
    if (stats.transient_failures > 0) {
      metrics_
          .GetCounter(kMetricFeedTransientFailures, {},
                      "Transient failures observed by the feed")
          ->Increment(static_cast<double>(stats.transient_failures));
    }
  };
  dw::EtlLoader loader(wh_);
  size_t questions_since_checkpoint = 0;
  // A boundary checkpoint save is allowed to fail (logged + counted +
  // retried at the next boundary); only the final save is load-bearing.
  auto save_checkpoint = [&]() -> Status {
    DWQA_RETURN_NOT_OK(fault_.Hit(kFaultPointCheckpoint));
    return SaveFeedCheckpoint(resilience.checkpoint_path);
  };
  CircuitBreaker* fetch_breaker = breakers_.Get(kFaultPointFetch);
  // Completed questions are only skipped under checkpoint/resume semantics
  // (a configured path or an explicitly loaded checkpoint). A plain
  // pipeline that re-asks a question still re-asks it — the fed-key dedup
  // alone decides whether its facts load again.
  const bool resume_semantics = checkpointing || checkpoint_loaded_;

  // Batched ask phase: answer the batch speculatively on a pool. Ask() is a
  // pure read of the quiescent index, so only it moves off-thread; every
  // order-dependent effect — fault draws, retry/backoff, breaker admission,
  // deadline accounting, validation, dedup, ETL, checkpoints — still
  // happens in the serial loop below, which consumes a speculative answer
  // (absorbing its private deadline ledger) exactly where the serial code
  // would have computed it. A finite budget disables speculation: which
  // question hits mid-batch exhaustion depends on completion order.
  struct SpeculativeAsk {
    bool valid = false;
    Result<qa::AnswerSet> answers{Status::Unavailable("not speculated")};
    Deadline ledger;
  };
  std::vector<SpeculativeAsk> speculative(questions.size());
  if (config_.parallel_questions > 1 && deadline_.unlimited()) {
    ThreadPool pool(config_.parallel_questions);
    pool.ParallelFor(questions.size(), [&](size_t i) {
      if (resume_semantics &&
          completed_questions_.count(questions[i]) > 0) {
        return;
      }
      speculative[i].answers =
          aliqan_->AskWith(questions[i], nullptr, &speculative[i].ledger);
      speculative[i].valid = true;
    });
  } else if (config_.parallel_questions > 1) {
    DWQA_LOG(Info) << "Step 5: parallel_questions="
                   << config_.parallel_questions
                   << " ignored under a finite deadline budget;"
                   << " asking serially";
  }

  for (size_t qi = 0; qi < questions.size(); ++qi) {
    const std::string& question = questions[qi];
    if (resume_semantics && completed_questions_.count(question) > 0) {
      ++report.questions_resumed;
      count_outcome("resumed");
      continue;
    }
    // An exhausted budget skips the remaining questions without marking
    // them completed — a checkpointed resume (with a fresh budget) re-asks
    // exactly these. The Check() probe names this stage in the health
    // report when the budget died on an earlier successful crossing charge.
    if (!deadline_.Check("step5.ask").ok()) {
      report.deadline_exhausted = true;
      ++report.questions_deadline_skipped;
      count_outcome("deadline_skipped");
      continue;
    }
    ++report.questions_asked;
    TraceRecorder* trace = nullptr;
    if (config_.trace_questions) {
      traces_.push_back({question, std::make_unique<TraceRecorder>()});
      trace = traces_.back().recorder.get();
    }
    Span question_span(trace, "step5.question");
    question_span.Annotate("question", question);
    // Point the view catalog's `view.maintain` spans at this question's
    // recorder for the duration of its fact loads (reset on every exit
    // path — the recorder dies with the iteration).
    ScopedViewTrace view_trace(wh_, trace);
    if (!fetch_breaker->Allow()) {
      ++report.breaker_rejections;
      ++report.questions_failed;
      count_outcome("breaker_rejected");
      question_span.Annotate("outcome", "breaker_rejected");
      continue;
    }
    // The per-question fetch/ask path is the flakiest link (a live page
    // fetch in the paper's setting): transient faults are retried with
    // backoff, permanent failures fall through immediately. A half-open
    // breaker grants a single probe attempt instead of the full budget.
    RetryPolicy ask_policy = resilience.retry;
    if (fetch_breaker->state() == BreakerState::kHalfOpen) {
      ask_policy.max_attempts = 1;
    }
    RetryStats ask_stats;
    Result<qa::AnswerSet> answers = RetryResultCall<qa::AnswerSet>(
        ask_policy,
        [&]() -> Result<qa::AnswerSet> {
          DWQA_RETURN_NOT_OK(fault_.Hit(kFaultPointFetch));
          // Merge point of the batched ask phase: the first attempt that
          // survives the fault draw consumes the speculative answer and
          // replays its deadline ledger here, as if Ask had just run.
          // Later attempts (a retried transient) fall through to a live
          // Ask — deterministic, so the answer is the same either way.
          SpeculativeAsk& spec = speculative[qi];
          if (spec.valid) {
            spec.valid = false;
            DWQA_RETURN_NOT_OK(deadline_.Absorb(spec.ledger));
            question_span.Annotate("speculative", "true");
            return std::move(spec.answers);
          }
          return aliqan_->Ask(question, trace);
        },
        &ask_stats, &deadline_, kFaultPointFetch);
    report.retries += size_t(ask_stats.attempts > 1 ? ask_stats.attempts - 1
                                                    : 0);
    report.transient_failures += size_t(ask_stats.transient_failures);
    count_retries(ask_stats);
    if (!answers.ok()) {
      if (answers.status().IsDeadlineExceeded()) {
        // Budget ran out mid-ask: not the source's fault (no breaker
        // failure) and not a question failure — the resume re-asks it.
        report.deadline_exhausted = true;
        ++report.questions_deadline_skipped;
        count_outcome("deadline_skipped");
        question_span.Annotate("outcome", "deadline_skipped");
        continue;
      }
      fetch_breaker->RecordFailure();
      report.wasted_retries +=
          size_t(ask_stats.attempts > 1 ? ask_stats.attempts - 1 : 0);
      if (ask_stats.attempts > 1) {
        metrics_
            .GetCounter(kMetricFeedWastedRetries, {},
                        "Retry attempts beyond the first on operations "
                        "that ultimately failed")
            ->Increment(static_cast<double>(ask_stats.attempts - 1));
      }
      // Not marked completed: a checkpointed resume re-asks it.
      ++report.questions_failed;
      count_outcome("failed");
      question_span.Annotate("outcome", "failed");
      continue;
    }
    fetch_breaker->RecordSuccess();
    ++report.questions_by_degradation[answers->degradation];
    metrics_
        .GetCounter(
            kMetricFeedQuestionsByLevel,
            {{"level", qa::DegradationLevelName(answers->degradation)}},
            "Asked-and-answered Step-5 questions per ladder rung")
        ->Increment();
    count_outcome(answers->empty() ? "unanswered" : "answered");
    question_span.Annotate("outcome",
                           answers->empty() ? "unanswered" : "answered");
    question_span.Annotate("level",
                           qa::DegradationLevelName(answers->degradation));
    if (!answers->empty()) {
      ++report.questions_answered;
      std::vector<qa::StructuredFact> facts =
          qa::ToStructuredFacts(*answers, attribute);
      if (facts.size() > answers_per_question) {
        facts.resize(answers_per_question);
      }
      for (qa::StructuredFact& fact : facts) {
        ++report.facts_extracted;
        Span fact_span(trace, "step5.fact");
        fact_span.Annotate("location", fact.location);
        fact_span.Annotate("value", fact.value);
        // Admission control first: implausible facts go to the quarantine
        // before they can consume a dedup key or touch the ETL.
        if (resilience.validate_facts) {
          Span validate_span(trace, "qa.validate");
          qa::RejectReason reason = validator_.Check(fact);
          if (reason != qa::RejectReason::kNone) {
            validate_span.Annotate("reject", qa::RejectReasonName(reason));
            validate_span.End();
            QuarantineFact(fact, reason, "", &report);
            fact.disposition = qa::FactDisposition::kQuarantined;
            count_fact("quarantined");
            fact_span.Annotate("disposition", "quarantined");
            report.facts.push_back(std::move(fact));
            continue;
          }
        }
        // Feed deduplication: one row per (attribute, location, date). The
        // key is only recorded after a successful load, so a fact whose
        // load fails does not block a later (or resumed) retry.
        std::string key =
            attribute + "|" + ToLower(fact.location) + "|" +
            (fact.date.has_value() ? fact.date->ToIsoString() : "?");
        if (config_.dedup_feed && fed_keys_.count(key) > 0) {
          ++report.rows_deduplicated;
          fact.disposition = qa::FactDisposition::kDeduplicated;
          count_fact("deduplicated");
          fact_span.Annotate("disposition", "deduplicated");
          report.facts.push_back(std::move(fact));
          continue;
        }
        // One breaker per source URL: a single poisoned page is isolated
        // without tripping the feed for the healthy sources.
        const std::string source_name =
            "source:" + (fact.url.empty() ? std::string("?") : fact.url);
        CircuitBreaker* source_breaker = breakers_.Get(source_name);
        if (!source_breaker->Allow()) {
          ++report.breaker_rejections;
          QuarantineFact(fact, qa::RejectReason::kCircuitOpen,
                         "circuit open for " + source_name, &report);
          fact.disposition = qa::FactDisposition::kQuarantined;
          count_fact("quarantined");
          fact_span.Annotate("disposition", "quarantined");
          report.facts.push_back(std::move(fact));
          continue;
        }
        // Unit normalization per the Step-4 conversion axiom: the Weather
        // measure is Celsius, so Fahrenheit readings are converted before
        // loading ("the conversion formulae between Celsius and Fahrenheit
        // scales", §3 Step 4).
        if (fact.unit == "F") {
          fact.value = (fact.value - 32.0) * 5.0 / 9.0;
          fact.unit = "\xC2\xBA\x43";
        }
        dw::FactRecord record;
        // Roles: location (City), day (Date), source (Source/Url). The web
        // page is always stored, the paper's robustness measure.
        record.role_paths.push_back({fact.location.empty()
                                         ? std::string("?")
                                         : fact.location});
        if (fact.date.has_value()) {
          record.role_paths.push_back(dw::DateMemberPath(*fact.date));
        } else {
          record.role_paths.push_back({"unknown-date"});
        }
        record.role_paths.push_back(
            {fact.url.empty() ? std::string("?") : fact.url});
        record.measures = {dw::Value(fact.value)};
        // Write-ahead: the fact is durable before the ETL sees it. A crash
        // from here on replays the record idempotently on recovery; an
        // append failure quarantines the fact — loading a row the log does
        // not hold would make recovery lose it.
        if (wal_ != nullptr) {
          Span wal_span(trace, "wal.append");
          dw::WalFact wal_fact;
          wal_fact.fact_name = fact_name;
          wal_fact.attribute = attribute;
          wal_fact.value = fact.value;
          wal_fact.unit = fact.unit;
          wal_fact.date_iso =
              fact.date.has_value() ? fact.date->ToIsoString() : "";
          wal_fact.location = fact.location;
          wal_fact.url = fact.url;
          wal_fact.confidence = fact.confidence;
          wal_fact.dedup_key = key;
          wal_fact.record = record;
          Result<dw::Lsn> appended = wal_->AppendFact(wal_fact);
          if (!appended.ok()) {
            wal_span.Annotate("outcome", "failed");
            wal_span.End();
            QuarantineFact(fact, qa::RejectReason::kWalFailed,
                           appended.status().ToString(), &report);
            fact.disposition = qa::FactDisposition::kQuarantined;
            count_fact("quarantined");
            fact_span.Annotate("disposition", "quarantined");
            report.facts.push_back(std::move(fact));
            continue;
          }
          wal_span.Annotate("lsn", static_cast<double>(*appended));
        }
        RetryPolicy load_policy = resilience.retry;
        if (source_breaker->state() == BreakerState::kHalfOpen) {
          load_policy.max_attempts = 1;
        }
        RetryStats load_stats;
        Status st;
        {
          Span load_span(trace, "dw.etl.load");
          ScopedLatencyTimer load_timer(metrics_.GetHistogram(
              kMetricDwEtlLoadLatency, {},
              MetricRegistry::LatencyBucketsMs(),
              "Latency of ETL fact loads, retries included"));
          st = RetryCall(
              load_policy,
              [&]() -> Status {
                DWQA_RETURN_NOT_OK(fault_.Hit(kFaultPointEtlLoad));
                // Per-source scoped point ("dw.etl.load:<url>"): only rules
                // armed with this exact name draw here, so a poisoned
                // source never shifts the schedule of the healthy ones.
                DWQA_RETURN_NOT_OK(fault_.Hit(
                    std::string(kFaultPointEtlLoad) + ":" + fact.url));
                return loader.LoadRecord(fact_name, record);
              },
              &load_stats, &deadline_, kFaultPointEtlLoad);
          load_span.Annotate("attempts",
                             static_cast<double>(load_stats.attempts));
        }
        report.retries += size_t(
            load_stats.attempts > 1 ? load_stats.attempts - 1 : 0);
        report.transient_failures += size_t(load_stats.transient_failures);
        count_retries(load_stats);
        if (st.ok()) {
          source_breaker->RecordSuccess();
          ++report.rows_loaded;
          ++rows_loaded_total_;
          metrics_
              .GetCounter(kMetricDwEtlRowsLoaded, {},
                          "Fact rows the ETL loaded into the warehouse")
              ->Increment();
          if (config_.dedup_feed) fed_keys_.insert(key);
          fact.disposition = qa::FactDisposition::kLoaded;
          count_fact("loaded");
          fact_span.Annotate("disposition", "loaded");
        } else {
          if (st.IsDeadlineExceeded()) {
            // Budget exhaustion is not evidence against the source.
            report.deadline_exhausted = true;
          } else {
            source_breaker->RecordFailure();
            report.wasted_retries += size_t(
                load_stats.attempts > 1 ? load_stats.attempts - 1 : 0);
            if (load_stats.attempts > 1) {
              metrics_
                  .GetCounter(kMetricFeedWastedRetries, {},
                              "Retry attempts beyond the first on "
                              "operations that ultimately failed")
                  ->Increment(static_cast<double>(load_stats.attempts - 1));
            }
          }
          ++report.rows_rejected;
          metrics_
              .GetCounter(kMetricDwEtlRowsRejected, {},
                          "Fact rows the ETL layer refused")
              ->Increment();
          QuarantineFact(fact,
                         IsTransient(st)
                             ? qa::RejectReason::kTransientExhausted
                             : qa::RejectReason::kEtlRejected,
                         st.ToString(), &report);
          fact.disposition = qa::FactDisposition::kRejected;
          count_fact("rejected");
          fact_span.Annotate("disposition", "rejected");
        }
        report.facts.push_back(std::move(fact));
      }
    }
    completed_questions_.insert(question);
    if (checkpointing &&
        ++questions_since_checkpoint >= resilience.checkpoint_every) {
      Status saved = save_checkpoint();
      if (saved.ok()) {
        questions_since_checkpoint = 0;
      } else {
        // Satellite fix: a failed boundary save must not abort a feed that
        // is otherwise making progress. Log it, count it, and retry at the
        // next boundary (the counter keeps growing, so the next boundary
        // check fires immediately).
        ++report.checkpoint_failures;
        metrics_
            .GetCounter(kMetricFeedCheckpointFailures, {},
                        "Boundary checkpoint saves that failed")
            ->Increment();
        DWQA_LOG(Warning) << "Step 5: checkpoint save failed ("
                          << saved.ToString()
                          << "); retrying at the next boundary";
      }
    }
  }
  if (checkpointing && questions_since_checkpoint > 0) {
    // The final save is load-bearing: losing it would silently discard the
    // progress of every question since the last good save.
    DWQA_RETURN_NOT_OK(save_checkpoint());
  }
  if (deadline_.exhausted()) report.deadline_exhausted = true;
  report.health.Capture(deadline_, breakers_);
  report.health.breaker_rejections = report.breaker_rejections;
  report.health.wasted_retries = report.wasted_retries;
  for (const auto& [level, count] : report.questions_by_degradation) {
    report.health.questions_by_degradation[qa::DegradationLevelName(level)] =
        count;
  }
  steps_done_[4] = true;
  return report;
}

}  // namespace integration
}  // namespace dwqa
