#include "integration/feed_checkpoint.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace dwqa {
namespace integration {

namespace {

namespace fs = std::filesystem;

constexpr char kMagic[] = "dwqa-feed-checkpoint";
constexpr char kVersion[] = "1";

Status MalformedLine(size_t line_no, const std::string& why) {
  return Status::InvalidArgument("checkpoint line " +
                                 std::to_string(line_no) + ": " + why);
}

}  // namespace

std::string FeedCheckpointSerde::ToText(const FeedCheckpoint& checkpoint) {
  std::string out;
  out += std::string(kMagic) + "\t" + kVersion + "\n";
  out += "loaded\t" + std::to_string(checkpoint.rows_loaded) + "\n";
  for (const std::string& question : checkpoint.completed_questions) {
    out += "question\t" + question + "\n";
  }
  for (const std::string& key : checkpoint.fed_keys) {
    out += "key\t" + key + "\n";
  }
  for (const auto& [reason, count] : checkpoint.reject_counts) {
    out += "reject\t" + reason + "\t" + std::to_string(count) + "\n";
  }
  return out;
}

Result<FeedCheckpoint> FeedCheckpointSerde::FromText(
    const std::string& text) {
  FeedCheckpoint checkpoint;
  bool saw_magic = false;
  size_t line_no = 0;
  for (const std::string& raw_line : Split(text, '\n')) {
    ++line_no;
    std::string line = Trim(raw_line);
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> fields = Split(line, '\t');
    const std::string& kind = fields[0];
    if (!saw_magic) {
      if (kind != kMagic || fields.size() != 2) {
        return MalformedLine(line_no,
                             "expected '" + std::string(kMagic) +
                                 "<TAB>version' header, got '" + line + "'");
      }
      if (fields[1] != kVersion) {
        return Status::InvalidArgument("unsupported checkpoint version '" +
                                       fields[1] + "'");
      }
      saw_magic = true;
      continue;
    }
    if (kind == "loaded") {
      if (fields.size() != 2 || !IsDigits(fields[1])) {
        return MalformedLine(line_no, "malformed loaded line");
      }
      checkpoint.rows_loaded = std::stoull(fields[1]);
    } else if (kind == "question") {
      if (fields.size() != 2 || fields[1].empty()) {
        return MalformedLine(line_no, "malformed question line");
      }
      checkpoint.completed_questions.insert(fields[1]);
    } else if (kind == "key") {
      if (fields.size() != 2 || fields[1].empty()) {
        return MalformedLine(line_no, "malformed key line");
      }
      checkpoint.fed_keys.insert(fields[1]);
    } else if (kind == "reject") {
      if (fields.size() != 3 || !IsDigits(fields[2])) {
        return MalformedLine(line_no, "malformed reject line");
      }
      checkpoint.reject_counts[fields[1]] = std::stoull(fields[2]);
    } else {
      return MalformedLine(line_no, "unknown record kind '" + kind + "'");
    }
  }
  if (!saw_magic) {
    return Status::InvalidArgument(
        "not a feed checkpoint: missing '" + std::string(kMagic) +
        "' header");
  }
  return checkpoint;
}

Status FeedCheckpointFile::Save(const FeedCheckpoint& checkpoint,
                                const std::string& path) {
  fs::path target(path);
  if (target.has_parent_path()) {
    std::error_code ec;
    fs::create_directories(target.parent_path(), ec);
    if (ec) {
      return Status::IOError("cannot create directory '" +
                             target.parent_path().string() +
                             "': " + ec.message());
    }
  }
  fs::path tmp = target;
  tmp += ".tmp";
  {
    std::ofstream out(tmp);
    if (!out) return Status::IOError("cannot open '" + tmp.string() + "'");
    out << FeedCheckpointSerde::ToText(checkpoint);
    if (!out.good()) {
      return Status::IOError("write failed: " + tmp.string());
    }
  }
  std::error_code ec;
  fs::rename(tmp, target, ec);
  if (ec) {
    return Status::IOError("cannot rename '" + tmp.string() + "' to '" +
                           target.string() + "': " + ec.message());
  }
  return Status::OK();
}

Result<FeedCheckpoint> FeedCheckpointFile::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return FeedCheckpointSerde::FromText(buffer.str());
}

bool FeedCheckpointFile::Exists(const std::string& path) {
  std::error_code ec;
  return fs::exists(fs::path(path), ec);
}

}  // namespace integration
}  // namespace dwqa
