#include "integration/feed_checkpoint.h"

#include <cerrno>
#include <cstdlib>

#include "common/string_util.h"

namespace dwqa {
namespace integration {

namespace {

constexpr char kMagic[] = "dwqa-feed-checkpoint";
/// Version 2 added the `lsn` line; version-1 files (no WAL position) still
/// load, with wal_lsn = 0.
constexpr char kVersion[] = "2";
constexpr char kCompatVersion[] = "1";

Status MalformedLine(size_t line_no, const std::string& why) {
  return Status::InvalidArgument("checkpoint line " +
                                 std::to_string(line_no) + ": " + why);
}

/// Overflow-safe digits → uint64 (std::stoull throws on overflow).
bool ParseU64(const std::string& s, uint64_t* out) {
  if (!IsDigits(s) || s.size() > 20) return false;
  errno = 0;
  char* end = nullptr;
  uint64_t v = std::strtoull(s.c_str(), &end, 10);
  if (errno == ERANGE || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

}  // namespace

Status ValidateCheckpointAgainstLsn(const FeedCheckpoint& checkpoint,
                                    uint64_t recovered_lsn) {
  if (checkpoint.wal_lsn > recovered_lsn) {
    return Status::OutOfRange(
        "stale checkpoint: it records WAL position " +
        std::to_string(checkpoint.wal_lsn) +
        " but the recovered data only reaches LSN " +
        std::to_string(recovered_lsn) +
        " — the checkpoint claims progress the durable data does not back");
  }
  return Status::OK();
}

std::string FeedCheckpointSerde::ToText(const FeedCheckpoint& checkpoint) {
  std::string out;
  out += std::string(kMagic) + "\t" + kVersion + "\n";
  out += "loaded\t" + std::to_string(checkpoint.rows_loaded) + "\n";
  out += "lsn\t" + std::to_string(checkpoint.wal_lsn) + "\n";
  for (const std::string& question : checkpoint.completed_questions) {
    out += "question\t" + question + "\n";
  }
  for (const std::string& key : checkpoint.fed_keys) {
    out += "key\t" + key + "\n";
  }
  for (const auto& [reason, count] : checkpoint.reject_counts) {
    out += "reject\t" + reason + "\t" + std::to_string(count) + "\n";
  }
  return out;
}

Result<FeedCheckpoint> FeedCheckpointSerde::FromText(
    const std::string& text) {
  FeedCheckpoint checkpoint;
  bool saw_magic = false;
  size_t line_no = 0;
  for (const std::string& raw_line : Split(text, '\n')) {
    ++line_no;
    std::string line = Trim(raw_line);
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> fields = Split(line, '\t');
    const std::string& kind = fields[0];
    if (!saw_magic) {
      if (kind != kMagic || fields.size() != 2) {
        return MalformedLine(line_no,
                             "expected '" + std::string(kMagic) +
                                 "<TAB>version' header, got '" + line + "'");
      }
      if (fields[1] != kVersion && fields[1] != kCompatVersion) {
        return Status::InvalidArgument("unsupported checkpoint version '" +
                                       fields[1] + "'");
      }
      saw_magic = true;
      continue;
    }
    if (kind == "loaded") {
      uint64_t loaded = 0;
      if (fields.size() != 2 || !ParseU64(fields[1], &loaded)) {
        return MalformedLine(line_no, "malformed loaded line");
      }
      checkpoint.rows_loaded = static_cast<size_t>(loaded);
    } else if (kind == "lsn") {
      if (fields.size() != 2 || !ParseU64(fields[1], &checkpoint.wal_lsn)) {
        return MalformedLine(line_no, "malformed lsn line");
      }
    } else if (kind == "question") {
      if (fields.size() != 2 || fields[1].empty()) {
        return MalformedLine(line_no, "malformed question line");
      }
      checkpoint.completed_questions.insert(fields[1]);
    } else if (kind == "key") {
      if (fields.size() != 2 || fields[1].empty()) {
        return MalformedLine(line_no, "malformed key line");
      }
      checkpoint.fed_keys.insert(fields[1]);
    } else if (kind == "reject") {
      uint64_t count = 0;
      if (fields.size() != 3 || !ParseU64(fields[2], &count)) {
        return MalformedLine(line_no, "malformed reject line");
      }
      checkpoint.reject_counts[fields[1]] = static_cast<size_t>(count);
    } else {
      return MalformedLine(line_no, "unknown record kind '" + kind + "'");
    }
  }
  if (!saw_magic) {
    return Status::InvalidArgument(
        "not a feed checkpoint: missing '" + std::string(kMagic) +
        "' header");
  }
  return checkpoint;
}

Status FeedCheckpointFile::Save(const FeedCheckpoint& checkpoint,
                                const std::string& path, Fs* fs) {
  fs = FsOrReal(fs);
  size_t slash = path.find_last_of('/');
  if (slash != std::string::npos && slash > 0) {
    DWQA_RETURN_NOT_OK(fs->CreateDirs(path.substr(0, slash)));
  }
  return WriteFileAtomic(fs, path, FeedCheckpointSerde::ToText(checkpoint));
}

Result<FeedCheckpoint> FeedCheckpointFile::Load(const std::string& path,
                                                Fs* fs) {
  fs = FsOrReal(fs);
  DWQA_ASSIGN_OR_RETURN(std::string text, fs->ReadFile(path));
  return FeedCheckpointSerde::FromText(text);
}

bool FeedCheckpointFile::Exists(const std::string& path, Fs* fs) {
  return FsOrReal(fs)->Exists(path);
}

}  // namespace integration
}  // namespace dwqa
