#ifndef DWQA_INTEGRATION_QUERY_GENERATION_H_
#define DWQA_INTEGRATION_QUERY_GENERATION_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "dw/warehouse.h"

namespace dwqa {
namespace integration {

/// \brief A DW analysis context from which QA questions are derived.
struct AnalysisContext {
  /// The external attribute the analyst wants ("temperature", "price").
  std::string attribute;
  /// Dimension whose members scope the questions ("Airport").
  std::string dimension;
  /// Level at which to iterate members ("City" deduplicates airports that
  /// share a city; "Airport" asks per airport, exercising Step 2/3 name
  /// resolution).
  std::string level;
  int year = 2004;
  int month = 1;
};

/// \brief Automatic generation of QA queries from the DW — the paper's
/// second future-work item (§5): "how an initial query in the DW system can
/// generate different queries in the QA system".
///
/// Given an analysis context (analyze <attribute> for the members of
/// <dimension> during <month, year>), one natural-language question is
/// produced per distinct member value at the requested level:
/// "What is the temperature in El Prat in January of 2004?".
class QueryGeneration {
 public:
  static Result<std::vector<std::string>> GenerateQuestions(
      const dw::Warehouse& warehouse, const AnalysisContext& context);
};

}  // namespace integration
}  // namespace dwqa

#endif  // DWQA_INTEGRATION_QUERY_GENERATION_H_
