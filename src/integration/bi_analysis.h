#ifndef DWQA_INTEGRATION_BI_ANALYSIS_H_
#define DWQA_INTEGRATION_BI_ANALYSIS_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "dw/warehouse.h"

namespace dwqa {
namespace integration {

/// \brief Average last-minute tickets per destination-temperature bucket.
struct TempRangeStat {
  double low_c = 0.0;
  double high_c = 0.0;
  size_t observations = 0;
  double avg_tickets = 0.0;
};

/// \brief Result of the sales-vs-weather analysis the paper's scenario
/// motivates: "the range of temperatures that lead to increase the last
/// minute sales to that city".
struct BiReport {
  std::vector<TempRangeStat> ranges;
  /// Pearson correlation between daily destination temperature and ticket
  /// count being inside the best range (point-biserial flavour); plus the
  /// plain temperature/tickets correlation for reference.
  double pearson_temperature_tickets = 0.0;
  /// The bucket with the highest average tickets.
  TempRangeStat best;
  size_t joined_days = 0;
};

/// \brief The BI layer closing the loop of Step 5: joins the operational
/// Last Minute Sales fact with the QA-fed Weather fact on (destination
/// city, date) and reports ticket demand per temperature range.
class BiAnalysis {
 public:
  /// `bucket_width_c` sets the temperature bin size.
  static Result<BiReport> SalesVsTemperature(
      const dw::Warehouse& warehouse,
      const std::string& sales_fact = "LastMinuteSales",
      const std::string& weather_fact = "Weather",
      double bucket_width_c = 5.0);
};

}  // namespace integration
}  // namespace dwqa

#endif  // DWQA_INTEGRATION_BI_ANALYSIS_H_
