#ifndef DWQA_INTEGRATION_BI_ANALYSIS_H_
#define DWQA_INTEGRATION_BI_ANALYSIS_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "dw/cost_estimator.h"
#include "dw/federation/federated_engine.h"
#include "dw/olap.h"
#include "dw/warehouse.h"

namespace dwqa {
namespace integration {

/// \brief Average last-minute tickets per destination-temperature bucket.
struct TempRangeStat {
  double low_c = 0.0;
  double high_c = 0.0;
  size_t observations = 0;
  double avg_tickets = 0.0;
};

/// \brief Result of the sales-vs-weather analysis the paper's scenario
/// motivates: "the range of temperatures that lead to increase the last
/// minute sales to that city".
struct BiReport {
  std::vector<TempRangeStat> ranges;
  /// Pearson correlation between daily destination temperature and ticket
  /// count being inside the best range (point-biserial flavour); plus the
  /// plain temperature/tickets correlation for reference.
  double pearson_temperature_tickets = 0.0;
  /// The bucket with the highest average tickets.
  TempRangeStat best;
  size_t joined_days = 0;
  /// True when the sales aggregate came from a materialized view (the
  /// answer is byte-identical either way; this is observability).
  bool sales_from_view = false;
  /// Same, for the weather aggregate.
  bool weather_from_view = false;
};

/// How the analysis sources its two OLAP aggregates.
enum class BiMode {
  /// Views when the attached catalog covers a query, recompute otherwise
  /// (the default — always answers, as cheaply as possible).
  kViewFirst,
  /// Views only: fails with Unavailable when a needed view is missing.
  /// The serving layer's degradation rung for estimated-too-expensive BI
  /// requests — it never touches base facts.
  kViewOnly,
  /// Full recompute, ignoring any attached catalog (golden suites compare
  /// kViewFirst against this for byte-identity).
  kRecompute,
};

const char* BiModeName(BiMode mode);

/// \brief A federated sales-vs-weather analysis: the report plus which
/// member warehouses each of its two aggregates actually covers.
struct FederatedBiReport {
  BiReport report;
  /// Coverage of the sales aggregate's fan-out.
  dw::fed::FederatedCoverage sales_coverage;
  /// Coverage of the weather aggregate's fan-out.
  dw::fed::FederatedCoverage weather_coverage;

  /// True when both aggregates covered every member warehouse.
  bool full() const {
    return sales_coverage.full() && weather_coverage.full();
  }
};

/// \brief The BI layer closing the loop of Step 5: joins the operational
/// Last Minute Sales fact with the QA-fed Weather fact on (destination
/// city, date) and reports ticket demand per temperature range.
class BiAnalysis {
 public:
  /// The canonical sales aggregate: daily tickets per destination city.
  static dw::OlapQuery SalesQuery(
      const std::string& sales_fact = "LastMinuteSales");

  /// The canonical weather aggregate: daily average temperature per city.
  static dw::OlapQuery WeatherQuery(
      const std::string& weather_fact = "Weather");

  /// `bucket_width_c` sets the temperature bin size. With a view catalog
  /// attached to `warehouse`, both aggregates are answered from matching
  /// views when covered (per `mode`) — byte-identical to the recompute.
  static Result<BiReport> SalesVsTemperature(
      const dw::Warehouse& warehouse,
      const std::string& sales_fact = "LastMinuteSales",
      const std::string& weather_fact = "Weather",
      double bucket_width_c = 5.0, BiMode mode = BiMode::kViewFirst);

  /// The federated variant: both aggregates fan out across `engine`'s
  /// member warehouses and merge back before the same join/bucket/
  /// correlation pass as the local analysis — with a full-coverage
  /// federation of one warehouse this returns byte-identical numbers to
  /// SalesVsTemperature. Per-warehouse failures degrade into the coverage
  /// annotations; only the loss of every member fails the analysis.
  static Result<FederatedBiReport> SalesVsTemperatureFederated(
      const dw::fed::FederatedEngine& engine,
      const std::string& sales_fact = "LastMinuteSales",
      const std::string& weather_fact = "Weather",
      double bucket_width_c = 5.0);

  /// Combined cost estimate of the whole analysis — the sum of its two
  /// aggregates' estimates, without executing either. The serving layer
  /// weighs `bi` admissions with this.
  static Result<dw::CostEstimate> EstimateCost(
      const dw::Warehouse& warehouse, const dw::CostEstimator& estimator,
      const std::string& sales_fact = "LastMinuteSales",
      const std::string& weather_fact = "Weather");
};

}  // namespace integration
}  // namespace dwqa

#endif  // DWQA_INTEGRATION_BI_ANALYSIS_H_
