#include "integration/multidim_ir.h"

#include <algorithm>
#include <unordered_set>

#include "common/string_util.h"
#include "dw/etl.h"

namespace dwqa {
namespace integration {

Result<MultidimIr> MultidimIr::Create() {
  dw::MdSchema schema;
  DWQA_RETURN_NOT_OK(
      schema.AddDimension({"Location", {{"City"}, {"Country"}}}));
  DWQA_RETURN_NOT_OK(
      schema.AddDimension({"Time", {{"Date"}, {"Month"}, {"Year"}}}));
  dw::FactDef docs;
  docs.name = "Documents";
  docs.measures = {{"DocId", dw::ColumnType::kInt64, dw::AggFn::kCount}};
  docs.roles = {{"location", "Location"}, {"published", "Time"}};
  DWQA_RETURN_NOT_OK(schema.AddFact(std::move(docs)));
  MultidimIr mdir;
  DWQA_ASSIGN_OR_RETURN(dw::Warehouse wh,
                        dw::Warehouse::Create(std::move(schema)));
  mdir.wh_ = std::make_unique<dw::Warehouse>(std::move(wh));
  return mdir;
}

Status MultidimIr::AttachCorpus(text::AnalyzedCorpus* corpus) {
  if (corpus == nullptr) {
    return Status::InvalidArgument("corpus must not be null");
  }
  if (doc_count_ > 0) {
    return Status::InvalidArgument(
        "AttachCorpus must run before the first AddDocument");
  }
  corpus_ = corpus;
  index_ = ir::InvertedIndex(corpus->mutable_dictionary());
  return Status::OK();
}

Status MultidimIr::AddDocument(ir::DocId doc, const std::string& plain_text,
                               const std::string& city,
                               const std::string& country,
                               const Date& published) {
  if (doc < 0) return Status::InvalidArgument("invalid document id");
  if (!published.IsValid()) {
    return Status::InvalidArgument("invalid publication date");
  }
  DWQA_ASSIGN_OR_RETURN(dw::MemberId loc,
                        wh_->AddMember("Location", {city, country}));
  DWQA_ASSIGN_OR_RETURN(dw::MemberId when,
                        wh_->AddMember("Time",
                                       dw::DateMemberPath(published)));
  DWQA_RETURN_NOT_OK(wh_->InsertFact(
      "Documents", {loc, when}, {dw::Value(static_cast<int64_t>(doc))}));
  if (corpus_ != nullptr) {
    // Shared-corpus path: reuse the analyze-once representation (and feed
    // it, so later consumers of the same corpus see this document too).
    const text::AnalyzedDocument* analysis = corpus_->Find(doc);
    if (analysis == nullptr) analysis = &corpus_->Add(doc, plain_text);
    index_.AddAnalyzed(doc, *analysis);
  } else {
    index_.AddDocument(doc, plain_text);
  }
  ++doc_count_;
  return Status::OK();
}

Result<std::vector<ir::DocId>> MultidimIr::FilterDocs(
    const std::vector<dw::Filter>& filters) const {
  DWQA_ASSIGN_OR_RETURN(const dw::Table* fact, wh_->FactTable("Documents"));
  DWQA_ASSIGN_OR_RETURN(const dw::FactDef* def,
                        wh_->schema().FindFact("Documents"));
  // Resolve filters to (fk column, dimension, level).
  struct Resolved {
    size_t fk_col;
    std::string dimension;
    std::string level;
    std::unordered_set<std::string> values;
  };
  std::vector<Resolved> resolved;
  for (const dw::Filter& f : filters) {
    DWQA_ASSIGN_OR_RETURN(size_t ri, def->RoleIndex(f.role));
    Resolved r{ri, def->roles[ri].dimension, f.level, {}};
    DWQA_ASSIGN_OR_RETURN(const dw::DimensionDef* dim,
                          wh_->schema().FindDimension(r.dimension));
    DWQA_RETURN_NOT_OK(dim->LevelIndex(f.level).status());
    for (const std::string& v : f.values) r.values.insert(ToLower(v));
    resolved.push_back(std::move(r));
  }
  std::vector<ir::DocId> out;
  for (size_t row = 0; row < fact->row_count(); ++row) {
    bool keep = true;
    for (const Resolved& r : resolved) {
      dw::MemberId member =
          static_cast<dw::MemberId>(fact->Get(row, r.fk_col).as_int());
      DWQA_ASSIGN_OR_RETURN(
          std::string value,
          wh_->MemberLevelValue(r.dimension, member, r.level));
      if (!r.values.count(ToLower(value))) {
        keep = false;
        break;
      }
    }
    if (keep) {
      out.push_back(static_cast<ir::DocId>(
          fact->Get(row, def->roles.size()).as_int()));
    }
  }
  return out;
}

Result<std::vector<MultidimIr::Hit>> MultidimIr::Search(
    const std::string& query, const std::vector<dw::Filter>& filters,
    size_t k) const {
  DWQA_ASSIGN_OR_RETURN(std::vector<ir::DocId> allowed, FilterDocs(filters));
  std::unordered_set<ir::DocId> allowed_set(allowed.begin(), allowed.end());
  // Over-fetch, then scope to the multidimensional slice.
  std::vector<ir::DocHit> hits = index_.Search(query, doc_count_);
  std::vector<Hit> out;
  for (const ir::DocHit& h : hits) {
    if (!allowed_set.count(h.doc)) continue;
    out.push_back({h.doc, h.score});
    if (out.size() >= k) break;
  }
  return out;
}

Result<dw::OlapResult> MultidimIr::CountBy(
    const std::string& role, const std::string& level,
    const std::vector<dw::Filter>& filters) const {
  dw::OlapEngine engine(wh_.get());
  dw::OlapQuery q;
  q.fact = "Documents";
  q.measures = {{"DocId", dw::AggFn::kCount}};
  q.group_by = {{role, level}};
  q.filters = filters;
  return engine.Execute(q);
}

}  // namespace integration
}  // namespace dwqa
