#include "integration/pipeline_health.h"

#include <cmath>

#include "common/metric_names.h"
#include "common/string_util.h"
#include "common/table_printer.h"

namespace dwqa {
namespace integration {

void PipelineHealth::Capture(const Deadline& deadline,
                             const CircuitBreakerRegistry& breakers_registry) {
  budget_limit = deadline.budget();
  budget_spent = deadline.spent();
  deadline_exhausted = deadline.exhausted();
  deadline_stage = deadline.exhausted_stage();
  spent_by_stage = deadline.spent_by_stage();

  breakers.clear();
  breakers_open = 0;
  for (const auto& [name, breaker] : breakers_registry.breakers()) {
    BreakerHealth health;
    health.name = name;
    health.state = BreakerStateName(breaker.state());
    health.opens = breaker.opens();
    health.rejected = breaker.rejected();
    health.failures = breaker.total_failures();
    if (breaker.state() != BreakerState::kClosed) ++breakers_open;
    breakers.push_back(std::move(health));
  }
}

void PipelineHealth::Capture(const Deadline& deadline,
                             const CircuitBreakerRegistry& breakers_registry,
                             const MetricRegistry& metrics) {
  Capture(deadline, breakers_registry);
  breaker_rejections =
      static_cast<size_t>(metrics.FamilySum(kMetricBreakerRejections));
  wasted_retries =
      static_cast<size_t>(metrics.Value(kMetricFeedWastedRetries));
  questions_by_degradation.clear();
  for (const MetricSnapshot& series :
       metrics.SnapshotFamily(kMetricFeedQuestionsByLevel)) {
    auto level = series.labels.find("level");
    if (level == series.labels.end()) continue;
    questions_by_degradation[level->second] =
        static_cast<size_t>(series.value);
  }
}

std::string PipelineHealth::RenderTable() const {
  TablePrinter table({"component", "metric", "value"});
  std::string limit = std::isinf(budget_limit)
                          ? std::string("unlimited")
                          : FormatDouble(budget_limit, 0);
  table.AddRow({"deadline", "budget", limit});
  table.AddRow({"deadline", "spent", FormatDouble(budget_spent, 0)});
  table.AddRow({"deadline", "exhausted", deadline_exhausted ? "yes" : "no"});
  if (!deadline_stage.empty()) {
    table.AddRow({"deadline", "exhausted_at", deadline_stage});
  }
  for (const auto& [stage, spent] : spent_by_stage) {
    table.AddRow({"deadline", "spent:" + stage, FormatDouble(spent, 0)});
  }
  for (const BreakerHealth& b : breakers) {
    table.AddRow({"breaker:" + b.name, "state", b.state});
    table.AddRow({"breaker:" + b.name, "opens", std::to_string(b.opens)});
    table.AddRow(
        {"breaker:" + b.name, "rejected", std::to_string(b.rejected)});
    table.AddRow(
        {"breaker:" + b.name, "failures", std::to_string(b.failures)});
  }
  table.AddRow({"breakers", "open", std::to_string(breakers_open)});
  table.AddRow(
      {"breakers", "rejections", std::to_string(breaker_rejections)});
  for (const auto& [level, count] : questions_by_degradation) {
    table.AddRow({"degradation", level, std::to_string(count)});
  }
  table.AddRow({"retries", "wasted", std::to_string(wasted_retries)});
  return table.Render();
}

}  // namespace integration
}  // namespace dwqa
