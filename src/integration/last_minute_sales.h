#ifndef DWQA_INTEGRATION_LAST_MINUTE_SALES_H_
#define DWQA_INTEGRATION_LAST_MINUTE_SALES_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "dw/warehouse.h"
#include "integration/pipeline.h"
#include "ontology/uml_model.h"
#include "web/weather_model.h"

namespace dwqa {
namespace integration {

/// \brief An airport of the synthetic airline, with its geographic path.
struct AirportInfo {
  std::string name;       ///< "El Prat"
  std::string city;       ///< "Barcelona"
  std::string state;      ///< "Catalonia"
  std::string country;    ///< "Spain"
  std::vector<std::string> aliases;  ///< {"Kennedy International Airport"}
};

/// \brief Builders for the paper's running example (Figures 1 and 2): the
/// Last Minute Sales multidimensional model of an airline's DW, plus a
/// synthetic operational data generator whose sales are *correlated with
/// destination-city weather* — the hidden relationship the BI analysis of
/// Step 5 is meant to surface.
class LastMinuteSales {
 public:
  /// The airports the airline serves, including the ambiguous names the
  /// paper discusses (JFK, John Wayne, La Guardia, El Prat).
  static const std::vector<AirportInfo>& Airports();

  /// The UML multidimensional model of Figure 1: fact "Last Minute Sales"
  /// (measures Price, Miles, Tickets) with dimensions Airport (origin and
  /// destination roles, hierarchy Airport → City → State → Country),
  /// Customer (Customer → Segment) and Date (Date → Month → Year).
  static ontology::UmlModel MakeUmlModel();

  /// The logical warehouse schema matching MakeUmlModel(), plus the
  /// "Weather" feedback fact (City/Date/Source dims, TemperatureC measure)
  /// that Step 5 fills.
  static dw::MdSchema MakeSchema();

  /// Creates the warehouse and registers all airport/customer members.
  static Result<dw::Warehouse> MakeWarehouse();

  /// Populates the Last Minute Sales fact with `days` days of synthetic
  /// sales starting at `start`, drawing ticket demand from the weather
  /// model: destination days whose temperature falls in [18, 28] ºC sell
  /// roughly twice as many last-minute tickets. Returns rows inserted.
  static Result<size_t> GenerateSales(dw::Warehouse* warehouse,
                                      const web::WeatherModel& weather,
                                      const Date& start, int days,
                                      uint64_t seed = 7);

  /// Pipeline configuration pre-filled with the scenario's alias metadata
  /// ("JFK" ↔ "Kennedy International Airport").
  static PipelineConfig DefaultPipelineConfig();

  /// The pleasant-temperature interval planted by GenerateSales.
  static constexpr double kBoostLowC = 18.0;
  static constexpr double kBoostHighC = 28.0;
};

}  // namespace integration
}  // namespace dwqa

#endif  // DWQA_INTEGRATION_LAST_MINUTE_SALES_H_
