#include "web/weather_model.h"

#include <cmath>

#include "common/rng.h"
#include "common/string_util.h"

namespace dwqa {
namespace web {

const std::vector<CityClimate>& WeatherModel::Cities() {
  static const auto* kCities = new std::vector<CityClimate>{
      {"Barcelona", 9.0, 25.0, 2.5}, {"Madrid", 6.0, 26.0, 3.0},
      {"Valencia", 11.0, 26.0, 2.0}, {"Seville", 11.0, 29.0, 2.5},
      {"Paris", 4.0, 20.0, 3.0},     {"London", 5.0, 18.0, 3.0},
      {"Rome", 8.0, 25.0, 2.5},      {"New York", 0.0, 25.0, 4.0},
      {"Costa Mesa", 14.0, 23.0, 2.0},
  };
  return *kCities;
}

Result<const CityClimate*> WeatherModel::FindCity(const std::string& name) {
  std::string lower = ToLower(name);
  for (const CityClimate& c : Cities()) {
    if (ToLower(c.name) == lower) return &c;
  }
  return Status::NotFound("no climate data for city '" + name + "'");
}

Result<double> WeatherModel::TemperatureCelsius(const std::string& city,
                                                const Date& date) const {
  DWQA_ASSIGN_OR_RETURN(const CityClimate* climate, FindCity(city));
  if (!date.IsValid()) {
    return Status::InvalidArgument("invalid date " + date.ToIsoString());
  }
  // Day of year, 0-based; January 15 ≈ coldest, July 15 ≈ warmest.
  int64_t doy = date.ToEpochDays() - Date(date.year(), 1, 1).ToEpochDays();
  double phase =
      2.0 * M_PI * (static_cast<double>(doy) - 15.0) / 365.0;
  double seasonal = 0.5 * (1.0 - std::cos(phase));  // 0 in Jan, 1 in Jul.
  double mean = climate->january_mean_c +
                (climate->july_mean_c - climate->january_mean_c) * seasonal;
  // Deterministic per (seed, city, date) noise.
  uint64_t h = seed_;
  for (char c : ToLower(city)) h = h * 1315423911ULL + uint64_t(c);
  h = h * 2654435761ULL + static_cast<uint64_t>(date.ToEpochDays());
  Rng rng(h);
  return mean + rng.NextGaussian(0.0, climate->daily_noise_c);
}

Result<double> WeatherModel::TemperatureFahrenheit(const std::string& city,
                                                   const Date& date) const {
  DWQA_ASSIGN_OR_RETURN(double c, TemperatureCelsius(city, date));
  return CelsiusToFahrenheit(c);
}

Result<std::string> WeatherModel::Condition(const std::string& city,
                                            const Date& date) const {
  DWQA_ASSIGN_OR_RETURN(double c, TemperatureCelsius(city, date));
  uint64_t h = seed_ ^ 0x9E3779B97F4A7C15ULL;
  for (char ch : ToLower(city)) h = h * 131ULL + uint64_t(ch);
  h += static_cast<uint64_t>(date.ToEpochDays());
  Rng rng(h);
  double roll = rng.NextDouble();
  if (c < 0.0 && roll < 0.5) return std::string("Snow");
  if (roll < 0.25) return std::string("Rain");
  if (roll < 0.55) return std::string("Cloudy");
  return std::string("Clear skies");
}

}  // namespace web
}  // namespace dwqa
