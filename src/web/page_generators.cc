#include "web/page_generators.h"

#include <cmath>

#include "common/string_util.h"

namespace dwqa {
namespace web {

Result<double> PageGenerators::PublishedTemperature(const WeatherModel& model,
                                                    const std::string& city,
                                                    const Date& date) {
  DWQA_ASSIGN_OR_RETURN(double c, model.TemperatureCelsius(city, date));
  return std::round(c);
}

Result<std::string> PageGenerators::ProseWeatherPage(const WeatherModel& model,
                                                     const std::string& city,
                                                     int year, int month,
                                                     ProseStyle style) {
  DWQA_RETURN_NOT_OK(Date::Make(year, month, 1).status());
  std::string html = "<html><head><title>" + city + " Weather in " +
                     Date(year, month, 1).MonthName() + " " +
                     std::to_string(year) + "</title></head>\n<body>\n";
  html += "<p>Historical weather conditions in " + city + " during " +
          Date(year, month, 1).MonthName() + " " + std::to_string(year) +
          ".</p>\n";
  int days = Date::DaysInMonth(year, month);
  // Newest first, as on the blog-style page of Figure 4.
  for (int d = days; d >= 1; --d) {
    Date date(year, month, d);
    DWQA_ASSIGN_OR_RETURN(double c, PublishedTemperature(model, city, date));
    double f = WeatherModel::CelsiusToFahrenheit(c);
    DWQA_ASSIGN_OR_RETURN(std::string cond, model.Condition(city, date));
    html += "<p>" + date.ToLongString() + "</p>\n";
    std::string reading;
    switch (style) {
      case ProseStyle::kCelsiusWithFahrenheit:
        reading = FormatDouble(c, 0) + "\xC2\xBA C around " +
                  FormatDouble(f, 1) + " F";
        break;
      case ProseStyle::kFahrenheitWithCelsius:
        reading = FormatDouble(f, 1) + " F around " + FormatDouble(c, 0) +
                  "\xC2\xBA C";
        break;
      case ProseStyle::kFahrenheitOnly:
        reading = FormatDouble(f, 1) + " F";
        break;
    }
    html += "<p>" + city + " Weather: Temperature " + reading + " " + cond +
            " today</p>\n";
  }
  html += "</body></html>\n";
  return html;
}

Result<std::string> PageGenerators::TableWeatherPage(const WeatherModel& model,
                                                     const std::string& city,
                                                     int year, int month) {
  DWQA_RETURN_NOT_OK(Date::Make(year, month, 1).status());
  std::string html = "<html><head><title>" + city +
                     " monthly weather table</title></head>\n<body>\n";
  html += "<h1>" + city + " weather, " + Date(year, month, 1).MonthName() +
          " " + std::to_string(year) + "</h1>\n<table>\n";
  html +=
      "<tr><th>Date</th><th>High (\xC2\xBA\x43)</th><th>Low "
      "(\xC2\xBA\x43)</th><th>Conditions</th></tr>\n";
  int days = Date::DaysInMonth(year, month);
  for (int d = 1; d <= days; ++d) {
    Date date(year, month, d);
    DWQA_ASSIGN_OR_RETURN(double mean, PublishedTemperature(model, city,
                                                            date));
    // High/low straddle the daily mean; the *published mean* is what the
    // ground truth records ((high+low)/2 == mean).
    double high = mean + 3.0;
    double low = mean - 3.0;
    DWQA_ASSIGN_OR_RETURN(std::string cond, model.Condition(city, date));
    // Cells carry a bare degree sign; the scale letter lives only in the
    // header — after naive tag stripping the measure-unit association is
    // lost, the paper's Figure 5 failure mode.
    html += "<tr><td>" + date.MonthName() + " " + std::to_string(d) + ", " +
            std::to_string(year) + "</td><td>" + FormatDouble(high, 0) +
            "\xC2\xBA</td><td>" + FormatDouble(low, 0) + "\xC2\xBA</td><td>" +
            cond + "</td></tr>\n";
  }
  html += "</table>\n</body></html>\n";
  return html;
}

std::string PageGenerators::CorruptPage(std::string page, FaultMode mode,
                                        Rng* rng) {
  switch (mode) {
    case FaultMode::kTransient:
      return page;
    case FaultMode::kTruncatePayload:
      return FaultInjector::TruncatePayload(std::move(page), rng);
    case FaultMode::kSwapDigits:
      return FaultInjector::SwapDigits(std::move(page), rng);
    case FaultMode::kBreakUnits:
      return FaultInjector::BreakUnits(std::move(page), rng);
  }
  return page;
}

std::string PageGenerators::PricePage(const std::string& airline,
                                      const std::string& origin_city,
                                      const std::string& destination_city,
                                      int year, int month, double fare_eur) {
  std::string page = airline + " special offers.\n";
  page += "Fly with " + airline + " from " + origin_city + " to " +
          destination_city + " in " + Date(year, month, 1).MonthName() +
          " of " + std::to_string(year) + ".\n";
  page += "The price of a one-way ticket from " + origin_city + " to " +
          destination_city + " is " + FormatDouble(fare_eur, 0) +
          " euros.\n";
  page += "Book now and travel from " + origin_city + " to " +
          destination_city + " at the best fare.\n";
  return page;
}

namespace {

const std::vector<std::string>& NoiseTemplates() {
  static const auto* kTemplates = new std::vector<std::string>{
      // The ambiguity distractors of the paper's Step 2 discussion: without
      // the enriched ontology, "JFK", "John Wayne", "La Guardia" and
      // "El Prat" read as people or musical groups.
      "John F. Kennedy, often called JFK, was the 35th president of the "
      "United States.\nJFK was born in 1917 and led the country until "
      "1963.\nIn 1963 John F. Kennedy was 46 years old.",
      "John Wayne was a famous actor from the United States.\nJohn Wayne "
      "worked as an actor in many western films.\nThe profession of John "
      "Wayne was actor.",
      "La Guardia is a Spanish musical group founded in Granada.\nThe "
      "musical group La Guardia performed in Madrid in 1998.\nLa Guardia "
      "recorded many pop-rock songs.",
      "El Prat is the name of a Spanish musical group.\nThe band El Prat "
      "plays traditional music from Catalonia.",
      // Generic news noise with numbers and dates that must NOT be mistaken
      // for temperatures or weather facts.
      "The stock market index rose by 340 points on Monday.\nAnalysts "
      "expected an increase of 120 points.\nThe financial crisis of 1998 "
      "was discussed in New York.",
      "A marathon with 9 runners from 46 countries took place in Rome.\n"
      "The winner finished the race in 2 hours.\nThe race was held in "
      "October of 1997.",
      "The museum of Madrid opened a new exhibition with 46 paintings.\n"
      "More than 8 thousand visitors came during the first week.",
      "The council approved a budget of 120 million euros for the new "
      "metro line.\nConstruction takes 4 years and creates 2300 jobs.",
      "The library of Paris holds 9 million books.\nIts oldest manuscript "
      "dates from the year 1201.",
      "A chess tournament with 46 players was held in Valencia.\nThe final "
      "game took 5 hours and ended in a draw.",
  };
  return *kTemplates;
}

}  // namespace

size_t PageGenerators::NoiseTemplateCount() { return NoiseTemplates().size(); }

std::string PageGenerators::NoisePage(size_t index, Rng* rng) {
  const auto& templates = NoiseTemplates();
  std::string page = templates[index % templates.size()];
  // Make repeated uses of a template distinct with a deterministic footer.
  if (rng != nullptr) {
    page += "\nArticle number " + std::to_string(rng->NextBelow(100000)) +
            " of the archive.";
  }
  return page;
}

std::vector<std::string> PageGenerators::EncyclopediaPages() {
  return {
      "All stars shine but none do it like Sirius, the brightest star in "
      "the night sky.\nSirius is the brightest star visible in the "
      "universe.\nSirius is a celestial body of hot gases.",
      "Iraq invaded Kuwait in 1990.\nThe invasion of Kuwait started the "
      "Gulf War.\nKuwait is a small country on the Persian Gulf.",
      "Madrid is the capital of Spain.\nMadrid is the largest city of the "
      "country.",
      "El Prat airport is located in the city of Barcelona.\nEl Prat "
      "serves flights to the whole of Europe.\nKennedy International "
      "Airport is located in New York.",
      "Kennedy International Airport opened in 1948.\nThe airport of New "
      "York handles 120 flights per day to Europe.",
      "DW stands for Data Warehouse.\nA data warehouse is a central "
      "repository of integrated data from several sources.",
      "The Olympic Games took place in Barcelona in 1992.\nThe Olympic "
      "Games are a famous competition.",
      "The flight from Barcelona to Paris takes 2 hours.\nA direct flight "
      "from Madrid to London takes 2 hours too.",
      "In 2004, 12 percent of all seats were sold at the last minute.\n"
      "Last minute sales grow every year.",
      "The airline operates 120 flights per day.\nIts fleet has 46 "
      "airplanes.",
      "The hottest month in Barcelona is July.\nThe coldest month in "
      "Barcelona is January.",
      "The average age of the airline fleet is 9 years.\nThe oldest "
      "airplane is 21 years old.",
  };
}

}  // namespace web
}  // namespace dwqa
