#include "web/synthetic_web.h"

#include "common/rng.h"
#include "common/string_util.h"
#include "web/page_generators.h"

namespace dwqa {
namespace web {

Result<SyntheticWeb> SyntheticWeb::Build(const WebConfig& config) {
  SyntheticWeb webb;
  webb.config_ = config;
  webb.weather_ = WeatherModel(config.seed);
  Rng rng(config.seed * 7919 + 17);
  // Dirty-input simulation draws from its own stream so enabling it does
  // not reshuffle the price/noise pages of a clean build with the same
  // seed.
  Rng corrupt_rng(config.seed * 6007 + 29);
  if (config.corrupt_rate > 0.0 && config.corruption_modes.empty()) {
    return Status::InvalidArgument(
        "corrupt_rate > 0 requires at least one corruption mode");
  }
  auto maybe_corrupt = [&](std::string html, const std::string& url) {
    if (config.corrupt_rate > 0.0 &&
        corrupt_rng.NextBool(config.corrupt_rate)) {
      FaultMode mode = config.corruption_modes[corrupt_rng.NextIndex(
          config.corruption_modes.size())];
      html = PageGenerators::CorruptPage(std::move(html), mode,
                                         &corrupt_rng);
      webb.corrupted_urls_.push_back(url);
    }
    return html;
  };

  std::vector<std::string> cities = config.cities;
  if (cities.empty()) {
    for (const CityClimate& c : WeatherModel::Cities()) {
      cities.push_back(c.name);
    }
  }

  // ---- Weather pages + temperature ground truth -------------------------
  for (const std::string& city : cities) {
    for (int month : config.months) {
      if (month < 1 || month > 12) {
        return Status::InvalidArgument("month out of range: " +
                                       std::to_string(month));
      }
      int days = Date::DaysInMonth(config.year, month);
      for (int d = 1; d <= days; ++d) {
        Date date(config.year, month, d);
        DWQA_ASSIGN_OR_RETURN(
            double published,
            PageGenerators::PublishedTemperature(webb.weather_, city, date));
        webb.truth_.temperature[{ToLower(city), date.ToIsoString()}] =
            published;
      }
      std::string slug = ReplaceAll(ToLower(city), " ", "-");
      if (config.prose_weather) {
        DWQA_ASSIGN_OR_RETURN(
            std::string html,
            PageGenerators::ProseWeatherPage(webb.weather_, city,
                                             config.year, month,
                                             config.prose_style));
        std::string url = "web://weather/" + slug + "/" +
                          std::to_string(config.year) + "-" +
                          std::to_string(month) + ".html";
        html = maybe_corrupt(std::move(html), url);
        webb.docs_.Add(std::move(url), city + " weather",
                       ir::DocFormat::kHtml, std::move(html));
      }
      if (config.table_weather) {
        DWQA_ASSIGN_OR_RETURN(
            std::string html,
            PageGenerators::TableWeatherPage(webb.weather_, city,
                                             config.year, month));
        std::string url = "web://weather-table/" + slug + "/" +
                          std::to_string(config.year) + "-" +
                          std::to_string(month) + ".html";
        html = maybe_corrupt(std::move(html), url);
        webb.docs_.Add(std::move(url), city + " weather table",
                       ir::DocFormat::kHtml, std::move(html));
      }
    }
  }

  // ---- Competitor price pages -------------------------------------------
  // Routes need two distinct cities; a single-city web has no price pages.
  static const char* kAirlines[] = {"AcmeAir", "FlyNow", "SkyBudget"};
  size_t price_pages = cities.size() >= 2 ? config.price_pages : 0;
  for (size_t i = 0; i < price_pages; ++i) {
    const std::string& origin = cities[rng.NextIndex(cities.size())];
    std::string dest = origin;
    while (dest == origin) dest = cities[rng.NextIndex(cities.size())];
    double fare = 40.0 + double(rng.NextBelow(200));
    const char* airline = kAirlines[i % 3];
    auto key = std::make_pair(ToLower(origin), ToLower(dest));
    // First offer wins in the ground truth (later pages are competitors'
    // noise for the same route only if the route repeats; keep unique).
    if (webb.truth_.fare_eur.count(key)) {
      fare = webb.truth_.fare_eur[key];
    } else {
      webb.truth_.fare_eur[key] = fare;
    }
    webb.docs_.Add(
        "web://prices/" + std::string(airline) + "/" + std::to_string(i) +
            ".txt",
        std::string(airline) + " offers", ir::DocFormat::kPlainText,
        PageGenerators::PricePage(airline, origin, dest, config.year,
                                  config.months.empty() ? 1
                                                        : config.months[0],
                                  fare));
  }

  // ---- Noise -----------------------------------------------------------
  for (size_t i = 0; i < config.noise_pages; ++i) {
    webb.docs_.Add("web://news/" + std::to_string(i) + ".txt",
                   "news article", ir::DocFormat::kPlainText,
                   PageGenerators::NoisePage(i, &rng));
  }

  // ---- Encyclopedia ------------------------------------------------------
  if (config.encyclopedia) {
    std::vector<std::string> pages = PageGenerators::EncyclopediaPages();
    for (size_t i = 0; i < pages.size(); ++i) {
      webb.docs_.Add("web://encyclopedia/" + std::to_string(i) + ".txt",
                     "encyclopedia entry", ir::DocFormat::kPlainText,
                     std::move(pages[i]));
    }
  }
  return webb;
}

std::vector<ir::DocId> SyntheticWeb::DocsWithUrlPrefix(
    const std::string& prefix) const {
  std::vector<ir::DocId> out;
  for (const ir::Document& doc : docs_.documents()) {
    if (StartsWith(doc.url, prefix)) out.push_back(doc.id);
  }
  return out;
}

}  // namespace web
}  // namespace dwqa
