#ifndef DWQA_WEB_SYNTHETIC_WEB_H_
#define DWQA_WEB_SYNTHETIC_WEB_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "ir/document.h"
#include "web/page_generators.h"
#include "web/weather_model.h"

namespace dwqa {
namespace web {

/// \brief What pages to generate.
struct WebConfig {
  uint64_t seed = 42;
  /// Cities with weather pages. Empty = all cities of the WeatherModel.
  std::vector<std::string> cities;
  int year = 2004;
  /// Months with weather coverage.
  std::vector<int> months = {1};
  /// Generate Figure 4 prose weather pages.
  bool prose_weather = true;
  /// Unit rendering of the prose pages (see web::ProseStyle).
  ProseStyle prose_style = ProseStyle::kCelsiusWithFahrenheit;
  /// Generate Figure 5 table weather pages. When both layouts are on, the
  /// table pages cover the same facts (same ground truth).
  bool table_weather = true;
  /// Competitor price pages per (origin, destination) pair sampled.
  size_t price_pages = 6;
  /// Distractor pages.
  size_t noise_pages = 12;
  /// Include the encyclopedia pages behind the CLEF-style questions.
  bool encyclopedia = true;
  /// Probability that a weather page is emitted corrupted (dirty-input
  /// simulation): a corrupted page gets one of `corruption_modes` applied,
  /// its URL is recorded in SyntheticWeb::corrupted_urls(), and the ground
  /// truth keeps the *clean* values — extraction from the dirty page is
  /// supposed to fail validation, not match the truth.
  double corrupt_rate = 0.0;
  std::vector<FaultMode> corruption_modes = {FaultMode::kTruncatePayload,
                                             FaultMode::kSwapDigits,
                                             FaultMode::kBreakUnits};
};

/// \brief Exact ground truth of the generated corpus, keyed for evaluation.
struct GroundTruth {
  /// (lowercase city, ISO date) → published temperature (ºC, integral).
  std::map<std::pair<std::string, std::string>, double> temperature;
  /// (lowercase origin, lowercase destination) → fare in EUR.
  std::map<std::pair<std::string, std::string>, double> fare_eur;
};

/// \brief The simulated Web: a DocumentStore plus the ground truth of every
/// fact published in it. Substitutes the live Web of the paper's evaluation
/// so extraction precision/recall can be measured exactly.
class SyntheticWeb {
 public:
  static Result<SyntheticWeb> Build(const WebConfig& config);

  const ir::DocumentStore& documents() const { return docs_; }
  const GroundTruth& truth() const { return truth_; }
  const WeatherModel& weather() const { return weather_; }
  const WebConfig& config() const { return config_; }

  /// Documents whose URL starts with the given prefix ("web://weather/").
  std::vector<ir::DocId> DocsWithUrlPrefix(const std::string& prefix) const;

  /// URLs of pages emitted corrupted (WebConfig::corrupt_rate).
  const std::vector<std::string>& corrupted_urls() const {
    return corrupted_urls_;
  }

 private:
  SyntheticWeb() : weather_(0) {}

  WebConfig config_;
  WeatherModel weather_;
  ir::DocumentStore docs_;
  GroundTruth truth_;
  std::vector<std::string> corrupted_urls_;
};

}  // namespace web
}  // namespace dwqa

#endif  // DWQA_WEB_SYNTHETIC_WEB_H_
