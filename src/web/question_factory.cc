#include "web/question_factory.h"

#include <cmath>
#include <set>

#include "common/string_util.h"

namespace dwqa {
namespace web {

using qa::AnswerType;

std::vector<GoldQuestion> QuestionFactory::ClefStyleQuestions() {
  auto q = [](std::string question, AnswerType type,
              std::vector<std::string> gold,
              double value = GoldQuestion::kNoGoldValue) {
    GoldQuestion g;
    g.question = std::move(question);
    g.expected_type = type;
    g.gold = std::move(gold);
    g.gold_value = value;
    return g;
  };
  return {
      // person
      q("Who was the 35th president of the United States?",
        AnswerType::kPerson, {"Kennedy", "JFK"}),
      // profession
      q("What was the profession of John Wayne?", AnswerType::kProfession,
        {"actor"}),
      // group
      q("Which group performed in Madrid in 1998?", AnswerType::kGroup,
        {"La Guardia"}),
      // object
      q("What is the brightest star visible in the universe?",
        AnswerType::kObject, {"Sirius"}),
      // place city
      q("In which city is El Prat located?", AnswerType::kPlaceCity,
        {"Barcelona"}),
      // place country
      q("Which country did Iraq invade in 1990?", AnswerType::kPlaceCountry,
        {"Kuwait"}),
      // place capital
      q("What is the capital of Spain?", AnswerType::kPlaceCapital,
        {"Madrid"}),
      // place
      q("Where is Kennedy International Airport located?", AnswerType::kPlace,
        {"New York"}),
      // abbreviation
      q("What does DW stand for?", AnswerType::kAbbreviation,
        {"Data Warehouse"}),
      // event
      q("Which event took place in Barcelona in 1992?", AnswerType::kEvent,
        {"Olympic Games"}),
      // numerical economic
      q("What is the price of a one-way ticket from Barcelona to Paris?",
        AnswerType::kNumericalEconomic, {"euro"}),
      // numerical age
      q("How old was John F. Kennedy in 1963?", AnswerType::kNumericalAge,
        {"46"}, 46.0),
      // numerical measure — answered from the weather corpus
      q("What is the temperature in Barcelona in January of 2004?",
        AnswerType::kNumericalMeasure, {}),
      // numerical period
      q("How long does the flight from Barcelona to Paris take?",
        AnswerType::kNumericalPeriod, {"2 hours"}, 2.0),
      // numerical percentage
      q("What percentage of all seats were sold at the last minute in "
        "2004?",
        AnswerType::kNumericalPercentage, {"12"}, 12.0),
      // numerical quantity
      q("How many flights does the airline operate per day?",
        AnswerType::kNumericalQuantity, {"120"}, 120.0),
      // temporal year
      q("What year did Kennedy International Airport open?",
        AnswerType::kTemporalYear, {"1948"}, 1948.0),
      // temporal month
      q("Which month is the hottest month in Barcelona?",
        AnswerType::kTemporalMonth, {"July"}),
      // temporal date
      q("When did Iraq invade Kuwait?", AnswerType::kTemporalDate,
        {"1990"}),
      // definition
      q("What is a data warehouse?", AnswerType::kDefinition,
        {"central repository"}),
  };
}

std::vector<GoldQuestion> QuestionFactory::WeatherQuestions(
    const SyntheticWeb& web) {
  std::vector<GoldQuestion> out;
  std::set<std::pair<std::string, int>> seen;  // (city, month)
  for (const auto& [key, temp] : web.truth().temperature) {
    const std::string& city_lower = key.first;
    int month = std::atoi(key.second.substr(5, 2).c_str());
    int year = std::atoi(key.second.substr(0, 4).c_str());
    if (!seen.insert({city_lower, month}).second) continue;
    // Display-case the city from the weather model.
    auto climate = WeatherModel::FindCity(city_lower);
    std::string city = climate.ok() ? (*climate)->name : city_lower;
    GoldQuestion g;
    g.question = "What is the temperature in " + city + " in " +
                 Date(year, month, 1).MonthName() + " of " +
                 std::to_string(year) + "?";
    g.expected_type = AnswerType::kNumericalMeasure;
    // Any published temperature of that month is an acceptable answer.
    for (const auto& [k2, t2] : web.truth().temperature) {
      if (k2.first == city_lower &&
          k2.second.substr(0, 7) == key.second.substr(0, 7)) {
        g.gold.push_back(FormatDouble(t2, 0));
      }
    }
    out.push_back(std::move(g));
  }
  return out;
}

std::vector<GoldQuestion> QuestionFactory::AirportWeatherQuestions(
    const SyntheticWeb& web,
    const std::vector<std::pair<std::string, std::string>>&
        airport_of_city) {
  std::vector<GoldQuestion> city_questions = WeatherQuestions(web);
  std::vector<GoldQuestion> out;
  for (GoldQuestion& g : city_questions) {
    for (const auto& [city_lower, airport] : airport_of_city) {
      std::string needle = " in " + (*WeatherModel::FindCity(city_lower))
                                        ->name + " in ";
      size_t pos = g.question.find(needle);
      if (pos == std::string::npos) continue;
      GoldQuestion copy = g;
      copy.question = g.question.substr(0, pos) + " in " + airport + " in " +
                      g.question.substr(pos + needle.size());
      out.push_back(std::move(copy));
      break;
    }
  }
  return out;
}

std::vector<GoldQuestion> QuestionFactory::PriceQuestions(
    const SyntheticWeb& web) {
  std::vector<GoldQuestion> out;
  for (const auto& [route, fare] : web.truth().fare_eur) {
    auto display = [](const std::string& lower) {
      auto c = WeatherModel::FindCity(lower);
      return c.ok() ? (*c)->name : lower;
    };
    GoldQuestion g;
    g.question = "What is the price of a one-way ticket from " +
                 display(route.first) + " to " + display(route.second) + "?";
    g.expected_type = AnswerType::kNumericalEconomic;
    g.gold.push_back(FormatDouble(fare, 0));
    g.gold_value = fare;
    out.push_back(std::move(g));
  }
  return out;
}

bool QuestionFactory::Matches(const GoldQuestion& q,
                              const std::string& answer_text, bool has_value,
                              double value) {
  if (q.gold_value != GoldQuestion::kNoGoldValue && has_value) {
    if (std::abs(value - q.gold_value) <= 0.5) return true;
  }
  std::string lower = ToLower(answer_text);
  for (const std::string& g : q.gold) {
    if (lower.find(ToLower(g)) != std::string::npos) return true;
  }
  return false;
}

}  // namespace web
}  // namespace dwqa
