#ifndef DWQA_WEB_WEATHER_MODEL_H_
#define DWQA_WEB_WEATHER_MODEL_H_

#include <string>
#include <vector>

#include "common/date.h"
#include "common/result.h"

namespace dwqa {
namespace web {

/// \brief Climate parameters of one city in the synthetic world.
struct CityClimate {
  std::string name;
  /// Mean daily temperature in January / July (ºC).
  double january_mean_c;
  double july_mean_c;
  /// Day-to-day noise (standard deviation, ºC).
  double daily_noise_c;
};

/// \brief Deterministic synthetic weather: the stand-in for the live Web's
/// historical weather data (DESIGN.md substitution table).
///
/// Temperature for (city, date) is a seasonal sinusoid between the January
/// and July means plus seeded pseudo-random noise — the same (seed, city,
/// date) always yields the same value, so extraction precision can be
/// measured against an exact ground truth.
class WeatherModel {
 public:
  explicit WeatherModel(uint64_t seed = 42) : seed_(seed) {}

  /// The built-in city list (Barcelona, Madrid, New York, ...).
  static const std::vector<CityClimate>& Cities();

  static Result<const CityClimate*> FindCity(const std::string& name);

  /// Daily mean temperature in ºC (deterministic).
  Result<double> TemperatureCelsius(const std::string& city,
                                    const Date& date) const;

  /// Same value converted to Fahrenheit.
  Result<double> TemperatureFahrenheit(const std::string& city,
                                       const Date& date) const;

  /// Sky condition string ("Clear skies", "Cloudy", "Rain", "Snow"),
  /// deterministic and loosely consistent with the temperature.
  Result<std::string> Condition(const std::string& city,
                                const Date& date) const;

  uint64_t seed() const { return seed_; }

  static double CelsiusToFahrenheit(double c) { return c * 9.0 / 5.0 + 32.0; }

 private:
  uint64_t seed_;
};

}  // namespace web
}  // namespace dwqa

#endif  // DWQA_WEB_WEATHER_MODEL_H_
