#ifndef DWQA_WEB_PAGE_GENERATORS_H_
#define DWQA_WEB_PAGE_GENERATORS_H_

#include <string>
#include <vector>

#include "common/fault.h"
#include "common/result.h"
#include "common/rng.h"
#include "web/weather_model.h"

namespace dwqa {
namespace web {

/// How a prose weather page renders its temperatures.
enum class ProseStyle {
  /// The paper's Figure 4: "Temperature 8º C around 46.4 F".
  kCelsiusWithFahrenheit,
  /// US-style page: "Temperature 46.4 F around 8º C".
  kFahrenheitWithCelsius,
  /// Fahrenheit only: "Temperature 46.4 F" — extraction must rely on the
  /// Step-4 conversion axiom to feed the Celsius measure.
  kFahrenheitOnly,
};

/// \brief Generators for the synthetic unstructured sources.
///
/// Two weather-page layouts reproduce the paper's evaluation artifacts:
///   - the prose layout of Figure 4 ("Monday, January 31, 2004 /
///     Barcelona Weather: Temperature 8º C around 46.4 F Clear skies
///     today"), on which the paper reports the best extraction precision;
///   - the HTML-table layout of Figure 5, on which "the task of associating
///     the measure with its corresponding measure unit gets more
///     difficult" and precision drops.
class PageGenerators {
 public:
  /// One month of daily weather for `city`, Figure 4 prose layout.
  /// The published temperature is rounded to the nearest integer ºC (the
  /// Fahrenheit companion value is derived from the rounded ºC, as on the
  /// paper's example page: "8º C around 46.4 F"). `style` switches the
  /// unit rendering (see ProseStyle); the ground truth stays the Celsius
  /// value in every style.
  static Result<std::string> ProseWeatherPage(
      const WeatherModel& model, const std::string& city, int year,
      int month, ProseStyle style = ProseStyle::kCelsiusWithFahrenheit);

  /// One month of daily weather for `city` as an HTML <table> (Figure 5):
  /// Date | High (ºC) | Low (ºC) | Conditions — units live in the header
  /// only, so naive tag stripping loses the measure-unit association.
  static Result<std::string> TableWeatherPage(const WeatherModel& model,
                                              const std::string& city,
                                              int year, int month);

  /// Competitor price page: prose sentences with route fares.
  static std::string PricePage(const std::string& airline,
                               const std::string& origin_city,
                               const std::string& destination_city,
                               int year, int month, double fare_eur);

  /// Distractor page `index` (biographies, band pages, random news) — the
  /// ambiguity sources of the paper's Step 2 discussion plus generic noise.
  static std::string NoisePage(size_t index, Rng* rng);

  /// Number of distinct hand-written distractor templates.
  static size_t NoiseTemplateCount();

  /// The encyclopedia pages backing the CLEF-style question set (one string
  /// per page).
  static std::vector<std::string> EncyclopediaPages();

  /// The published (rounded) temperature for (city, date): the ground-truth
  /// value a perfect extractor should recover from either page layout.
  static Result<double> PublishedTemperature(const WeatherModel& model,
                                             const std::string& city,
                                             const Date& date);

  /// Applies a corruption `mode` (common/fault.h) to a generated page so
  /// the synthetic web can emit realistic dirty input: truncated HTML,
  /// swapped digits (implausible magnitudes) or broken unit markers (the
  /// Figure-5 failure mode, induced). kTransient leaves the page intact.
  static std::string CorruptPage(std::string page, FaultMode mode, Rng* rng);
};

}  // namespace web
}  // namespace dwqa

#endif  // DWQA_WEB_PAGE_GENERATORS_H_
