#ifndef DWQA_WEB_QUESTION_FACTORY_H_
#define DWQA_WEB_QUESTION_FACTORY_H_

#include <string>
#include <vector>

#include "qa/taxonomy.h"
#include "web/synthetic_web.h"

namespace dwqa {
namespace web {

/// \brief A question with its gold answers, for accuracy measurement.
struct GoldQuestion {
  std::string question;
  qa::AnswerType expected_type = qa::AnswerType::kObject;
  /// An answer counts as correct when any gold string occurs
  /// (case-insensitively) in the answer text, or — for numeric golds — the
  /// structured value matches within 0.5.
  std::vector<std::string> gold;
  /// Numeric gold (used when non-negative... NaN when unused).
  double gold_value = kNoGoldValue;

  static constexpr double kNoGoldValue = -1e300;
};

/// \brief Generates evaluation question sets: the CLEF-style set covering
/// all twenty taxonomy categories (against the encyclopedia pages) and
/// weather/price question sets against the synthetic web's ground truth.
class QuestionFactory {
 public:
  /// Questions answerable from PageGenerators::EncyclopediaPages() (plus
  /// the noise distractor pages), ≥1 per taxonomy category.
  static std::vector<GoldQuestion> ClefStyleQuestions();

  /// "What is the temperature in <city> in <Month> of <year>?" for every
  /// (city, month) of the web's config; gold = the month's published
  /// temperatures (any day's value counts — the paper's query is
  /// month-scoped).
  static std::vector<GoldQuestion> WeatherQuestions(const SyntheticWeb& web);

  /// Weather questions phrased through the *airport* name instead of the
  /// city ("... in El Prat?") — resolvable only with the enriched ontology
  /// (E8). `airport_of_city` maps lowercase city → airport display name.
  static std::vector<GoldQuestion> AirportWeatherQuestions(
      const SyntheticWeb& web,
      const std::vector<std::pair<std::string, std::string>>&
          airport_of_city);

  /// Price questions against the fare ground truth.
  static std::vector<GoldQuestion> PriceQuestions(const SyntheticWeb& web);

  /// True if `answer_text` (and optional numeric value) matches the gold.
  static bool Matches(const GoldQuestion& q, const std::string& answer_text,
                      bool has_value, double value);
};

}  // namespace web
}  // namespace dwqa

#endif  // DWQA_WEB_QUESTION_FACTORY_H_
