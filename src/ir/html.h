#ifndef DWQA_IR_HTML_H_
#define DWQA_IR_HTML_H_

#include <string>
#include <string_view>
#include <vector>

namespace dwqa {
namespace ir {

/// \brief One extracted HTML table as a grid of cell texts.
struct HtmlTable {
  /// First row is the header row if the table used <th> cells.
  std::vector<std::vector<std::string>> rows;
  bool has_header = false;
};

/// \brief HTML/XML utilities: tag stripping, entity decoding and table-cell
/// extraction.
///
/// The QA pipeline runs on plain text, so the stripper is applied at
/// indexation time. Table extraction backs the paper's *future work* item —
/// "the pre-processing of web pages in order to handle tables correctly"
/// (§5) — which integration/table_preprocess turns into prose sentences.
class Html {
 public:
  /// Removes tags, decodes the common entities, normalizes whitespace.
  /// Block-level closing tags (</p>, </tr>, </li>, <br>...) become newlines
  /// so the sentence splitter sees the layout line structure.
  static std::string StripTags(std::string_view html);

  /// Extracts every <table> as a cell grid.
  static std::vector<HtmlTable> ExtractTables(std::string_view html);

  /// Decodes &amp; &lt; &gt; &quot; &nbsp; &#NNN;.
  static std::string DecodeEntities(std::string_view text);
};

}  // namespace ir
}  // namespace dwqa

#endif  // DWQA_IR_HTML_H_
