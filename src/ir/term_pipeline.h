#ifndef DWQA_IR_TERM_PIPELINE_H_
#define DWQA_IR_TERM_PIPELINE_H_

#include <string>
#include <vector>

#include "common/interner.h"
#include "text/token.h"

namespace dwqa {
namespace ir {

/// \brief The one term pipeline of the IR layer.
///
/// Both indexes used to carry their own copy of the lowercase/stopword
/// logic; it now lives here so the raw-string AddDocument paths and the
/// AnalyzedCorpus-fed AddAnalyzed paths filter tokens with the exact same
/// predicates — which is what makes the two build paths posting-identical.

/// Passage-index gate: alphanumeric-initial, non-stopword.
bool IsPassageTerm(const text::Token& t);

/// Document-index gate: IsPassageTerm plus dropping single-character
/// non-digit tokens. (The asymmetry is historical and load-bearing: golden
/// answers depend on each index keeping its published vocabulary.)
bool IsDocumentTerm(const text::Token& t);

/// Tokenizes `text` and keeps the lowercase form of tokens passing the
/// respective gate, in order, duplicates included.
std::vector<std::string> DocumentTerms(const std::string& text);
std::vector<std::string> PassageTerms(const std::string& text);

/// Query-side term resolution, shared by both indexes (each used to carry
/// its own copy of the lowercase/dedup/lookup steps): tokenizes and gates
/// `query` exactly like the corresponding Add path, deduplicates, and
/// resolves the surviving terms against `dict` with a read-only Find —
/// searching never grows the dictionary.
///
/// The returned ids are in sorted-unique *term-string* order with unknown
/// terms dropped. That order is load-bearing: per-document scores
/// accumulate term by term in this order, so it pins the floating-point
/// summation order the golden-equivalence suite depends on.
std::vector<TermId> ResolveDocumentQuery(const std::string& query,
                                         const TermDictionary& dict);
std::vector<TermId> ResolvePassageQuery(const std::string& query,
                                        const TermDictionary& dict);

}  // namespace ir
}  // namespace dwqa

#endif  // DWQA_IR_TERM_PIPELINE_H_
