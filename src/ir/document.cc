#include "ir/document.h"

namespace dwqa {
namespace ir {

DocId DocumentStore::Add(std::string url, std::string title, DocFormat format,
                         std::string raw) {
  Document doc;
  doc.id = static_cast<DocId>(docs_.size());
  doc.url = std::move(url);
  doc.title = std::move(title);
  doc.format = format;
  doc.raw = std::move(raw);
  docs_.push_back(std::move(doc));
  return docs_.back().id;
}

}  // namespace ir
}  // namespace dwqa
