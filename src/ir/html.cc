#include "ir/html.h"

#include <cctype>
#include <cstdlib>

#include "common/string_util.h"

namespace dwqa {
namespace ir {

namespace {

/// Extracts the tag name at `pos` (after '<'), lowercased, '/' skipped.
std::string TagNameAt(std::string_view html, size_t pos, bool* closing) {
  *closing = false;
  if (pos < html.size() && html[pos] == '/') {
    *closing = true;
    ++pos;
  }
  std::string name;
  while (pos < html.size() &&
         std::isalnum(static_cast<unsigned char>(html[pos]))) {
    name += static_cast<char>(
        std::tolower(static_cast<unsigned char>(html[pos])));
    ++pos;
  }
  return name;
}

bool IsBlockTag(const std::string& name) {
  for (const char* t : {"p", "div", "tr", "li", "br", "h1", "h2", "h3",
                        "table", "ul", "ol", "title"}) {
    if (name == t) return true;
  }
  return false;
}

}  // namespace

std::string Html::DecodeEntities(std::string_view text) {
  std::string out;
  size_t i = 0;
  while (i < text.size()) {
    if (text[i] != '&') {
      out += text[i++];
      continue;
    }
    size_t semi = text.find(';', i);
    if (semi == std::string_view::npos || semi - i > 8) {
      out += text[i++];
      continue;
    }
    std::string_view ent = text.substr(i + 1, semi - i - 1);
    if (ent == "amp") {
      out += '&';
    } else if (ent == "lt") {
      out += '<';
    } else if (ent == "gt") {
      out += '>';
    } else if (ent == "quot") {
      out += '"';
    } else if (ent == "apos") {
      out += '\'';
    } else if (ent == "nbsp") {
      out += ' ';
    } else if (ent == "deg") {
      out += "\xC2\xBA";
    } else if (!ent.empty() && ent[0] == '#') {
      int code = std::atoi(std::string(ent.substr(1)).c_str());
      if (code == 0xBA || code == 0xB0) {
        out += "\xC2\xBA";
      } else if (code > 0 && code < 128) {
        out += static_cast<char>(code);
      }  // Other codepoints dropped: corpora are ASCII + degree sign.
    } else {
      out += text.substr(i, semi - i + 1);
    }
    i = semi + 1;
  }
  return out;
}

std::string Html::StripTags(std::string_view html) {
  std::string out;
  size_t i = 0;
  bool in_script = false;
  while (i < html.size()) {
    if (html[i] == '<') {
      bool closing = false;
      std::string name = TagNameAt(html, i + 1, &closing);
      if (name == "script" || name == "style") in_script = !closing;
      if (IsBlockTag(name)) out += '\n';
      // Cell boundaries become separators so adjacent cells do not glue.
      if (name == "td" || name == "th") out += ' ';
      size_t end = html.find('>', i);
      if (end == std::string_view::npos) break;
      i = end + 1;
      continue;
    }
    if (!in_script) out += html[i];
    ++i;
  }
  // Decode entities, then squeeze horizontal whitespace per line.
  std::string decoded = DecodeEntities(out);
  std::string result;
  bool pending_space = false;
  for (char c : decoded) {
    if (c == '\n') {
      result += '\n';
      pending_space = false;
    } else if (std::isspace(static_cast<unsigned char>(c))) {
      pending_space = true;
    } else {
      if (pending_space && !result.empty() && result.back() != '\n') {
        result += ' ';
      }
      result += c;
      pending_space = false;
    }
  }
  return result;
}

std::vector<HtmlTable> Html::ExtractTables(std::string_view html) {
  std::vector<HtmlTable> tables;
  size_t pos = 0;
  std::string lower = ToLower(html);
  while (true) {
    size_t tstart = lower.find("<table", pos);
    if (tstart == std::string::npos) break;
    size_t tend = lower.find("</table>", tstart);
    if (tend == std::string::npos) break;
    std::string_view body = html.substr(tstart, tend - tstart);
    std::string body_lower = lower.substr(tstart, tend - tstart);
    HtmlTable table;
    size_t rpos = 0;
    while (true) {
      size_t rstart = body_lower.find("<tr", rpos);
      if (rstart == std::string::npos) break;
      size_t rend = body_lower.find("</tr>", rstart);
      if (rend == std::string::npos) rend = body_lower.size();
      std::string_view row_html = body.substr(rstart, rend - rstart);
      std::string row_lower = body_lower.substr(rstart, rend - rstart);
      std::vector<std::string> cells;
      size_t cpos = 0;
      while (true) {
        size_t th = row_lower.find("<th", cpos);
        size_t td = row_lower.find("<td", cpos);
        size_t cstart = std::min(th, td);
        if (cstart == std::string::npos) break;
        if (cstart == th && table.rows.empty()) table.has_header = true;
        size_t copen = row_lower.find('>', cstart);
        if (copen == std::string::npos) break;
        size_t cend = row_lower.find(cstart == th ? "</th>" : "</td>",
                                     copen);
        if (cend == std::string::npos) cend = row_lower.size();
        cells.push_back(Trim(
            StripTags(row_html.substr(copen + 1, cend - copen - 1))));
        cpos = cend;
      }
      if (!cells.empty()) table.rows.push_back(std::move(cells));
      rpos = rend;
    }
    if (!table.rows.empty()) tables.push_back(std::move(table));
    pos = tend + 8;
  }
  return tables;
}

}  // namespace ir
}  // namespace dwqa
