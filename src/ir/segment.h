#ifndef DWQA_IR_SEGMENT_H_
#define DWQA_IR_SEGMENT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/interner.h"
#include "ir/document.h"

namespace dwqa {
namespace ir {

/// \file segment.h
/// \brief Immutable sealed index segments — the storage unit of the
/// LSM-style segmented indexes (ir/segmented_index.h).
///
/// A segment is built once from a batch of documents, sealed into
/// delta+varint-compressed postings with per-block max-score metadata, and
/// never mutated again; readers share it through `shared_ptr<const ...>`,
/// so a background merge can swap the manifest under live queries without
/// invalidating anything a reader already holds.
///
/// Documents inside a segment are addressed by a dense local *ordinal*
/// (0-based insertion order) rather than their global DocId: ordinals are
/// strictly increasing along every postings list, which is what makes the
/// delta coding tight, and a per-segment ordinal→DocId table restores the
/// global id at scoring time.

/// Appends `value` to `out` in LEB128 (7 bits per byte, high bit = more).
void AppendVarint(std::string* out, uint64_t value);

/// Reads a varint at `*pos`, advancing it past the value. Segments are
/// built and decoded in-process, never parsed from untrusted input, so a
/// malformed byte stream is a programming error rather than a recoverable
/// condition.
uint64_t ReadVarint(const std::string& bytes, size_t* pos);

/// \brief Skip metadata of one block of a postings list: enough to bound
/// every score in the block (`max_weight`) and to step over it without
/// decoding a byte (`offset`/`count`/`last_ordinal`).
struct PostingBlock {
  /// Byte offset of the block's first posting in PostingList::bytes.
  uint32_t offset = 0;
  /// Postings encoded in the block.
  uint32_t count = 0;
  /// Local ordinal of the block's last posting (upper bound for skips).
  uint32_t last_ordinal = 0;
  /// Max per-posting score weight in the block (block-max pruning bound);
  /// 0 for lists whose postings carry no weight (passage sentence refs).
  double max_weight = 0.0;
};

/// \brief One compressed postings list: (ordinal, payload) pairs —
/// payload is the term frequency for document postings and the sentence
/// number for passage postings — delta+varint coded in fixed-size blocks.
///
/// Within a block the first posting stores its ordinal absolutely and the
/// rest store the (non-negative) delta from the previous posting, so every
/// block decodes independently of its predecessors.
struct PostingList {
  std::string bytes;
  std::vector<PostingBlock> blocks;
  /// Total postings across all blocks.
  uint32_t count = 0;
  /// Max block max_weight — the list-level (segment-level) pruning bound.
  double max_weight = 0.0;
};

/// Seals `postings` — (ordinal, payload) pairs with non-decreasing
/// ordinals — into a compressed list with `block_postings` postings per
/// block (clamped to ≥ 1). `weight(i)` scores posting `i` for the
/// block-max metadata; pass a constant-zero weight for lists that are
/// never score-pruned.
PostingList EncodePostings(
    const std::vector<std::pair<uint32_t, uint32_t>>& postings,
    size_t block_postings, const std::function<double(size_t)>& weight);

/// \brief Forward decoder over one PostingList with block-granular skips.
class PostingCursor {
 public:
  /// Positions on the first posting (done() when the list is empty).
  explicit PostingCursor(const PostingList* list);

  bool done() const { return block_ >= list_->blocks.size(); }
  uint32_t ordinal() const { return ordinal_; }
  uint32_t payload() const { return payload_; }
  /// Pruning bound of the current block (callable only when !done()).
  double block_max() const { return list_->blocks[block_].max_weight; }

  /// Advances one posting.
  void Next();
  /// Jumps to the first posting of the next block without decoding the
  /// rest of the current one. Returns false when the list is exhausted.
  bool SkipBlock();

 private:
  void LoadBlockStart();

  const PostingList* list_;
  size_t block_ = 0;
  uint32_t index_in_block_ = 0;
  size_t pos_ = 0;
  uint32_t ordinal_ = 0;
  uint32_t payload_ = 0;
};

/// Invokes `fn(ordinal, payload)` for every posting of `list`, in order.
template <typename Fn>
void ForEachPosting(const PostingList& list, Fn fn) {
  for (PostingCursor c(&list); !c.done(); c.Next()) {
    fn(c.ordinal(), c.payload());
  }
}

/// \brief Immutable document-level segment: per-ordinal DocId/length
/// tables plus compressed (ordinal, tf) postings per term.
///
/// The per-posting score weight baked into the block metadata is
/// `tf / sqrt(len)` — the TF part of the TF-IDF used by InvertedIndex —
/// so a query-time upper bound is just `idf * max_weight`.
class DocSegment {
 public:
  /// \brief Accumulates documents before sealing. Also serves as the
  /// segmented index's mutable memtable: the builder's uncompressed
  /// vectors are directly searchable.
  struct Builder {
    std::vector<DocId> docs;
    std::vector<uint32_t> lengths;
    /// term → (ordinal, tf), ordinals strictly increasing per term.
    std::unordered_map<TermId, std::vector<std::pair<uint32_t, uint32_t>>>
        postings;

    /// Appends one document (the next local ordinal).
    void Add(DocId doc, const std::unordered_map<TermId, uint32_t>& tf,
             size_t doc_len);
    bool empty() const { return docs.empty(); }
    size_t doc_count() const { return docs.size(); }
  };

  /// Compresses `builder` into an immutable segment. A builder with
  /// documents but no postings (all text stopword-filtered away) seals
  /// into a valid, searchable, postings-free segment.
  static std::shared_ptr<const DocSegment> Seal(Builder builder,
                                                size_t block_postings);

  /// Merges two segments into one, `left`'s documents first — ordinals of
  /// `right` shift up by `left.doc_count()`, so concatenating postings in
  /// segment-manifest order is invariant under merging. Deterministic:
  /// depends only on the two inputs.
  static std::shared_ptr<const DocSegment> Merge(const DocSegment& left,
                                                 const DocSegment& right,
                                                 size_t block_postings);

  size_t doc_count() const { return docs_.size(); }
  DocId doc(uint32_t ordinal) const { return docs_[ordinal]; }
  uint32_t length(uint32_t ordinal) const { return lengths_[ordinal]; }

  /// The term's postings list, or null when absent from this segment.
  const PostingList* Find(TermId term) const;
  const std::unordered_map<TermId, PostingList>& postings() const {
    return postings_;
  }
  /// Compressed postings payload held by this segment, in bytes.
  size_t postings_bytes() const { return postings_bytes_; }

 private:
  DocSegment() = default;

  std::vector<DocId> docs_;
  std::vector<uint32_t> lengths_;
  std::unordered_map<TermId, PostingList> postings_;
  size_t postings_bytes_ = 0;
};

/// \brief Immutable passage-level segment: an ordinal→DocId table plus
/// compressed (ordinal, sentence) refs per term.
///
/// Sentence *text* deliberately lives outside segments (in the segmented
/// index's doc→sentences table): PassageIndex::Sentences hands out
/// long-lived references, which must survive seals and merges.
class PassageSegment {
 public:
  /// \brief Accumulates documents before sealing; doubles as the
  /// segmented passage index's memtable.
  struct Builder {
    std::vector<DocId> docs;
    /// term → (ordinal, sentence) refs, ordinals non-decreasing and
    /// sentences increasing within one ordinal (one ref per sentence a
    /// term occurs in — presence, not frequency).
    std::unordered_map<TermId, std::vector<std::pair<uint32_t, uint32_t>>>
        postings;

    /// Appends one document: `sentence_terms[s]` lists the distinct terms
    /// of sentence `s` (insertion order, already deduplicated).
    void Add(DocId doc, const std::vector<std::vector<TermId>>& sentence_terms);
    bool empty() const { return docs.empty(); }
    size_t doc_count() const { return docs.size(); }
  };

  /// \brief Per-term statistics sealed alongside the refs.
  struct TermInfo {
    PostingList list;
    /// Distinct documents of this segment containing the term.
    uint32_t doc_freq = 0;
    /// Max refs (matched sentences) of the term within any one document —
    /// bounds the per-document repeat bonus for pruning.
    uint32_t max_occurrences = 0;
  };

  static std::shared_ptr<const PassageSegment> Seal(Builder builder,
                                                    size_t block_postings);

  /// See DocSegment::Merge — same ordering contract.
  static std::shared_ptr<const PassageSegment> Merge(const PassageSegment& left,
                                                     const PassageSegment& right,
                                                     size_t block_postings);

  size_t doc_count() const { return docs_.size(); }
  DocId doc(uint32_t ordinal) const { return docs_[ordinal]; }
  const TermInfo* Find(TermId term) const;
  const std::unordered_map<TermId, TermInfo>& terms() const { return terms_; }
  size_t postings_bytes() const { return postings_bytes_; }

 private:
  PassageSegment() = default;

  std::vector<DocId> docs_;
  std::unordered_map<TermId, TermInfo> terms_;
  size_t postings_bytes_ = 0;
};

}  // namespace ir
}  // namespace dwqa

#endif  // DWQA_IR_SEGMENT_H_
