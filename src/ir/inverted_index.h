#ifndef DWQA_IR_INVERTED_INDEX_H_
#define DWQA_IR_INVERTED_INDEX_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "ir/document.h"

namespace dwqa {
namespace ir {

/// \brief A scored retrieval hit.
struct DocHit {
  DocId doc = kInvalidDoc;
  double score = 0.0;
  /// Number of distinct query terms present.
  size_t matched_terms = 0;
};

/// \brief Classical document-level inverted index with TF-IDF ranking.
///
/// This is the "IR returns whole documents, in which the user has to further
/// search" baseline of the paper (§1): keyword query in, ranked full
/// documents out. Stopwords are discarded at both index and query time.
class InvertedIndex {
 public:
  /// Indexes the plain text of `doc_id` (caller strips markup first).
  void AddDocument(DocId doc_id, const std::string& plain_text);

  /// Ranks documents for a keyword query (stopwords dropped, lowercased,
  /// TF-IDF with length normalization). Top `k` hits, best first.
  std::vector<DocHit> Search(const std::string& query, size_t k = 10) const;

  size_t document_count() const { return doc_lengths_.size(); }
  size_t term_count() const { return postings_.size(); }

  /// Document frequency of `term` (lowercased).
  size_t DocFreq(const std::string& term) const;

 private:
  struct Posting {
    DocId doc;
    uint32_t tf;
  };
  std::unordered_map<std::string, std::vector<Posting>> postings_;
  std::unordered_map<DocId, size_t> doc_lengths_;
};

}  // namespace ir
}  // namespace dwqa

#endif  // DWQA_IR_INVERTED_INDEX_H_
