#ifndef DWQA_IR_INVERTED_INDEX_H_
#define DWQA_IR_INVERTED_INDEX_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/interner.h"
#include "common/metrics.h"
#include "common/result.h"
#include "ir/document.h"
#include "text/analyzed_corpus.h"

namespace dwqa {
namespace ir {

/// \brief A scored retrieval hit.
struct DocHit {
  DocId doc = kInvalidDoc;
  double score = 0.0;
  /// Number of distinct query terms present.
  size_t matched_terms = 0;
};

/// \brief Classical document-level inverted index with TF-IDF ranking.
///
/// This is the "IR returns whole documents, in which the user has to further
/// search" baseline of the paper (§1): keyword query in, ranked full
/// documents out. Stopwords are discarded at both index and query time.
///
/// Postings are keyed by TermId. The index owns a private TermDictionary by
/// default; constructing it over a shared dictionary (the AnalyzedCorpus's)
/// lets AddAnalyzed reuse token ids interned at analysis time instead of
/// re-tokenizing raw text. Query terms are resolved with a read-only Find,
/// so searching never grows the dictionary.
class InvertedIndex {
 public:
  InvertedIndex() : owned_(std::make_unique<TermDictionary>()),
                    dict_(owned_.get()) {}

  /// Shares `dict` (must outlive the index). Ids interned by other users of
  /// the same dictionary are directly comparable with this index's.
  explicit InvertedIndex(TermDictionary* dict) : dict_(dict) {}

  /// Indexes the plain text of `doc_id` (caller strips markup first).
  void AddDocument(DocId doc_id, const std::string& plain_text);

  /// Indexes a document from its cached indexation-time analysis: same
  /// postings as AddDocument on the analyzed plain text, no re-tokenization.
  /// Requires the index to share the corpus's dictionary.
  void AddAnalyzed(DocId doc_id, const text::AnalyzedDocument& analysis);

  /// Ranks documents for a keyword query (stopwords dropped, lowercased,
  /// TF-IDF with length normalization). Top `k` hits, best first.
  std::vector<DocHit> Search(const std::string& query, size_t k = 10) const;

  size_t document_count() const { return doc_lengths_.size(); }
  size_t term_count() const { return postings_.size(); }

  /// Document frequency of `term` (lowercased).
  size_t DocFreq(const std::string& term) const;

  /// Canonical dump of the whole index — every postings list (with term
  /// strings, in TermId order, occurrences in insertion order) and every
  /// document length. Two builds that produce identical dumps are
  /// observationally identical; the serial↔parallel golden-equivalence
  /// suite compares these byte for byte.
  std::string DebugString() const;

  /// Attaches a metrics registry (may be null): every Search records
  /// `dwqa_ir_doc_lookups_total` and a `dwqa_ir_doc_lookup_latency_ms`
  /// observation. Recording is lock-free, so concurrent searchers are safe.
  void set_metrics(MetricRegistry* metrics);

 private:
  struct Posting {
    DocId doc;
    uint32_t tf;
  };
  void Commit(DocId doc_id,
              const std::unordered_map<TermId, uint32_t>& tf,
              size_t doc_len);

  std::unique_ptr<TermDictionary> owned_;  ///< Null when dict_ is shared.
  TermDictionary* dict_;
  std::unordered_map<TermId, std::vector<Posting>> postings_;
  std::unordered_map<DocId, size_t> doc_lengths_;
  /// Cached instruments (null = observability off); stable registry
  /// pointers let Search record without re-resolving the series.
  Counter* lookup_counter_ = nullptr;
  Histogram* lookup_latency_ = nullptr;
};

}  // namespace ir
}  // namespace dwqa

#endif  // DWQA_IR_INVERTED_INDEX_H_
