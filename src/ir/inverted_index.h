#ifndef DWQA_IR_INVERTED_INDEX_H_
#define DWQA_IR_INVERTED_INDEX_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/interner.h"
#include "common/metrics.h"
#include "common/result.h"
#include "common/trace.h"
#include "ir/document.h"
#include "ir/segmented_index.h"
#include "text/analyzed_corpus.h"

namespace dwqa {

class ThreadPool;

namespace ir {

/// \brief A scored retrieval hit.
struct DocHit {
  DocId doc = kInvalidDoc;
  double score = 0.0;
  /// Number of distinct query terms present.
  size_t matched_terms = 0;
};

/// \brief Classical document-level inverted index with TF-IDF ranking.
///
/// This is the "IR returns whole documents, in which the user has to further
/// search" baseline of the paper (§1): keyword query in, ranked full
/// documents out. Stopwords are discarded at both index and query time.
///
/// Postings are keyed by TermId. The index owns a private TermDictionary by
/// default; constructing it over a shared dictionary (the AnalyzedCorpus's)
/// lets AddAnalyzed reuse token ids interned at analysis time instead of
/// re-tokenizing raw text. Query terms are resolved with a read-only Find
/// (ir/term_pipeline ResolveDocumentQuery), so searching never grows the
/// dictionary.
///
/// Storage is the LSM-style segmented core (ir/segmented_index.h): adds are
/// incremental memtable appends that seal into immutable compressed
/// segments and merge in deterministic tiers, and Search fans out across
/// segments with exact block-max top-k pruning. Results are byte-identical
/// to the former monolithic index for every segment layout; passing
/// `seal_every = 0` in the options *is* the monolithic configuration.
class InvertedIndex {
 public:
  InvertedIndex() : InvertedIndex(SegmentedIndexOptions()) {}
  explicit InvertedIndex(const SegmentedIndexOptions& options)
      : owned_(std::make_unique<TermDictionary>()),
        dict_(owned_.get()),
        core_(std::make_unique<SegmentedDocIndex>(options)) {}

  /// Shares `dict` (must outlive the index). Ids interned by other users of
  /// the same dictionary are directly comparable with this index's.
  explicit InvertedIndex(TermDictionary* dict,
                         const SegmentedIndexOptions& options = {})
      : dict_(dict), core_(std::make_unique<SegmentedDocIndex>(options)) {}

  /// Movable (IndexCorpus replaces its indexes wholesale); the segmented
  /// core is pinned behind the pointer, so cached references survive.
  InvertedIndex(InvertedIndex&&) noexcept = default;
  InvertedIndex& operator=(InvertedIndex&&) noexcept = default;

  /// Indexes the plain text of `doc_id` (caller strips markup first). An
  /// incremental append — a fresh document is searchable immediately, no
  /// rebuild.
  void AddDocument(DocId doc_id, const std::string& plain_text);

  /// Indexes a document from its cached indexation-time analysis: same
  /// postings as AddDocument on the analyzed plain text, no re-tokenization.
  /// Requires the index to share the corpus's dictionary.
  void AddAnalyzed(DocId doc_id, const text::AnalyzedDocument& analysis);

  /// Bulk build: splits `docs` into contiguous shards, builds and seals one
  /// segment per shard concurrently on `pool`, and appends them in shard
  /// order — postings byte-identical to the serial AddAnalyzed loop.
  void AddAnalyzedBatch(
      const std::vector<std::pair<DocId, const text::AnalyzedDocument*>>& docs,
      ThreadPool* pool);

  /// Ranks documents for a keyword query (stopwords dropped, lowercased,
  /// TF-IDF with length normalization). Top `k` hits, best first; ties
  /// break on ascending DocId. Safe concurrently with other searches and
  /// with background merges.
  std::vector<DocHit> Search(const std::string& query, size_t k = 10) const;

  size_t document_count() const { return core_->document_count(); }
  size_t term_count() const { return core_->term_count(); }

  /// Document frequency of `term` (lowercased).
  size_t DocFreq(const std::string& term) const;

  /// Canonical dump of the whole index — every postings list (with term
  /// strings, in TermId order, occurrences in insertion order) and every
  /// document length. Two builds that produce identical dumps are
  /// observationally identical; the golden-equivalence suites compare
  /// these byte for byte across segment layouts and build modes.
  std::string DebugString() const { return core_->DebugString(*dict_); }

  /// Seals the current memtable into a segment (test/ingest hook).
  void SealMemtable() { core_->SealMemtable(); }
  size_t sealed_segment_count() const {
    return core_->sealed_segment_count();
  }
  /// Compressed postings bytes across sealed segments.
  size_t postings_bytes() const { return core_->postings_bytes(); }
  /// Blocks until no background merge is scheduled or running.
  void WaitForMerges() const { core_->WaitForMerges(); }

  /// Attaches a metrics registry (may be null): every Search records
  /// `dwqa_ir_doc_lookups_total` and a `dwqa_ir_doc_lookup_latency_ms`
  /// observation, and the segmented core feeds the `dwqa_index_*` families
  /// under {index="doc"}. Recording is lock-free, so concurrent searchers
  /// are safe.
  void set_metrics(MetricRegistry* metrics);

  /// Trace sink for `index.seal` / inline `index.merge` spans (null off).
  void set_trace(TraceRecorder* trace) { core_->set_trace(trace); }

 private:
  std::unique_ptr<TermDictionary> owned_;  ///< Null when dict_ is shared.
  TermDictionary* dict_;
  std::unique_ptr<SegmentedDocIndex> core_;
  /// Cached instruments (null = observability off); stable registry
  /// pointers let Search record without re-resolving the series.
  Counter* lookup_counter_ = nullptr;
  Histogram* lookup_latency_ = nullptr;
};

}  // namespace ir
}  // namespace dwqa

#endif  // DWQA_IR_INVERTED_INDEX_H_
