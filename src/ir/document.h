#ifndef DWQA_IR_DOCUMENT_H_
#define DWQA_IR_DOCUMENT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace dwqa {
namespace ir {

using DocId = int32_t;
constexpr DocId kInvalidDoc = -1;

/// Source format of a document; QA handles "any kind of unstructured data
/// (e.g. XML, HTML or PDF)" (paper §3) — the stripper normalizes all of
/// them to plain text.
enum class DocFormat { kPlainText, kHtml, kXml };

/// \brief An unstructured document of the (synthetic) web or intranet.
struct Document {
  DocId id = kInvalidDoc;
  std::string url;
  std::string title;
  DocFormat format = DocFormat::kPlainText;
  /// Raw content as fetched (may contain markup).
  std::string raw;
};

/// \brief In-memory document collection shared by the IR and QA indexes.
class DocumentStore {
 public:
  /// Adds a document and assigns its id.
  DocId Add(std::string url, std::string title, DocFormat format,
            std::string raw);

  const Document& Get(DocId id) const { return docs_[size_t(id)]; }
  size_t size() const { return docs_.size(); }
  bool IsValid(DocId id) const {
    return id >= 0 && static_cast<size_t>(id) < docs_.size();
  }

  const std::vector<Document>& documents() const { return docs_; }

 private:
  std::vector<Document> docs_;
};

}  // namespace ir
}  // namespace dwqa

#endif  // DWQA_IR_DOCUMENT_H_
