#ifndef DWQA_IR_PASSAGE_INDEX_H_
#define DWQA_IR_PASSAGE_INDEX_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/interner.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "ir/document.h"
#include "ir/segmented_index.h"
#include "text/analyzed_corpus.h"

namespace dwqa {

class ThreadPool;

namespace ir {

/// \brief A passage: `size` consecutive sentences of one document (the
/// IR-n retrieval unit — the paper's footnote 6 describes a most-relevant
/// passage of eight consecutive sentences).
struct Passage {
  DocId doc = kInvalidDoc;
  /// Sentence range [first, last] within the document.
  size_t first_sentence = 0;
  size_t last_sentence = 0;
  double score = 0.0;
  /// The passage text (sentences joined by newlines).
  std::string text;
};

/// \brief IR-n-style passage retrieval: documents are split into sentences
/// at index time, and retrieval scores overlapping sentence windows by
/// idf-weighted query-term coverage.
///
/// This is the filtering stage of AliQAn's search phase (paper Figure 3,
/// Module 2): it cuts the amount of text the expensive QA analysis must
/// process — "IR tools are usually run as a first filtering phase, and QA
/// works on IR output. In this way, time of analysis spent by users is
/// highly decreased" (§1).
///
/// Postings are keyed by TermId (see ir/term_pipeline.h for the shared
/// filtering gate and ResolvePassageQuery for the query side). Like
/// InvertedIndex, the index owns a dictionary unless constructed over a
/// shared one, in which case AddAnalyzed reuses the corpus's cached token
/// ids.
///
/// Storage is the LSM-style segmented core (ir/segmented_index.h): adds
/// are incremental appends, and retrieval prunes candidate documents whose
/// score bound cannot reach the current top-k instead of scoring every
/// window — byte-identical results for every segment layout.
class PassageIndex {
 public:
  /// `window` = number of consecutive sentences per passage (clamped to a
  /// minimum of one sentence).
  explicit PassageIndex(size_t window = 8,
                        const SegmentedIndexOptions& options = {})
      : owned_(std::make_unique<TermDictionary>()),
        dict_(owned_.get()),
        core_(std::make_unique<SegmentedPassageIndex>(window, options)) {}

  /// Shares `dict` (must outlive the index).
  PassageIndex(size_t window, TermDictionary* dict,
               const SegmentedIndexOptions& options = {})
      : dict_(dict),
        core_(std::make_unique<SegmentedPassageIndex>(window, options)) {}

  /// Movable (IndexCorpus replaces its indexes wholesale).
  PassageIndex(PassageIndex&&) noexcept = default;
  PassageIndex& operator=(PassageIndex&&) noexcept = default;

  /// Splits and indexes the plain text of `doc_id` — an incremental
  /// append; the document is searchable immediately.
  void AddDocument(DocId doc_id, const std::string& plain_text);

  /// Indexes a document from its cached indexation-time analysis: same
  /// postings and stored sentences as AddDocument on the analyzed plain
  /// text, no re-splitting or re-tokenization. Requires the index to share
  /// the corpus's dictionary.
  void AddAnalyzed(DocId doc_id, const text::AnalyzedDocument& analysis);

  /// Bulk build: one sealed segment per contiguous shard of `docs`, shards
  /// built and sealed concurrently on `pool`, appended in shard order —
  /// postings byte-identical to the serial AddAnalyzed loop.
  void AddAnalyzedBatch(
      const std::vector<std::pair<DocId, const text::AnalyzedDocument*>>& docs,
      ThreadPool* pool);

  /// Top-k passages for the query terms, best first. Adjacent overlapping
  /// windows of the same document are deduplicated (the best one is kept).
  /// Safe concurrently with other searches and with background merges.
  std::vector<Passage> Search(const std::string& query, size_t k = 5) const;

  /// The stored sentences of a document. The reference stays valid across
  /// seals and merges (sentence text lives outside the segments).
  const std::vector<std::string>& Sentences(DocId doc_id) const {
    return core_->Sentences(doc_id);
  }

  size_t window() const { return core_->window(); }
  size_t document_count() const { return core_->document_count(); }

  /// Canonical dump — every postings list (with term strings, in TermId
  /// order, refs in insertion order) and per-document sentence counts. Used
  /// by the golden-equivalence suites; see InvertedIndex::DebugString.
  std::string DebugString() const { return core_->DebugString(*dict_); }

  /// Seals the current memtable into a segment (test/ingest hook).
  void SealMemtable() { core_->SealMemtable(); }
  size_t sealed_segment_count() const {
    return core_->sealed_segment_count();
  }
  /// Compressed postings bytes across sealed segments.
  size_t postings_bytes() const { return core_->postings_bytes(); }
  /// Blocks until no background merge is scheduled or running.
  void WaitForMerges() const { core_->WaitForMerges(); }

  /// Attaches a metrics registry (may be null): every Search records
  /// `dwqa_ir_passage_lookups_total` and a
  /// `dwqa_ir_passage_lookup_latency_ms` observation, and the segmented
  /// core feeds the `dwqa_index_*` families under {index="passage"}.
  /// Recording is lock-free, so concurrent searchers are safe.
  void set_metrics(MetricRegistry* metrics);

  /// Trace sink for `index.seal` / inline `index.merge` spans (null off).
  void set_trace(TraceRecorder* trace) { core_->set_trace(trace); }

 private:
  std::unique_ptr<TermDictionary> owned_;  ///< Null when dict_ is shared.
  TermDictionary* dict_;
  std::unique_ptr<SegmentedPassageIndex> core_;
  /// Cached instruments (null = observability off); stable registry
  /// pointers let Search record without re-resolving the series.
  Counter* lookup_counter_ = nullptr;
  Histogram* lookup_latency_ = nullptr;
};

}  // namespace ir
}  // namespace dwqa

#endif  // DWQA_IR_PASSAGE_INDEX_H_
