#ifndef DWQA_IR_PASSAGE_INDEX_H_
#define DWQA_IR_PASSAGE_INDEX_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/interner.h"
#include "common/metrics.h"
#include "ir/document.h"
#include "text/analyzed_corpus.h"

namespace dwqa {
namespace ir {

/// \brief A passage: `size` consecutive sentences of one document (the
/// IR-n retrieval unit — the paper's footnote 6 describes a most-relevant
/// passage of eight consecutive sentences).
struct Passage {
  DocId doc = kInvalidDoc;
  /// Sentence range [first, last] within the document.
  size_t first_sentence = 0;
  size_t last_sentence = 0;
  double score = 0.0;
  /// The passage text (sentences joined by newlines).
  std::string text;
};

/// \brief IR-n-style passage retrieval: documents are split into sentences
/// at index time, and retrieval scores overlapping sentence windows by
/// idf-weighted query-term coverage.
///
/// This is the filtering stage of AliQAn's search phase (paper Figure 3,
/// Module 2): it cuts the amount of text the expensive QA analysis must
/// process — "IR tools are usually run as a first filtering phase, and QA
/// works on IR output. In this way, time of analysis spent by users is
/// highly decreased" (§1).
///
/// Postings are keyed by TermId (see ir/term_pipeline.h for the shared
/// filtering gate). Like InvertedIndex, the index owns a dictionary unless
/// constructed over a shared one, in which case AddAnalyzed reuses the
/// corpus's cached token ids.
class PassageIndex {
 public:
  /// `window` = number of consecutive sentences per passage (clamped to a
  /// minimum of one sentence).
  explicit PassageIndex(size_t window = 8)
      : window_(window < 1 ? 1 : window),
        owned_(std::make_unique<TermDictionary>()),
        dict_(owned_.get()) {}

  /// Shares `dict` (must outlive the index).
  PassageIndex(size_t window, TermDictionary* dict)
      : window_(window < 1 ? 1 : window), dict_(dict) {}

  /// Splits and indexes the plain text of `doc_id`.
  void AddDocument(DocId doc_id, const std::string& plain_text);

  /// Indexes a document from its cached indexation-time analysis: same
  /// postings and stored sentences as AddDocument on the analyzed plain
  /// text, no re-splitting or re-tokenization. Requires the index to share
  /// the corpus's dictionary.
  void AddAnalyzed(DocId doc_id, const text::AnalyzedDocument& analysis);

  /// Top-k passages for the query terms, best first. Adjacent overlapping
  /// windows of the same document are deduplicated (the best one is kept).
  std::vector<Passage> Search(const std::string& query, size_t k = 5) const;

  /// The stored sentences of a document.
  const std::vector<std::string>& Sentences(DocId doc_id) const;

  size_t window() const { return window_; }
  size_t document_count() const { return sentences_.size(); }

  /// Canonical dump — every postings list (with term strings, in TermId
  /// order, refs in insertion order) and per-document sentence counts. Used
  /// by the serial↔parallel golden-equivalence suite; see
  /// InvertedIndex::DebugString.
  std::string DebugString() const;

  /// Attaches a metrics registry (may be null): every Search records
  /// `dwqa_ir_passage_lookups_total` and a
  /// `dwqa_ir_passage_lookup_latency_ms` observation. Recording is
  /// lock-free, so concurrent searchers are safe.
  void set_metrics(MetricRegistry* metrics);

 private:
  size_t window_;
  std::unique_ptr<TermDictionary> owned_;  ///< Null when dict_ is shared.
  TermDictionary* dict_;
  /// doc -> its sentences.
  std::unordered_map<DocId, std::vector<std::string>> sentences_;
  /// term -> (doc, sentence) occurrences.
  struct SentenceRef {
    DocId doc;
    uint32_t sentence;
  };
  std::unordered_map<TermId, std::vector<SentenceRef>> postings_;
  /// Cached instruments (null = observability off); stable registry
  /// pointers let Search record without re-resolving the series.
  Counter* lookup_counter_ = nullptr;
  Histogram* lookup_latency_ = nullptr;
};

}  // namespace ir
}  // namespace dwqa

#endif  // DWQA_IR_PASSAGE_INDEX_H_
