#ifndef DWQA_IR_SEGMENTED_INDEX_H_
#define DWQA_IR_SEGMENTED_INDEX_H_

#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/interner.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "ir/segment.h"

namespace dwqa {

class ThreadPool;

namespace ir {

struct DocHit;
struct Passage;

/// \file segmented_index.h
/// \brief LSM-style segmented index cores: a mutable memtable plus a
/// manifest of immutable sealed segments (ir/segment.h), with tiered
/// background merging and block-max top-k pruning.
///
/// `InvertedIndex` and `PassageIndex` re-seat on these cores: AddDocument/
/// AddAnalyzed become incremental appends (a freshly fetched page is
/// searchable without a rebuild), and Search fans out across segments,
/// merging top-k results with exact score-bound pruning.
///
/// **Determinism.** Results are byte-identical regardless of segment count
/// or merge timing: segments keep documents in insertion order, merges
/// concatenate adjacent segments (preserving manifest order), per-document
/// scores accumulate in the same sorted-unique query-term order as the
/// monolithic code, pruning only ever discards candidates strictly below
/// the current top-k threshold, and the final (score, id) sort is a total
/// order. `seal_every = 0` disables sealing entirely — the pure-memtable
/// configuration *is* the old monolithic index.
///
/// **Concurrency contract.** Reads (Search*/DebugString/counters) are safe
/// concurrently with each other and with background merges; writers
/// (Add*/Seal*) require external exclusion from both readers and other
/// writers — the same quiescent-index contract the serving layer already
/// relies on. The destructor blocks until in-flight merges finish.
struct SegmentedIndexOptions {
  /// Memtable documents per sealed segment. 0 = never seal (monolithic
  /// mode: one mutable memtable, no merges, no pruning metadata).
  size_t seal_every = 64;
  /// Sealed-segment count above which a merge is triggered: the adjacent
  /// pair with the fewest combined documents (leftmost on ties) merges
  /// into one, repeatedly, until the manifest is back at or below the
  /// trigger. Deterministic: depends only on the manifest shape.
  size_t merge_trigger = 8;
  /// Postings per block of the sealed lists (block-max skip granularity).
  size_t block_postings = 128;
  /// When non-null, merges run on this pool in the background (the pool
  /// must outlive the index; the index's destructor drains its own merge
  /// before returning). Null = merges run inline at the seal point.
  ThreadPool* merge_pool = nullptr;
};

/// \brief Segmented core of the document-level InvertedIndex.
class SegmentedDocIndex {
 public:
  explicit SegmentedDocIndex(SegmentedIndexOptions options);
  /// Waits for the in-flight background merge (if any) before releasing
  /// the manifest.
  ~SegmentedDocIndex();

  SegmentedDocIndex(const SegmentedDocIndex&) = delete;
  SegmentedDocIndex& operator=(const SegmentedDocIndex&) = delete;

  /// Appends one document (writer API). Seals the memtable when it reaches
  /// `seal_every` documents.
  void Add(DocId doc, const std::unordered_map<TermId, uint32_t>& tf,
           size_t doc_len);

  /// Appends pre-built shards as sealed segments, in shard order; the
  /// expensive compression runs in parallel on `pool` (null/inline pools
  /// seal serially). Parallel bulk build path of IndexCorpus.
  void AddSealedShards(std::vector<DocSegment::Builder> shards,
                       ThreadPool* pool);

  /// Seals the current memtable (no-op when empty or seal_every == 0).
  void SealMemtable();

  /// Exact top-`k` hits for the resolved query terms, best first
  /// (score desc, DocId asc). `ids` must be in sorted-unique term order
  /// (ir/term_pipeline ResolveDocumentQuery) — score accumulation order is
  /// part of the byte-identity contract.
  std::vector<DocHit> SearchTopK(const std::vector<TermId>& ids,
                                 size_t k) const;

  size_t document_count() const { return total_docs_; }
  size_t term_count() const { return df_.size(); }
  /// Documents containing the term, across all segments and the memtable.
  size_t DocFreq(TermId term) const;

  /// Canonical dump, byte-identical to the monolithic index's for the same
  /// insertion order: postings per term (TermId order, refs in insertion
  /// order) then per-document lengths.
  std::string DebugString(const TermDictionary& dict) const;

  size_t sealed_segment_count() const;
  /// Compressed postings bytes across sealed segments.
  size_t postings_bytes() const;
  /// Blocks until no merge is in flight (scheduled or running).
  void WaitForMerges() const;

  /// Attaches the `dwqa_index_*` instruments under the label
  /// {index=`kind`}; null turns instrumentation off.
  void set_metrics(MetricRegistry* metrics, const std::string& kind);
  /// Trace sink for `index.seal` / inline `index.merge` spans (null off).
  /// Background merges are never traced: TraceRecorder parents spans off
  /// one serial stack.
  void set_trace(TraceRecorder* trace) { trace_ = trace; }

 private:
  struct Instruments {
    Counter* seals = nullptr;
    Counter* merges = nullptr;
    Histogram* merge_latency = nullptr;
    Gauge* segments = nullptr;
    Gauge* postings_bytes = nullptr;
    Counter* pruned_segments = nullptr;
    Counter* pruned_blocks = nullptr;
    Counter* pruned_candidates = nullptr;
  };

  void AppendSealed(std::shared_ptr<const DocSegment> segment);
  /// Starts (and, without a pool, runs) merges until the manifest is at or
  /// below the trigger. Requires `lock` held on mu_.
  void StartMergesLocked(std::unique_lock<std::mutex>* lock);
  void RunMerge(std::shared_ptr<const DocSegment> left,
                std::shared_ptr<const DocSegment> right);
  void UpdateManifestGaugesLocked();

  SegmentedIndexOptions options_;
  /// Mutable memtable (writer-owned; merges never touch it).
  DocSegment::Builder memtable_;
  /// Sealed manifest in document order; guarded by mu_ (readers snapshot
  /// it, the merge swaps adjacent entries in place).
  std::vector<std::shared_ptr<const DocSegment>> sealed_;
  size_t sealed_bytes_ = 0;
  /// Global per-term document frequency and document total — maintained
  /// incrementally at Add time, invariant under seal/merge.
  std::unordered_map<TermId, size_t> df_;
  size_t total_docs_ = 0;

  mutable std::mutex mu_;
  mutable std::condition_variable merge_cv_;
  bool merge_inflight_ = false;

  Instruments metrics_;
  TraceRecorder* trace_ = nullptr;
};

/// \brief Segmented core of the IR-n PassageIndex.
///
/// Sentence text lives in an index-level doc→sentences table (never inside
/// segments), so the references PassageIndex::Sentences hands out survive
/// seals and merges. Pruning is per candidate document: the sum of
/// idf + repeat-bonus upper bounds over the document's matched terms
/// bounds every window score, so documents strictly below the current
/// k-th selected window score are skipped without scoring any window.
class SegmentedPassageIndex {
 public:
  SegmentedPassageIndex(size_t window, SegmentedIndexOptions options);
  ~SegmentedPassageIndex();

  SegmentedPassageIndex(const SegmentedPassageIndex&) = delete;
  SegmentedPassageIndex& operator=(const SegmentedPassageIndex&) = delete;

  /// Appends one document: its sentences and, per sentence, the distinct
  /// terms it contains (insertion order, pre-deduplicated).
  void Add(DocId doc, std::vector<std::string> sentences,
           const std::vector<std::vector<TermId>>& sentence_terms);

  /// Bulk path: stores `sentences` (doc → sentence list, in document
  /// order) and appends the pre-built shards as sealed segments, sealing
  /// in parallel on `pool`.
  void AddSealedShards(
      std::vector<PassageSegment::Builder> shards,
      std::vector<std::pair<DocId, std::vector<std::string>>> sentences,
      ThreadPool* pool);

  void SealMemtable();

  /// Exact top-`k` passages, best first (score desc, DocId asc, first
  /// sentence asc), windows of `window()` sentences, overlapping windows
  /// of one document deduplicated — byte-identical to the monolithic
  /// PassageIndex::Search. `ids` per ResolvePassageQuery order.
  std::vector<Passage> SearchTopK(const std::vector<TermId>& ids,
                                  size_t k) const;

  const std::vector<std::string>& Sentences(DocId doc) const;
  size_t window() const { return window_; }
  size_t document_count() const { return sentences_.size(); }
  size_t DocFreq(TermId term) const;

  std::string DebugString(const TermDictionary& dict) const;

  size_t sealed_segment_count() const;
  size_t postings_bytes() const;
  void WaitForMerges() const;

  void set_metrics(MetricRegistry* metrics, const std::string& kind);
  void set_trace(TraceRecorder* trace) { trace_ = trace; }

 private:
  struct Instruments {
    Counter* seals = nullptr;
    Counter* merges = nullptr;
    Histogram* merge_latency = nullptr;
    Gauge* segments = nullptr;
    Gauge* postings_bytes = nullptr;
    Counter* pruned_segments = nullptr;
    Counter* pruned_candidates = nullptr;
    Counter* pruned_windows = nullptr;
  };

  void AppendSealed(std::shared_ptr<const PassageSegment> segment);
  void StartMergesLocked(std::unique_lock<std::mutex>* lock);
  void RunMerge(std::shared_ptr<const PassageSegment> left,
                std::shared_ptr<const PassageSegment> right);
  void UpdateManifestGaugesLocked();

  size_t window_;
  SegmentedIndexOptions options_;
  PassageSegment::Builder memtable_;
  std::vector<std::shared_ptr<const PassageSegment>> sealed_;
  size_t sealed_bytes_ = 0;
  std::unordered_map<TermId, size_t> df_;
  /// doc → sentences; address-stable across seals and merges.
  std::unordered_map<DocId, std::vector<std::string>> sentences_;

  mutable std::mutex mu_;
  mutable std::condition_variable merge_cv_;
  bool merge_inflight_ = false;

  Instruments metrics_;
  TraceRecorder* trace_ = nullptr;
};

}  // namespace ir
}  // namespace dwqa

#endif  // DWQA_IR_SEGMENTED_INDEX_H_
