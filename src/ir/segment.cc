#include "ir/segment.h"

#include <algorithm>
#include <cmath>

namespace dwqa {
namespace ir {

void AppendVarint(std::string* out, uint64_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<char>((value & 0x7F) | 0x80));
    value >>= 7;
  }
  out->push_back(static_cast<char>(value));
}

uint64_t ReadVarint(const std::string& bytes, size_t* pos) {
  uint64_t value = 0;
  int shift = 0;
  for (;;) {
    uint8_t byte = static_cast<uint8_t>(bytes[*pos]);
    ++*pos;
    value |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return value;
    shift += 7;
  }
}

PostingList EncodePostings(
    const std::vector<std::pair<uint32_t, uint32_t>>& postings,
    size_t block_postings, const std::function<double(size_t)>& weight) {
  if (block_postings < 1) block_postings = 1;
  PostingList list;
  list.count = static_cast<uint32_t>(postings.size());
  for (size_t begin = 0; begin < postings.size(); begin += block_postings) {
    size_t end = std::min(begin + block_postings, postings.size());
    PostingBlock block;
    block.offset = static_cast<uint32_t>(list.bytes.size());
    block.count = static_cast<uint32_t>(end - begin);
    block.last_ordinal = postings[end - 1].first;
    for (size_t i = begin; i < end; ++i) {
      // First posting of a block stores its ordinal absolutely, the rest
      // the delta from their predecessor — blocks decode independently.
      uint32_t delta = i == begin ? postings[i].first
                                  : postings[i].first - postings[i - 1].first;
      AppendVarint(&list.bytes, delta);
      AppendVarint(&list.bytes, postings[i].second);
      block.max_weight = std::max(block.max_weight, weight(i));
    }
    list.max_weight = std::max(list.max_weight, block.max_weight);
    list.blocks.push_back(block);
  }
  return list;
}

PostingCursor::PostingCursor(const PostingList* list) : list_(list) {
  LoadBlockStart();
}

void PostingCursor::LoadBlockStart() {
  if (done()) return;
  pos_ = list_->blocks[block_].offset;
  index_in_block_ = 0;
  ordinal_ = static_cast<uint32_t>(ReadVarint(list_->bytes, &pos_));
  payload_ = static_cast<uint32_t>(ReadVarint(list_->bytes, &pos_));
}

void PostingCursor::Next() {
  ++index_in_block_;
  if (index_in_block_ >= list_->blocks[block_].count) {
    ++block_;
    LoadBlockStart();
    return;
  }
  ordinal_ += static_cast<uint32_t>(ReadVarint(list_->bytes, &pos_));
  payload_ = static_cast<uint32_t>(ReadVarint(list_->bytes, &pos_));
}

bool PostingCursor::SkipBlock() {
  ++block_;
  LoadBlockStart();
  return !done();
}

namespace {

/// `tf / sqrt(len)` with the zero-length guard the monolithic index used —
/// the TF part of the TF-IDF score, and therefore the per-posting weight
/// whose block maxima make `idf * max_weight` a true score upper bound.
double DocPostingWeight(uint32_t tf, uint32_t doc_len) {
  double len = doc_len == 0 ? 1.0 : static_cast<double>(doc_len);
  return static_cast<double>(tf) / std::sqrt(len);
}

}  // namespace

void DocSegment::Builder::Add(DocId doc,
                              const std::unordered_map<TermId, uint32_t>& tf,
                              size_t doc_len) {
  uint32_t ordinal = static_cast<uint32_t>(docs.size());
  for (const auto& [term, freq] : tf) {
    postings[term].push_back({ordinal, freq});
  }
  docs.push_back(doc);
  lengths.push_back(static_cast<uint32_t>(doc_len));
}

std::shared_ptr<const DocSegment> DocSegment::Seal(Builder builder,
                                                   size_t block_postings) {
  std::shared_ptr<DocSegment> seg(new DocSegment());
  seg->docs_ = std::move(builder.docs);
  seg->lengths_ = std::move(builder.lengths);
  for (auto& [term, pairs] : builder.postings) {
    PostingList list = EncodePostings(
        pairs, block_postings, [&pairs, seg = seg.get()](size_t i) {
          return DocPostingWeight(pairs[i].second,
                                  seg->lengths_[pairs[i].first]);
        });
    seg->postings_bytes_ += list.bytes.size();
    seg->postings_.emplace(term, std::move(list));
  }
  return seg;
}

std::shared_ptr<const DocSegment> DocSegment::Merge(const DocSegment& left,
                                                    const DocSegment& right,
                                                    size_t block_postings) {
  Builder builder;
  builder.docs = left.docs_;
  builder.docs.insert(builder.docs.end(), right.docs_.begin(),
                      right.docs_.end());
  builder.lengths = left.lengths_;
  builder.lengths.insert(builder.lengths.end(), right.lengths_.begin(),
                         right.lengths_.end());
  uint32_t offset = static_cast<uint32_t>(left.doc_count());
  for (const auto& [term, list] : left.postings_) {
    auto& pairs = builder.postings[term];
    pairs.reserve(list.count);
    ForEachPosting(list, [&pairs](uint32_t ordinal, uint32_t tf) {
      pairs.push_back({ordinal, tf});
    });
  }
  for (const auto& [term, list] : right.postings_) {
    auto& pairs = builder.postings[term];
    pairs.reserve(pairs.size() + list.count);
    ForEachPosting(list, [&pairs, offset](uint32_t ordinal, uint32_t tf) {
      pairs.push_back({ordinal + offset, tf});
    });
  }
  return Seal(std::move(builder), block_postings);
}

const PostingList* DocSegment::Find(TermId term) const {
  auto it = postings_.find(term);
  return it == postings_.end() ? nullptr : &it->second;
}

void PassageSegment::Builder::Add(
    DocId doc, const std::vector<std::vector<TermId>>& sentence_terms) {
  uint32_t ordinal = static_cast<uint32_t>(docs.size());
  for (uint32_t s = 0; s < sentence_terms.size(); ++s) {
    for (TermId term : sentence_terms[s]) {
      postings[term].push_back({ordinal, s});
    }
  }
  docs.push_back(doc);
}

std::shared_ptr<const PassageSegment> PassageSegment::Seal(
    Builder builder, size_t block_postings) {
  std::shared_ptr<PassageSegment> seg(new PassageSegment());
  seg->docs_ = std::move(builder.docs);
  auto zero_weight = [](size_t) { return 0.0; };
  for (auto& [term, pairs] : builder.postings) {
    TermInfo info;
    // Refs of one document are contiguous (ordinals are non-decreasing);
    // one pass over the runs yields df and the max per-document run.
    uint32_t run = 0;
    for (size_t i = 0; i < pairs.size(); ++i) {
      run = (i > 0 && pairs[i].first == pairs[i - 1].first) ? run + 1 : 1;
      if (run == 1) ++info.doc_freq;
      info.max_occurrences = std::max(info.max_occurrences, run);
    }
    info.list = EncodePostings(pairs, block_postings, zero_weight);
    seg->postings_bytes_ += info.list.bytes.size();
    seg->terms_.emplace(term, std::move(info));
  }
  return seg;
}

std::shared_ptr<const PassageSegment> PassageSegment::Merge(
    const PassageSegment& left, const PassageSegment& right,
    size_t block_postings) {
  Builder builder;
  builder.docs = left.docs_;
  builder.docs.insert(builder.docs.end(), right.docs_.begin(),
                      right.docs_.end());
  uint32_t offset = static_cast<uint32_t>(left.doc_count());
  for (const auto& [term, info] : left.terms_) {
    auto& pairs = builder.postings[term];
    pairs.reserve(info.list.count);
    ForEachPosting(info.list, [&pairs](uint32_t ordinal, uint32_t sentence) {
      pairs.push_back({ordinal, sentence});
    });
  }
  for (const auto& [term, info] : right.terms_) {
    auto& pairs = builder.postings[term];
    pairs.reserve(pairs.size() + info.list.count);
    ForEachPosting(info.list,
                   [&pairs, offset](uint32_t ordinal, uint32_t sentence) {
                     pairs.push_back({ordinal + offset, sentence});
                   });
  }
  return Seal(std::move(builder), block_postings);
}

const PassageSegment::TermInfo* PassageSegment::Find(TermId term) const {
  auto it = terms_.find(term);
  return it == terms_.end() ? nullptr : &it->second;
}

}  // namespace ir
}  // namespace dwqa
