#include "ir/inverted_index.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/metric_names.h"
#include "common/string_util.h"
#include "ir/term_pipeline.h"

namespace dwqa {
namespace ir {

void InvertedIndex::Commit(DocId doc_id,
                           const std::unordered_map<TermId, uint32_t>& tf,
                           size_t doc_len) {
  for (const auto& [term, freq] : tf) {
    postings_[term].push_back({doc_id, freq});
  }
  doc_lengths_[doc_id] = doc_len;
}

void InvertedIndex::AddDocument(DocId doc_id, const std::string& text) {
  std::unordered_map<TermId, uint32_t> tf;
  size_t doc_len = 0;
  for (const std::string& term : DocumentTerms(text)) {
    ++tf[dict_->Intern(term)];
    ++doc_len;
  }
  Commit(doc_id, tf, doc_len);
}

void InvertedIndex::AddAnalyzed(DocId doc_id,
                                const text::AnalyzedDocument& analysis) {
  std::unordered_map<TermId, uint32_t> tf;
  size_t doc_len = 0;
  for (const text::AnalyzedSentence& s : analysis.sentences) {
    for (size_t i = 0; i < s.tokens.size(); ++i) {
      if (!IsDocumentTerm(s.tokens[i])) continue;
      ++tf[s.token_ids[i]];
      ++doc_len;
    }
  }
  Commit(doc_id, tf, doc_len);
}

size_t InvertedIndex::DocFreq(const std::string& term) const {
  TermId id = dict_->Find(ToLower(term));
  if (id == kInvalidTermId) return 0;
  auto it = postings_.find(id);
  return it == postings_.end() ? 0 : it->second.size();
}

std::string InvertedIndex::DebugString() const {
  std::ostringstream out;
  std::vector<TermId> term_ids;
  term_ids.reserve(postings_.size());
  for (const auto& [term, unused] : postings_) term_ids.push_back(term);
  std::sort(term_ids.begin(), term_ids.end());
  for (TermId term : term_ids) {
    out << term << '=' << dict_->Term(term) << ':';
    for (const Posting& p : postings_.at(term)) {
      out << ' ' << p.doc << 'x' << p.tf;
    }
    out << '\n';
  }
  std::vector<DocId> docs;
  docs.reserve(doc_lengths_.size());
  for (const auto& [doc, unused] : doc_lengths_) docs.push_back(doc);
  std::sort(docs.begin(), docs.end());
  for (DocId doc : docs) {
    out << "len " << doc << '=' << doc_lengths_.at(doc) << '\n';
  }
  return out.str();
}

void InvertedIndex::set_metrics(MetricRegistry* metrics) {
  if (metrics == nullptr) {
    lookup_counter_ = nullptr;
    lookup_latency_ = nullptr;
    return;
  }
  lookup_counter_ = metrics->GetCounter(
      kMetricIrDocLookups, {}, "Document-level index searches performed");
  lookup_latency_ = metrics->GetHistogram(
      kMetricIrDocLookupLatency, {}, MetricRegistry::LatencyBucketsMs(),
      "Latency of document-level index searches");
}

std::vector<DocHit> InvertedIndex::Search(const std::string& query,
                                          size_t k) const {
  ScopedLatencyTimer timer(lookup_latency_);
  if (lookup_counter_ != nullptr) lookup_counter_->Increment();
  const double n_docs = static_cast<double>(doc_lengths_.size());
  std::unordered_map<DocId, DocHit> acc;
  std::vector<std::string> terms = DocumentTerms(query);
  // Deduplicate query terms: each distinct term contributes once.
  std::sort(terms.begin(), terms.end());
  terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
  for (const std::string& term : terms) {
    TermId id = dict_->Find(term);
    if (id == kInvalidTermId) continue;
    auto it = postings_.find(id);
    if (it == postings_.end()) continue;
    double idf =
        std::log((n_docs + 1.0) / (static_cast<double>(it->second.size())));
    for (const Posting& p : it->second) {
      auto len_it = doc_lengths_.find(p.doc);
      double len = len_it == doc_lengths_.end() || len_it->second == 0
                       ? 1.0
                       : static_cast<double>(len_it->second);
      DocHit& hit = acc[p.doc];
      hit.doc = p.doc;
      hit.score += (static_cast<double>(p.tf) / std::sqrt(len)) * idf;
      ++hit.matched_terms;
    }
  }
  std::vector<DocHit> hits;
  hits.reserve(acc.size());
  for (auto& [doc, hit] : acc) hits.push_back(hit);
  std::sort(hits.begin(), hits.end(), [](const DocHit& a, const DocHit& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.doc < b.doc;  // Deterministic tie-break.
  });
  if (hits.size() > k) hits.resize(k);
  return hits;
}

}  // namespace ir
}  // namespace dwqa
