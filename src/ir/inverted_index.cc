#include "ir/inverted_index.h"

#include <algorithm>

#include "common/metric_names.h"
#include "common/string_util.h"
#include "ir/term_pipeline.h"

namespace dwqa {
namespace ir {

namespace {

/// Term-frequency extraction shared by the add paths: the tf map plus the
/// document length (kept terms, duplicates included).
std::pair<std::unordered_map<TermId, uint32_t>, size_t> AnalyzedTf(
    const text::AnalyzedDocument& analysis) {
  std::unordered_map<TermId, uint32_t> tf;
  size_t doc_len = 0;
  for (const text::AnalyzedSentence& s : analysis.sentences) {
    for (size_t i = 0; i < s.tokens.size(); ++i) {
      if (!IsDocumentTerm(s.tokens[i])) continue;
      ++tf[s.token_ids[i]];
      ++doc_len;
    }
  }
  return {std::move(tf), doc_len};
}

}  // namespace

void InvertedIndex::AddDocument(DocId doc_id, const std::string& text) {
  std::unordered_map<TermId, uint32_t> tf;
  size_t doc_len = 0;
  for (const std::string& term : DocumentTerms(text)) {
    ++tf[dict_->Intern(term)];
    ++doc_len;
  }
  core_->Add(doc_id, tf, doc_len);
}

void InvertedIndex::AddAnalyzed(DocId doc_id,
                                const text::AnalyzedDocument& analysis) {
  auto [tf, doc_len] = AnalyzedTf(analysis);
  core_->Add(doc_id, tf, doc_len);
}

void InvertedIndex::AddAnalyzedBatch(
    const std::vector<std::pair<DocId, const text::AnalyzedDocument*>>& docs,
    ThreadPool* pool) {
  size_t shard_count = pool == nullptr ? 1 : std::max<size_t>(
                                                 1, pool->worker_count());
  shard_count = std::min(shard_count, std::max<size_t>(1, docs.size()));
  size_t per_shard = (docs.size() + shard_count - 1) / shard_count;
  std::vector<DocSegment::Builder> shards(shard_count);
  auto build_shard = [&](size_t s) {
    size_t begin = s * per_shard;
    size_t end = std::min(begin + per_shard, docs.size());
    for (size_t i = begin; i < end; ++i) {
      auto [tf, doc_len] = AnalyzedTf(*docs[i].second);
      shards[s].Add(docs[i].first, tf, doc_len);
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(shard_count, build_shard);
  } else {
    for (size_t s = 0; s < shard_count; ++s) build_shard(s);
  }
  core_->AddSealedShards(std::move(shards), pool);
}

size_t InvertedIndex::DocFreq(const std::string& term) const {
  TermId id = dict_->Find(ToLower(term));
  if (id == kInvalidTermId) return 0;
  return core_->DocFreq(id);
}

void InvertedIndex::set_metrics(MetricRegistry* metrics) {
  core_->set_metrics(metrics, "doc");
  if (metrics == nullptr) {
    lookup_counter_ = nullptr;
    lookup_latency_ = nullptr;
    return;
  }
  lookup_counter_ = metrics->GetCounter(
      kMetricIrDocLookups, {}, "Document-level index searches performed");
  lookup_latency_ = metrics->GetHistogram(
      kMetricIrDocLookupLatency, {}, MetricRegistry::LatencyBucketsMs(),
      "Latency of document-level index searches");
}

std::vector<DocHit> InvertedIndex::Search(const std::string& query,
                                          size_t k) const {
  ScopedLatencyTimer timer(lookup_latency_);
  if (lookup_counter_ != nullptr) lookup_counter_->Increment();
  return core_->SearchTopK(ResolveDocumentQuery(query, *dict_), k);
}

}  // namespace ir
}  // namespace dwqa
