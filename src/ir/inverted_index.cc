#include "ir/inverted_index.h"

#include <algorithm>
#include <cctype>
#include <cmath>

#include "common/string_util.h"
#include "ir/stopwords.h"
#include "text/tokenizer.h"

namespace dwqa {
namespace ir {

namespace {

std::vector<std::string> IndexTerms(const std::string& text) {
  std::vector<std::string> terms;
  for (const text::Token& t : text::Tokenizer::Tokenize(text)) {
    if (t.lower.size() < 2 && !IsDigits(t.lower)) continue;
    if (Stopwords::IsStopword(t.lower)) continue;
    if (!std::isalnum(static_cast<unsigned char>(t.lower[0]))) continue;
    terms.push_back(t.lower);
  }
  return terms;
}

}  // namespace

void InvertedIndex::AddDocument(DocId doc_id, const std::string& text) {
  std::unordered_map<std::string, uint32_t> tf;
  std::vector<std::string> terms = IndexTerms(text);
  for (const std::string& term : terms) ++tf[term];
  for (const auto& [term, freq] : tf) {
    postings_[term].push_back({doc_id, freq});
  }
  doc_lengths_[doc_id] = terms.size();
}

size_t InvertedIndex::DocFreq(const std::string& term) const {
  auto it = postings_.find(ToLower(term));
  return it == postings_.end() ? 0 : it->second.size();
}

std::vector<DocHit> InvertedIndex::Search(const std::string& query,
                                          size_t k) const {
  const double n_docs = static_cast<double>(doc_lengths_.size());
  std::unordered_map<DocId, DocHit> acc;
  std::vector<std::string> terms = IndexTerms(query);
  // Deduplicate query terms: each distinct term contributes once.
  std::sort(terms.begin(), terms.end());
  terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
  for (const std::string& term : terms) {
    auto it = postings_.find(term);
    if (it == postings_.end()) continue;
    double idf =
        std::log((n_docs + 1.0) / (static_cast<double>(it->second.size())));
    for (const Posting& p : it->second) {
      auto len_it = doc_lengths_.find(p.doc);
      double len = len_it == doc_lengths_.end() || len_it->second == 0
                       ? 1.0
                       : static_cast<double>(len_it->second);
      DocHit& hit = acc[p.doc];
      hit.doc = p.doc;
      hit.score += (static_cast<double>(p.tf) / std::sqrt(len)) * idf;
      ++hit.matched_terms;
    }
  }
  std::vector<DocHit> hits;
  hits.reserve(acc.size());
  for (auto& [doc, hit] : acc) hits.push_back(hit);
  std::sort(hits.begin(), hits.end(), [](const DocHit& a, const DocHit& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.doc < b.doc;  // Deterministic tie-break.
  });
  if (hits.size() > k) hits.resize(k);
  return hits;
}

}  // namespace ir
}  // namespace dwqa
