#include "ir/passage_index.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <sstream>

#include "common/metric_names.h"
#include "common/string_util.h"
#include "ir/term_pipeline.h"
#include "text/sentence_splitter.h"
#include "text/tokenizer.h"

namespace dwqa {
namespace ir {

void PassageIndex::AddDocument(DocId doc_id, const std::string& text) {
  std::vector<std::string> sents = text::SentenceSplitter::Split(text);
  for (size_t s = 0; s < sents.size(); ++s) {
    std::set<TermId> seen;
    for (const text::Token& t : text::Tokenizer::Tokenize(sents[s])) {
      if (!IsPassageTerm(t)) continue;
      TermId id = dict_->Intern(t.lower);
      if (seen.insert(id).second) {
        postings_[id].push_back({doc_id, static_cast<uint32_t>(s)});
      }
    }
  }
  sentences_[doc_id] = std::move(sents);
}

void PassageIndex::AddAnalyzed(DocId doc_id,
                               const text::AnalyzedDocument& analysis) {
  std::vector<std::string> sents;
  sents.reserve(analysis.sentences.size());
  for (size_t s = 0; s < analysis.sentences.size(); ++s) {
    const text::AnalyzedSentence& sentence = analysis.sentences[s];
    std::set<TermId> seen;
    for (size_t i = 0; i < sentence.tokens.size(); ++i) {
      if (!IsPassageTerm(sentence.tokens[i])) continue;
      if (seen.insert(sentence.token_ids[i]).second) {
        postings_[sentence.token_ids[i]].push_back(
            {doc_id, static_cast<uint32_t>(s)});
      }
    }
    sents.push_back(sentence.text);
  }
  sentences_[doc_id] = std::move(sents);
}

const std::vector<std::string>& PassageIndex::Sentences(DocId doc_id) const {
  static const std::vector<std::string> kEmpty;
  auto it = sentences_.find(doc_id);
  return it == sentences_.end() ? kEmpty : it->second;
}

std::string PassageIndex::DebugString() const {
  std::ostringstream out;
  std::vector<TermId> term_ids;
  term_ids.reserve(postings_.size());
  for (const auto& [term, unused] : postings_) term_ids.push_back(term);
  std::sort(term_ids.begin(), term_ids.end());
  for (TermId term : term_ids) {
    out << term << '=' << dict_->Term(term) << ':';
    for (const SentenceRef& ref : postings_.at(term)) {
      out << ' ' << ref.doc << '.' << ref.sentence;
    }
    out << '\n';
  }
  std::vector<DocId> docs;
  docs.reserve(sentences_.size());
  for (const auto& [doc, unused] : sentences_) docs.push_back(doc);
  std::sort(docs.begin(), docs.end());
  for (DocId doc : docs) {
    out << "sentences " << doc << '=' << sentences_.at(doc).size() << '\n';
  }
  return out.str();
}

void PassageIndex::set_metrics(MetricRegistry* metrics) {
  if (metrics == nullptr) {
    lookup_counter_ = nullptr;
    lookup_latency_ = nullptr;
    return;
  }
  lookup_counter_ = metrics->GetCounter(
      kMetricIrPassageLookups, {}, "IR-n passage index searches performed");
  lookup_latency_ = metrics->GetHistogram(
      kMetricIrPassageLookupLatency, {}, MetricRegistry::LatencyBucketsMs(),
      "Latency of IR-n passage index searches");
}

std::vector<Passage> PassageIndex::Search(const std::string& query,
                                          size_t k) const {
  ScopedLatencyTimer timer(lookup_latency_);
  if (lookup_counter_ != nullptr) lookup_counter_->Increment();
  std::vector<std::string> terms = PassageTerms(query);
  std::sort(terms.begin(), terms.end());
  terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
  if (terms.empty()) return {};
  const double n_docs = static_cast<double>(sentences_.size());

  // Per document: the matched sentences, each with the set of query terms
  // it contains (term index → idf). Window scoring is presence-based — a
  // term contributes its full idf once per window plus a small bonus per
  // extra occurrence — so a page repeating "January ... 2004" on every line
  // does not drown out a page covering *all* the query terms.
  struct SentenceHit {
    uint32_t sentence;
    size_t term;
  };
  std::map<DocId, std::vector<SentenceHit>> by_doc;
  std::vector<double> idf(terms.size(), 0.0);
  for (size_t t = 0; t < terms.size(); ++t) {
    TermId id = dict_->Find(terms[t]);
    if (id == kInvalidTermId) continue;
    auto it = postings_.find(id);
    if (it == postings_.end()) continue;
    std::set<DocId> docs;
    for (const SentenceRef& ref : it->second) docs.insert(ref.doc);
    idf[t] =
        std::log((n_docs + 1.0) / static_cast<double>(docs.size()));
    for (const SentenceRef& ref : it->second) {
      by_doc[ref.doc].push_back({ref.sentence, t});
    }
  }
  if (by_doc.empty()) return {};

  constexpr double kRepeatBonus = 0.05;
  std::vector<Passage> all;
  for (const auto& [doc, doc_hits] : by_doc) {
    size_t n_sents = Sentences(doc).size();
    // Candidate windows start at each matched sentence.
    std::set<uint32_t> starts;
    for (const SentenceHit& h : doc_hits) starts.insert(h.sentence);
    for (uint32_t first : starts) {
      size_t last = std::min(n_sents == 0 ? size_t(first) : n_sents - 1,
                             size_t(first) + window_ - 1);
      std::vector<size_t> occurrences(terms.size(), 0);
      for (const SentenceHit& h : doc_hits) {
        if (h.sentence >= first && h.sentence <= last) {
          ++occurrences[h.term];
        }
      }
      double score = 0.0;
      for (size_t t = 0; t < terms.size(); ++t) {
        if (occurrences[t] == 0) continue;
        score += idf[t] +
                 kRepeatBonus * idf[t] *
                     static_cast<double>(occurrences[t] - 1);
      }
      Passage p;
      p.doc = doc;
      p.first_sentence = first;
      p.last_sentence = last;
      p.score = score;
      all.push_back(p);
    }
  }

  // Rank: all candidate windows, deduplicated per (doc, first) and capped.
  std::sort(all.begin(), all.end(), [](const Passage& a, const Passage& b) {
    if (a.score != b.score) return a.score > b.score;
    if (a.doc != b.doc) return a.doc < b.doc;
    return a.first_sentence < b.first_sentence;
  });
  std::vector<Passage> out;
  std::set<std::pair<DocId, size_t>> taken;
  for (const Passage& p : all) {
    if (out.size() >= k) break;
    // Skip windows overlapping an already selected window of the same doc.
    bool overlaps = false;
    for (const Passage& sel : out) {
      if (sel.doc == p.doc && p.first_sentence <= sel.last_sentence &&
          sel.first_sentence <= p.last_sentence) {
        overlaps = true;
        break;
      }
    }
    if (overlaps) continue;
    Passage chosen = p;
    const std::vector<std::string>& sents = Sentences(p.doc);
    std::string text;
    for (size_t s = chosen.first_sentence;
         s <= chosen.last_sentence && s < sents.size(); ++s) {
      if (!text.empty()) text += '\n';
      text += sents[s];
    }
    chosen.text = std::move(text);
    out.push_back(std::move(chosen));
  }
  return out;
}

}  // namespace ir
}  // namespace dwqa
