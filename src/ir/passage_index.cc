#include "ir/passage_index.h"

#include <algorithm>
#include <set>

#include "common/metric_names.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "ir/term_pipeline.h"
#include "text/sentence_splitter.h"
#include "text/tokenizer.h"

namespace dwqa {
namespace ir {

namespace {

/// Per-sentence distinct-term extraction from a cached analysis (the gate
/// and the first-occurrence dedup of the raw AddDocument path, minus the
/// tokenization it no longer needs).
std::vector<std::vector<TermId>> AnalyzedSentenceTerms(
    const text::AnalyzedDocument& analysis) {
  std::vector<std::vector<TermId>> sentence_terms(analysis.sentences.size());
  for (size_t s = 0; s < analysis.sentences.size(); ++s) {
    const text::AnalyzedSentence& sentence = analysis.sentences[s];
    std::set<TermId> seen;
    for (size_t i = 0; i < sentence.tokens.size(); ++i) {
      if (!IsPassageTerm(sentence.tokens[i])) continue;
      if (seen.insert(sentence.token_ids[i]).second) {
        sentence_terms[s].push_back(sentence.token_ids[i]);
      }
    }
  }
  return sentence_terms;
}

std::vector<std::string> AnalyzedSentenceTexts(
    const text::AnalyzedDocument& analysis) {
  std::vector<std::string> sents;
  sents.reserve(analysis.sentences.size());
  for (const text::AnalyzedSentence& sentence : analysis.sentences) {
    sents.push_back(sentence.text);
  }
  return sents;
}

}  // namespace

void PassageIndex::AddDocument(DocId doc_id, const std::string& text) {
  std::vector<std::string> sents = text::SentenceSplitter::Split(text);
  std::vector<std::vector<TermId>> sentence_terms(sents.size());
  for (size_t s = 0; s < sents.size(); ++s) {
    std::set<TermId> seen;
    for (const text::Token& t : text::Tokenizer::Tokenize(sents[s])) {
      if (!IsPassageTerm(t)) continue;
      TermId id = dict_->Intern(t.lower);
      if (seen.insert(id).second) sentence_terms[s].push_back(id);
    }
  }
  core_->Add(doc_id, std::move(sents), sentence_terms);
}

void PassageIndex::AddAnalyzed(DocId doc_id,
                               const text::AnalyzedDocument& analysis) {
  core_->Add(doc_id, AnalyzedSentenceTexts(analysis),
             AnalyzedSentenceTerms(analysis));
}

void PassageIndex::AddAnalyzedBatch(
    const std::vector<std::pair<DocId, const text::AnalyzedDocument*>>& docs,
    ThreadPool* pool) {
  size_t shard_count = pool == nullptr ? 1 : std::max<size_t>(
                                                 1, pool->worker_count());
  shard_count = std::min(shard_count, std::max<size_t>(1, docs.size()));
  size_t per_shard = (docs.size() + shard_count - 1) / shard_count;
  std::vector<PassageSegment::Builder> shards(shard_count);
  std::vector<std::pair<DocId, std::vector<std::string>>> sentences(
      docs.size());
  auto build_shard = [&](size_t s) {
    size_t begin = s * per_shard;
    size_t end = std::min(begin + per_shard, docs.size());
    for (size_t i = begin; i < end; ++i) {
      shards[s].Add(docs[i].first, AnalyzedSentenceTerms(*docs[i].second));
      sentences[i] = {docs[i].first, AnalyzedSentenceTexts(*docs[i].second)};
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(shard_count, build_shard);
  } else {
    for (size_t s = 0; s < shard_count; ++s) build_shard(s);
  }
  core_->AddSealedShards(std::move(shards), std::move(sentences), pool);
}

void PassageIndex::set_metrics(MetricRegistry* metrics) {
  core_->set_metrics(metrics, "passage");
  if (metrics == nullptr) {
    lookup_counter_ = nullptr;
    lookup_latency_ = nullptr;
    return;
  }
  lookup_counter_ = metrics->GetCounter(
      kMetricIrPassageLookups, {}, "IR-n passage index searches performed");
  lookup_latency_ = metrics->GetHistogram(
      kMetricIrPassageLookupLatency, {}, MetricRegistry::LatencyBucketsMs(),
      "Latency of IR-n passage index searches");
}

std::vector<Passage> PassageIndex::Search(const std::string& query,
                                          size_t k) const {
  ScopedLatencyTimer timer(lookup_latency_);
  if (lookup_counter_ != nullptr) lookup_counter_->Increment();
  return core_->SearchTopK(ResolvePassageQuery(query, *dict_), k);
}

}  // namespace ir
}  // namespace dwqa
