#include "ir/stopwords.h"

namespace dwqa {
namespace ir {

const std::unordered_set<std::string>& Stopwords::English() {
  static const auto* kSet = new std::unordered_set<std::string>{
      "a",    "an",    "the",  "and",  "or",    "but",   "of",    "in",
      "on",   "at",    "by",   "with", "from",  "to",    "into",  "for",
      "as",   "is",    "are",  "was",  "were",  "be",    "been",  "being",
      "am",   "do",    "does", "did",  "done",  "have",  "has",   "had",
      "will", "would", "can",  "could","may",   "might", "must",  "shall",
      "should","it",   "its",  "he",   "she",   "they",  "them",  "his",
      "her",  "their", "we",   "us",   "our",   "you",   "your",  "i",
      "me",   "my",    "this", "that", "these", "those", "there", "here",
      "what", "which", "who",  "whom", "whose", "when",  "where", "why",
      "how",  "not",   "no",   "nor",  "so",    "than",  "then",  "too",
      "very", "just",  "about","above","after", "again", "all",   "any",
      "both", "each",  "few",  "more", "most",  "other", "some",  "such",
      "only", "own",   "same", "also", "per",   "like",  "during","between",
      "over", "under", "through", "against", "around", "within", "without"};
  return *kSet;
}

}  // namespace ir
}  // namespace dwqa
