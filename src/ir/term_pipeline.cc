#include "ir/term_pipeline.h"

#include <algorithm>
#include <cctype>

#include "common/string_util.h"
#include "ir/stopwords.h"
#include "text/tokenizer.h"

namespace dwqa {
namespace ir {

bool IsPassageTerm(const text::Token& t) {
  if (t.lower.empty() ||
      !std::isalnum(static_cast<unsigned char>(t.lower[0]))) {
    return false;
  }
  return !Stopwords::IsStopword(t.lower);
}

bool IsDocumentTerm(const text::Token& t) {
  if (t.lower.size() < 2 && !IsDigits(t.lower)) return false;
  return IsPassageTerm(t);
}

namespace {

template <typename Pred>
std::vector<std::string> FilteredTerms(const std::string& text, Pred keep) {
  std::vector<std::string> terms;
  for (const text::Token& t : text::Tokenizer::Tokenize(text)) {
    if (keep(t)) terms.push_back(t.lower);
  }
  return terms;
}

}  // namespace

std::vector<std::string> DocumentTerms(const std::string& text) {
  return FilteredTerms(text, IsDocumentTerm);
}

std::vector<std::string> PassageTerms(const std::string& text) {
  return FilteredTerms(text, IsPassageTerm);
}

namespace {

std::vector<TermId> ResolveQuery(std::vector<std::string> terms,
                                 const TermDictionary& dict) {
  std::sort(terms.begin(), terms.end());
  terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
  std::vector<TermId> ids;
  ids.reserve(terms.size());
  for (const std::string& term : terms) {
    TermId id = dict.Find(term);
    if (id != kInvalidTermId) ids.push_back(id);
  }
  return ids;
}

}  // namespace

std::vector<TermId> ResolveDocumentQuery(const std::string& query,
                                         const TermDictionary& dict) {
  return ResolveQuery(DocumentTerms(query), dict);
}

std::vector<TermId> ResolvePassageQuery(const std::string& query,
                                        const TermDictionary& dict) {
  return ResolveQuery(PassageTerms(query), dict);
}

}  // namespace ir
}  // namespace dwqa
