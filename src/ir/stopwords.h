#ifndef DWQA_IR_STOPWORDS_H_
#define DWQA_IR_STOPWORDS_H_

#include <string>
#include <unordered_set>

namespace dwqa {
namespace ir {

/// \brief English stopword list.
///
/// Used by the IR side only: "IR usually discards what is known as
/// stop-words" (paper §1) — the QA side keeps every token, which is one of
/// the three QA-vs-IR differences the paper builds on.
class Stopwords {
 public:
  static const std::unordered_set<std::string>& English();

  static bool IsStopword(const std::string& lower_word) {
    return English().count(lower_word) > 0;
  }
};

}  // namespace ir
}  // namespace dwqa

#endif  // DWQA_IR_STOPWORDS_H_
