#include "ir/segmented_index.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <queue>
#include <set>
#include <sstream>

#include "common/metric_names.h"
#include "common/thread_pool.h"
#include "ir/inverted_index.h"
#include "ir/passage_index.h"

namespace dwqa {
namespace ir {

namespace {

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Min-heap of the best k scores seen so far. `value()` is the current
/// k-th best — the exact pruning threshold: a candidate with an upper
/// bound strictly below it cannot enter the top k, not even as a tie, so
/// skipping it never changes the result.
class TopKThreshold {
 public:
  explicit TopKThreshold(size_t k) : k_(k) {}
  void Push(double score) {
    if (heap_.size() < k_) {
      heap_.push(score);
    } else if (score > heap_.top()) {
      heap_.pop();
      heap_.push(score);
    }
  }
  bool full() const { return k_ > 0 && heap_.size() >= k_; }
  double value() const { return heap_.top(); }

 private:
  size_t k_;
  std::priority_queue<double, std::vector<double>, std::greater<double>> heap_;
};

void Bump(Counter* counter, double delta = 1.0) {
  if (counter != nullptr && delta != 0.0) counter->Increment(delta);
}

/// Picks the adjacent sealed pair with the fewest combined documents
/// (leftmost on ties). Deterministic tiered policy: small young segments
/// coalesce first, old big ones are rewritten rarely.
template <typename Seg>
size_t PickMergePair(const std::vector<std::shared_ptr<const Seg>>& sealed) {
  size_t best = 0;
  size_t best_docs = std::numeric_limits<size_t>::max();
  for (size_t i = 0; i + 1 < sealed.size(); ++i) {
    size_t docs = sealed[i]->doc_count() + sealed[i + 1]->doc_count();
    if (docs < best_docs) {
      best_docs = docs;
      best = i;
    }
  }
  return best;
}

/// Replaces the (still adjacent) pair `left`/`right` in `sealed` with
/// `merged`. Appends only happen at the tail and one merge runs at a time,
/// so the pair found by pointer identity is the pair that was planned.
template <typename Seg>
void SpliceMerged(std::vector<std::shared_ptr<const Seg>>* sealed,
                  const Seg* left, std::shared_ptr<const Seg> merged) {
  for (size_t i = 0; i + 1 < sealed->size(); ++i) {
    if ((*sealed)[i].get() == left) {
      (*sealed)[i] = std::move(merged);
      sealed->erase(sealed->begin() + static_cast<std::ptrdiff_t>(i) + 1);
      return;
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// SegmentedDocIndex
// ---------------------------------------------------------------------------

SegmentedDocIndex::SegmentedDocIndex(SegmentedIndexOptions options)
    : options_(options) {}

SegmentedDocIndex::~SegmentedDocIndex() { WaitForMerges(); }

void SegmentedDocIndex::WaitForMerges() const {
  std::unique_lock<std::mutex> lock(mu_);
  merge_cv_.wait(lock, [this] { return !merge_inflight_; });
}

void SegmentedDocIndex::Add(DocId doc,
                            const std::unordered_map<TermId, uint32_t>& tf,
                            size_t doc_len) {
  for (const auto& [term, unused] : tf) ++df_[term];
  memtable_.Add(doc, tf, doc_len);
  ++total_docs_;
  if (options_.seal_every > 0 && memtable_.doc_count() >= options_.seal_every) {
    SealMemtable();
  }
}

void SegmentedDocIndex::SealMemtable() {
  if (memtable_.empty() || options_.seal_every == 0) return;
  Span span(trace_, "index.seal");
  span.Annotate("index", "doc");
  span.Annotate("docs", static_cast<double>(memtable_.doc_count()));
  auto segment =
      DocSegment::Seal(std::move(memtable_), options_.block_postings);
  memtable_ = DocSegment::Builder();
  AppendSealed(std::move(segment));
}

void SegmentedDocIndex::AddSealedShards(
    std::vector<DocSegment::Builder> shards, ThreadPool* pool) {
  if (options_.seal_every == 0) {
    // Monolithic mode stays pure-memtable: splice the shards into the
    // memtable in shard order — indistinguishable from serial Adds.
    for (DocSegment::Builder& shard : shards) {
      uint32_t offset = static_cast<uint32_t>(memtable_.doc_count());
      for (auto& [term, pairs] : shard.postings) {
        auto& dst = memtable_.postings[term];
        dst.reserve(dst.size() + pairs.size());
        for (const auto& [ordinal, tf] : pairs) {
          dst.push_back({ordinal + offset, tf});
        }
        df_[term] += pairs.size();
      }
      memtable_.docs.insert(memtable_.docs.end(), shard.docs.begin(),
                            shard.docs.end());
      memtable_.lengths.insert(memtable_.lengths.end(), shard.lengths.begin(),
                               shard.lengths.end());
      total_docs_ += shard.doc_count();
    }
    return;
  }
  SealMemtable();  // Anything already buffered keeps its place in order.
  std::vector<std::shared_ptr<const DocSegment>> segments(shards.size());
  auto seal_one = [&](size_t i) {
    if (shards[i].empty()) return;
    segments[i] =
        DocSegment::Seal(std::move(shards[i]), options_.block_postings);
  };
  if (pool != nullptr) {
    pool->ParallelFor(shards.size(), seal_one);
  } else {
    for (size_t i = 0; i < shards.size(); ++i) seal_one(i);
  }
  for (auto& segment : segments) {
    if (segment == nullptr) continue;
    total_docs_ += segment->doc_count();
    for (const auto& [term, list] : segment->postings()) {
      df_[term] += list.count;
    }
    AppendSealed(std::move(segment));
  }
}

void SegmentedDocIndex::AppendSealed(
    std::shared_ptr<const DocSegment> segment) {
  std::unique_lock<std::mutex> lock(mu_);
  sealed_bytes_ += segment->postings_bytes();
  sealed_.push_back(std::move(segment));
  Bump(metrics_.seals);
  UpdateManifestGaugesLocked();
  StartMergesLocked(&lock);
}

void SegmentedDocIndex::StartMergesLocked(std::unique_lock<std::mutex>* lock) {
  while (!merge_inflight_ && sealed_.size() > options_.merge_trigger) {
    size_t i = PickMergePair(sealed_);
    auto left = sealed_[i];
    auto right = sealed_[i + 1];
    merge_inflight_ = true;
    if (options_.merge_pool != nullptr) {
      options_.merge_pool->Submit(
          [this, left, right] { RunMerge(left, right); });
      return;  // RunMerge chains the next merge itself.
    }
    lock->unlock();
    {
      Span span(trace_, "index.merge");
      span.Annotate("index", "doc");
      span.Annotate("docs",
                    static_cast<double>(left->doc_count() + right->doc_count()));
      RunMerge(left, right);
    }
    lock->lock();
  }
}

void SegmentedDocIndex::RunMerge(std::shared_ptr<const DocSegment> left,
                                 std::shared_ptr<const DocSegment> right) {
  auto start = std::chrono::steady_clock::now();
  auto merged = DocSegment::Merge(*left, *right, options_.block_postings);
  std::unique_lock<std::mutex> lock(mu_);
  sealed_bytes_ += merged->postings_bytes();
  sealed_bytes_ -= left->postings_bytes() + right->postings_bytes();
  SpliceMerged(&sealed_, left.get(), std::move(merged));
  Bump(metrics_.merges);
  if (metrics_.merge_latency != nullptr) {
    metrics_.merge_latency->Observe(MsSince(start));
  }
  UpdateManifestGaugesLocked();
  merge_inflight_ = false;
  if (options_.merge_pool != nullptr) StartMergesLocked(&lock);
  merge_cv_.notify_all();
}

void SegmentedDocIndex::UpdateManifestGaugesLocked() {
  if (metrics_.segments != nullptr) {
    metrics_.segments->Set(static_cast<double>(sealed_.size()));
  }
  if (metrics_.postings_bytes != nullptr) {
    metrics_.postings_bytes->Set(static_cast<double>(sealed_bytes_));
  }
}

size_t SegmentedDocIndex::DocFreq(TermId term) const {
  auto it = df_.find(term);
  return it == df_.end() ? 0 : it->second;
}

size_t SegmentedDocIndex::sealed_segment_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sealed_.size();
}

size_t SegmentedDocIndex::postings_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sealed_bytes_;
}

std::vector<DocHit> SegmentedDocIndex::SearchTopK(
    const std::vector<TermId>& ids, size_t k) const {
  // Snapshot the sealed manifest; segments are immutable, so the merge
  // swapping the manifest later cannot invalidate this reader's view. The
  // memtable is read directly — writers are externally excluded.
  std::vector<std::shared_ptr<const DocSegment>> sealed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sealed = sealed_;
  }
  const double n_docs = static_cast<double>(total_docs_);
  struct QueryTerm {
    TermId id;
    double idf;
  };
  std::vector<QueryTerm> query;
  query.reserve(ids.size());
  for (TermId id : ids) {
    auto it = df_.find(id);
    if (it == df_.end() || it->second == 0) continue;
    query.push_back(
        {id, std::log((n_docs + 1.0) / static_cast<double>(it->second))});
  }
  std::vector<DocHit> hits;
  if (query.empty()) return hits;
  TopKThreshold theta(k);

  // The memtable first: it is free to score (no decode) and warms the
  // pruning threshold before the sealed segments are visited.
  {
    struct Cursor {
      const std::vector<std::pair<uint32_t, uint32_t>>* pairs;
      size_t pos = 0;
      double idf;
    };
    std::vector<Cursor> cursors;
    for (const QueryTerm& t : query) {
      auto it = memtable_.postings.find(t.id);
      if (it == memtable_.postings.end()) continue;
      cursors.push_back({&it->second, 0, t.idf});
    }
    while (true) {
      uint32_t candidate = std::numeric_limits<uint32_t>::max();
      for (const Cursor& c : cursors) {
        if (c.pos < c.pairs->size()) {
          candidate = std::min(candidate, (*c.pairs)[c.pos].first);
        }
      }
      if (candidate == std::numeric_limits<uint32_t>::max()) break;
      uint32_t raw_len = memtable_.lengths[candidate];
      double len = raw_len == 0 ? 1.0 : static_cast<double>(raw_len);
      DocHit hit;
      hit.doc = memtable_.docs[candidate];
      // Contributions accumulate in query-term order — the same floating-
      // point summation order as the monolithic per-term loop.
      for (Cursor& c : cursors) {
        if (c.pos >= c.pairs->size() || (*c.pairs)[c.pos].first != candidate) {
          continue;
        }
        hit.score += (static_cast<double>((*c.pairs)[c.pos].second) /
                      std::sqrt(len)) *
                     c.idf;
        ++hit.matched_terms;
        ++c.pos;
      }
      theta.Push(hit.score);
      hits.push_back(hit);
    }
  }

  for (const auto& segment : sealed) {
    struct Cursor {
      PostingCursor cursor;
      double idf;
    };
    std::vector<Cursor> cursors;
    double segment_bound = 0.0;
    for (const QueryTerm& t : query) {
      const PostingList* list = segment->Find(t.id);
      if (list == nullptr) continue;
      segment_bound += t.idf * list->max_weight;
      cursors.push_back({PostingCursor(list), t.idf});
    }
    if (cursors.empty()) continue;
    // Whole-segment skip: no document in it can reach the k-th score.
    if (theta.full() && segment_bound < theta.value()) {
      Bump(metrics_.pruned_segments);
      continue;
    }
    while (true) {
      // Single-term lists support true block skips: a block whose best
      // posting cannot reach the threshold is stepped over undecoded.
      if (cursors.size() == 1 && theta.full()) {
        Cursor& c = cursors[0];
        while (!c.cursor.done() &&
               c.idf * c.cursor.block_max() < theta.value()) {
          Bump(metrics_.pruned_blocks);
          c.cursor.SkipBlock();
        }
      }
      uint32_t candidate = std::numeric_limits<uint32_t>::max();
      for (const Cursor& c : cursors) {
        if (!c.cursor.done()) {
          candidate = std::min(candidate, c.cursor.ordinal());
        }
      }
      if (candidate == std::numeric_limits<uint32_t>::max()) break;
      // Candidate-level block-max bound: the sum of the participating
      // cursors' current block maxima, in the same term order (and with
      // per-term weights no smaller than) the actual score — monotone
      // IEEE rounding makes the summed bound a true bound.
      double bound = 0.0;
      for (const Cursor& c : cursors) {
        if (!c.cursor.done() && c.cursor.ordinal() == candidate) {
          bound += c.idf * c.cursor.block_max();
        }
      }
      if (theta.full() && bound < theta.value()) {
        Bump(metrics_.pruned_candidates);
        for (Cursor& c : cursors) {
          if (!c.cursor.done() && c.cursor.ordinal() == candidate) {
            c.cursor.Next();
          }
        }
        continue;
      }
      uint32_t raw_len = segment->length(candidate);
      double len = raw_len == 0 ? 1.0 : static_cast<double>(raw_len);
      DocHit hit;
      hit.doc = segment->doc(candidate);
      for (Cursor& c : cursors) {
        if (c.cursor.done() || c.cursor.ordinal() != candidate) continue;
        hit.score += (static_cast<double>(c.cursor.payload()) /
                      std::sqrt(len)) *
                     c.idf;
        ++hit.matched_terms;
        c.cursor.Next();
      }
      theta.Push(hit.score);
      hits.push_back(hit);
    }
  }

  // Total order — segment layout and visit order cannot influence it.
  std::sort(hits.begin(), hits.end(), [](const DocHit& a, const DocHit& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.doc < b.doc;  // Deterministic tie-break.
  });
  if (hits.size() > k) hits.resize(k);
  return hits;
}

std::string SegmentedDocIndex::DebugString(const TermDictionary& dict) const {
  std::vector<std::shared_ptr<const DocSegment>> sealed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sealed = sealed_;
  }
  std::ostringstream out;
  std::vector<TermId> term_ids;
  term_ids.reserve(df_.size());
  for (const auto& [term, unused] : df_) term_ids.push_back(term);
  std::sort(term_ids.begin(), term_ids.end());
  for (TermId term : term_ids) {
    out << term << '=' << dict.Term(term) << ':';
    for (const auto& segment : sealed) {
      const PostingList* list = segment->Find(term);
      if (list == nullptr) continue;
      ForEachPosting(*list, [&](uint32_t ordinal, uint32_t tf) {
        out << ' ' << segment->doc(ordinal) << 'x' << tf;
      });
    }
    auto it = memtable_.postings.find(term);
    if (it != memtable_.postings.end()) {
      for (const auto& [ordinal, tf] : it->second) {
        out << ' ' << memtable_.docs[ordinal] << 'x' << tf;
      }
    }
    out << '\n';
  }
  std::vector<std::pair<DocId, uint32_t>> lengths;
  lengths.reserve(total_docs_);
  for (const auto& segment : sealed) {
    for (uint32_t ordinal = 0; ordinal < segment->doc_count(); ++ordinal) {
      lengths.push_back({segment->doc(ordinal), segment->length(ordinal)});
    }
  }
  for (size_t i = 0; i < memtable_.doc_count(); ++i) {
    lengths.push_back({memtable_.docs[i], memtable_.lengths[i]});
  }
  std::sort(lengths.begin(), lengths.end());
  for (const auto& [doc, len] : lengths) {
    out << "len " << doc << '=' << len << '\n';
  }
  return out.str();
}

void SegmentedDocIndex::set_metrics(MetricRegistry* metrics,
                                    const std::string& kind) {
  if (metrics == nullptr) {
    metrics_ = Instruments();
    return;
  }
  MetricLabels labels = {{"index", kind}};
  metrics_.seals = metrics->GetCounter(kMetricIndexSeals, labels,
                                       "Memtables sealed into segments");
  metrics_.merges =
      metrics->GetCounter(kMetricIndexMerges, labels, "Segment merges run");
  metrics_.merge_latency = metrics->GetHistogram(
      kMetricIndexMergeLatency, labels, MetricRegistry::LatencyBucketsMs(),
      "Wall time of segment merges");
  metrics_.segments = metrics->GetGauge(kMetricIndexSegments, labels,
                                        "Sealed segments in the manifest");
  metrics_.postings_bytes =
      metrics->GetGauge(kMetricIndexPostingsBytes, labels,
                        "Compressed postings bytes across sealed segments");
  metrics_.pruned_segments = metrics->GetCounter(
      kMetricIndexPrunedSegments, labels,
      "Whole segments skipped by the top-k score bound");
  metrics_.pruned_blocks = metrics->GetCounter(
      kMetricIndexPrunedBlocks, labels,
      "Posting blocks skipped undecoded by the block-max bound");
  metrics_.pruned_candidates = metrics->GetCounter(
      kMetricIndexPrunedCandidates, labels,
      "Candidate documents skipped unscored by the block-max bound");
}

// ---------------------------------------------------------------------------
// SegmentedPassageIndex
// ---------------------------------------------------------------------------

SegmentedPassageIndex::SegmentedPassageIndex(size_t window,
                                             SegmentedIndexOptions options)
    : window_(window < 1 ? 1 : window), options_(options) {}

SegmentedPassageIndex::~SegmentedPassageIndex() { WaitForMerges(); }

void SegmentedPassageIndex::WaitForMerges() const {
  std::unique_lock<std::mutex> lock(mu_);
  merge_cv_.wait(lock, [this] { return !merge_inflight_; });
}

void SegmentedPassageIndex::Add(
    DocId doc, std::vector<std::string> sentences,
    const std::vector<std::vector<TermId>>& sentence_terms) {
  std::set<TermId> in_doc;
  for (const auto& terms : sentence_terms) {
    for (TermId term : terms) in_doc.insert(term);
  }
  for (TermId term : in_doc) ++df_[term];
  memtable_.Add(doc, sentence_terms);
  sentences_[doc] = std::move(sentences);
  if (options_.seal_every > 0 && memtable_.doc_count() >= options_.seal_every) {
    SealMemtable();
  }
}

void SegmentedPassageIndex::SealMemtable() {
  if (memtable_.empty() || options_.seal_every == 0) return;
  Span span(trace_, "index.seal");
  span.Annotate("index", "passage");
  span.Annotate("docs", static_cast<double>(memtable_.doc_count()));
  auto segment =
      PassageSegment::Seal(std::move(memtable_), options_.block_postings);
  memtable_ = PassageSegment::Builder();
  AppendSealed(std::move(segment));
}

void SegmentedPassageIndex::AddSealedShards(
    std::vector<PassageSegment::Builder> shards,
    std::vector<std::pair<DocId, std::vector<std::string>>> sentences,
    ThreadPool* pool) {
  for (auto& [doc, sents] : sentences) {
    sentences_[doc] = std::move(sents);
  }
  if (options_.seal_every == 0) {
    // Monolithic mode stays pure-memtable (see SegmentedDocIndex).
    for (PassageSegment::Builder& shard : shards) {
      uint32_t offset = static_cast<uint32_t>(memtable_.doc_count());
      for (auto& [term, pairs] : shard.postings) {
        auto& dst = memtable_.postings[term];
        dst.reserve(dst.size() + pairs.size());
        size_t distinct = 0;
        for (size_t i = 0; i < pairs.size(); ++i) {
          if (i == 0 || pairs[i].first != pairs[i - 1].first) ++distinct;
          dst.push_back({pairs[i].first + offset, pairs[i].second});
        }
        df_[term] += distinct;
      }
      memtable_.docs.insert(memtable_.docs.end(), shard.docs.begin(),
                            shard.docs.end());
    }
    return;
  }
  SealMemtable();
  std::vector<std::shared_ptr<const PassageSegment>> segments(shards.size());
  auto seal_one = [&](size_t i) {
    if (shards[i].empty()) return;
    segments[i] =
        PassageSegment::Seal(std::move(shards[i]), options_.block_postings);
  };
  if (pool != nullptr) {
    pool->ParallelFor(shards.size(), seal_one);
  } else {
    for (size_t i = 0; i < shards.size(); ++i) seal_one(i);
  }
  for (auto& segment : segments) {
    if (segment == nullptr) continue;
    for (const auto& [term, info] : segment->terms()) {
      df_[term] += info.doc_freq;
    }
    AppendSealed(std::move(segment));
  }
}

void SegmentedPassageIndex::AppendSealed(
    std::shared_ptr<const PassageSegment> segment) {
  std::unique_lock<std::mutex> lock(mu_);
  sealed_bytes_ += segment->postings_bytes();
  sealed_.push_back(std::move(segment));
  Bump(metrics_.seals);
  UpdateManifestGaugesLocked();
  StartMergesLocked(&lock);
}

void SegmentedPassageIndex::StartMergesLocked(
    std::unique_lock<std::mutex>* lock) {
  while (!merge_inflight_ && sealed_.size() > options_.merge_trigger) {
    size_t i = PickMergePair(sealed_);
    auto left = sealed_[i];
    auto right = sealed_[i + 1];
    merge_inflight_ = true;
    if (options_.merge_pool != nullptr) {
      options_.merge_pool->Submit(
          [this, left, right] { RunMerge(left, right); });
      return;
    }
    lock->unlock();
    {
      Span span(trace_, "index.merge");
      span.Annotate("index", "passage");
      span.Annotate("docs",
                    static_cast<double>(left->doc_count() + right->doc_count()));
      RunMerge(left, right);
    }
    lock->lock();
  }
}

void SegmentedPassageIndex::RunMerge(
    std::shared_ptr<const PassageSegment> left,
    std::shared_ptr<const PassageSegment> right) {
  auto start = std::chrono::steady_clock::now();
  auto merged = PassageSegment::Merge(*left, *right, options_.block_postings);
  std::unique_lock<std::mutex> lock(mu_);
  sealed_bytes_ += merged->postings_bytes();
  sealed_bytes_ -= left->postings_bytes() + right->postings_bytes();
  SpliceMerged(&sealed_, left.get(), std::move(merged));
  Bump(metrics_.merges);
  if (metrics_.merge_latency != nullptr) {
    metrics_.merge_latency->Observe(MsSince(start));
  }
  UpdateManifestGaugesLocked();
  merge_inflight_ = false;
  if (options_.merge_pool != nullptr) StartMergesLocked(&lock);
  merge_cv_.notify_all();
}

void SegmentedPassageIndex::UpdateManifestGaugesLocked() {
  if (metrics_.segments != nullptr) {
    metrics_.segments->Set(static_cast<double>(sealed_.size()));
  }
  if (metrics_.postings_bytes != nullptr) {
    metrics_.postings_bytes->Set(static_cast<double>(sealed_bytes_));
  }
}

const std::vector<std::string>& SegmentedPassageIndex::Sentences(
    DocId doc) const {
  static const std::vector<std::string> kEmpty;
  auto it = sentences_.find(doc);
  return it == sentences_.end() ? kEmpty : it->second;
}

size_t SegmentedPassageIndex::DocFreq(TermId term) const {
  auto it = df_.find(term);
  return it == df_.end() ? 0 : it->second;
}

size_t SegmentedPassageIndex::sealed_segment_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sealed_.size();
}

size_t SegmentedPassageIndex::postings_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sealed_bytes_;
}

std::vector<Passage> SegmentedPassageIndex::SearchTopK(
    const std::vector<TermId>& ids, size_t k) const {
  std::vector<std::shared_ptr<const PassageSegment>> sealed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sealed = sealed_;
  }
  const double n_docs = static_cast<double>(sentences_.size());
  struct QueryTerm {
    TermId id;
    double idf;
  };
  std::vector<QueryTerm> query;
  for (TermId id : ids) {
    auto it = df_.find(id);
    if (it == df_.end() || it->second == 0) continue;
    query.push_back(
        {id, std::log((n_docs + 1.0) / static_cast<double>(it->second))});
  }
  if (query.empty()) return {};
  constexpr double kRepeatBonus = 0.05;

  TopKThreshold theta(k);
  std::vector<Passage> candidates;

  // One matched sentence of one candidate document: which query term, in
  // which sentence.
  struct Hit {
    uint32_t sentence;
    size_t term;
  };

  // Scores every window of one candidate document exactly like the
  // monolithic index, then greedily keeps the document's non-overlapping
  // best windows (score desc, start asc — the global selection order
  // restricted to this document), feeding them to the global candidate
  // pool and the pruning threshold.
  auto score_document = [&](DocId doc, const std::vector<Hit>& doc_hits) {
    std::vector<size_t> total_occurrences(query.size(), 0);
    std::set<uint32_t> starts;
    for (const Hit& h : doc_hits) {
      ++total_occurrences[h.term];
      starts.insert(h.sentence);
    }
    // A window's occurrence counts are bounded by the whole document's,
    // and the per-term score is monotone in the count — the document
    // bound is the window formula evaluated on the whole document.
    double doc_bound = 0.0;
    for (size_t t = 0; t < query.size(); ++t) {
      if (total_occurrences[t] == 0) continue;
      doc_bound += query[t].idf +
                   kRepeatBonus * query[t].idf *
                       static_cast<double>(total_occurrences[t] - 1);
    }
    if (theta.full() && doc_bound < theta.value()) {
      Bump(metrics_.pruned_candidates);
      Bump(metrics_.pruned_windows, static_cast<double>(starts.size()));
      return;
    }
    size_t n_sents = Sentences(doc).size();
    std::vector<Passage> windows;
    for (uint32_t first : starts) {
      size_t last = std::min(n_sents == 0 ? size_t(first) : n_sents - 1,
                             size_t(first) + window_ - 1);
      std::vector<size_t> occurrences(query.size(), 0);
      for (const Hit& h : doc_hits) {
        if (h.sentence >= first && h.sentence <= last) {
          ++occurrences[h.term];
        }
      }
      double score = 0.0;
      for (size_t t = 0; t < query.size(); ++t) {
        if (occurrences[t] == 0) continue;
        score += query[t].idf +
                 kRepeatBonus * query[t].idf *
                     static_cast<double>(occurrences[t] - 1);
      }
      Passage p;
      p.doc = doc;
      p.first_sentence = first;
      p.last_sentence = last;
      p.score = score;
      windows.push_back(p);
    }
    std::sort(windows.begin(), windows.end(),
              [](const Passage& a, const Passage& b) {
                if (a.score != b.score) return a.score > b.score;
                return a.first_sentence < b.first_sentence;
              });
    std::vector<const Passage*> selected;
    for (const Passage& w : windows) {
      bool overlaps = false;
      for (const Passage* sel : selected) {
        if (w.first_sentence <= sel->last_sentence &&
            sel->first_sentence <= w.last_sentence) {
          overlaps = true;
          break;
        }
      }
      if (overlaps) continue;
      selected.push_back(&w);
      theta.Push(w.score);
      candidates.push_back(w);
    }
  };

  // Candidate documents are grouped per source (each ordinal maps to one
  // global DocId, and a document lives in exactly one source), so pruning
  // decisions always see the document's full hit set.
  auto scan_source = [&](const auto& find_postings,
                         const std::vector<DocId>& docs) {
    std::vector<std::pair<uint32_t, Hit>> triples;
    for (size_t t = 0; t < query.size(); ++t) {
      find_postings(query[t].id, [&](uint32_t ordinal, uint32_t sentence) {
        triples.push_back({ordinal, {sentence, t}});
      });
    }
    if (triples.empty()) return;
    std::stable_sort(triples.begin(), triples.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    std::vector<Hit> doc_hits;
    for (size_t i = 0; i < triples.size();) {
      uint32_t ordinal = triples[i].first;
      doc_hits.clear();
      for (; i < triples.size() && triples[i].first == ordinal; ++i) {
        doc_hits.push_back(triples[i].second);
      }
      score_document(docs[ordinal], doc_hits);
    }
  };

  // Memtable first (cheapest threshold warm-up), sealed segments after.
  scan_source(
      [&](TermId id, const std::function<void(uint32_t, uint32_t)>& fn) {
        auto it = memtable_.postings.find(id);
        if (it == memtable_.postings.end()) return;
        for (const auto& [ordinal, sentence] : it->second) {
          fn(ordinal, sentence);
        }
      },
      memtable_.docs);
  for (const auto& segment : sealed) {
    // Segment-level bound: every window score in the segment is bounded
    // by the sum of the per-term (idf + repeat bonus at the per-document
    // max occurrence count) bounds.
    double segment_bound = 0.0;
    bool any = false;
    for (const QueryTerm& t : query) {
      const PassageSegment::TermInfo* info = segment->Find(t.id);
      if (info == nullptr) continue;
      any = true;
      segment_bound +=
          t.idf + kRepeatBonus * t.idf *
                      static_cast<double>(info->max_occurrences - 1);
    }
    if (!any) continue;
    if (theta.full() && segment_bound < theta.value()) {
      Bump(metrics_.pruned_segments);
      continue;
    }
    std::vector<DocId> docs(segment->doc_count());
    for (uint32_t ordinal = 0; ordinal < segment->doc_count(); ++ordinal) {
      docs[ordinal] = segment->doc(ordinal);
    }
    scan_source(
        [&](TermId id, const std::function<void(uint32_t, uint32_t)>& fn) {
          const PassageSegment::TermInfo* info = segment->Find(id);
          if (info == nullptr) return;
          ForEachPosting(info->list, fn);
        },
        docs);
  }

  // Global rank over every selected window — a total order, so the
  // per-source visit order above cannot leak into the result.
  std::sort(candidates.begin(), candidates.end(),
            [](const Passage& a, const Passage& b) {
              if (a.score != b.score) return a.score > b.score;
              if (a.doc != b.doc) return a.doc < b.doc;
              return a.first_sentence < b.first_sentence;
            });
  if (candidates.size() > k) candidates.resize(k);
  for (Passage& p : candidates) {
    const std::vector<std::string>& sents = Sentences(p.doc);
    std::string text;
    for (size_t s = p.first_sentence; s <= p.last_sentence && s < sents.size();
         ++s) {
      if (!text.empty()) text += '\n';
      text += sents[s];
    }
    p.text = std::move(text);
  }
  return candidates;
}

std::string SegmentedPassageIndex::DebugString(
    const TermDictionary& dict) const {
  std::vector<std::shared_ptr<const PassageSegment>> sealed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sealed = sealed_;
  }
  std::ostringstream out;
  std::vector<TermId> term_ids;
  term_ids.reserve(df_.size());
  for (const auto& [term, unused] : df_) term_ids.push_back(term);
  std::sort(term_ids.begin(), term_ids.end());
  for (TermId term : term_ids) {
    out << term << '=' << dict.Term(term) << ':';
    for (const auto& segment : sealed) {
      const PassageSegment::TermInfo* info = segment->Find(term);
      if (info == nullptr) continue;
      ForEachPosting(info->list, [&](uint32_t ordinal, uint32_t sentence) {
        out << ' ' << segment->doc(ordinal) << '.' << sentence;
      });
    }
    auto it = memtable_.postings.find(term);
    if (it != memtable_.postings.end()) {
      for (const auto& [ordinal, sentence] : it->second) {
        out << ' ' << memtable_.docs[ordinal] << '.' << sentence;
      }
    }
    out << '\n';
  }
  std::vector<DocId> docs;
  docs.reserve(sentences_.size());
  for (const auto& [doc, unused] : sentences_) docs.push_back(doc);
  std::sort(docs.begin(), docs.end());
  for (DocId doc : docs) {
    out << "sentences " << doc << '=' << sentences_.at(doc).size() << '\n';
  }
  return out.str();
}

void SegmentedPassageIndex::set_metrics(MetricRegistry* metrics,
                                        const std::string& kind) {
  if (metrics == nullptr) {
    metrics_ = Instruments();
    return;
  }
  MetricLabels labels = {{"index", kind}};
  metrics_.seals = metrics->GetCounter(kMetricIndexSeals, labels,
                                       "Memtables sealed into segments");
  metrics_.merges =
      metrics->GetCounter(kMetricIndexMerges, labels, "Segment merges run");
  metrics_.merge_latency = metrics->GetHistogram(
      kMetricIndexMergeLatency, labels, MetricRegistry::LatencyBucketsMs(),
      "Wall time of segment merges");
  metrics_.segments = metrics->GetGauge(kMetricIndexSegments, labels,
                                        "Sealed segments in the manifest");
  metrics_.postings_bytes =
      metrics->GetGauge(kMetricIndexPostingsBytes, labels,
                        "Compressed postings bytes across sealed segments");
  metrics_.pruned_segments = metrics->GetCounter(
      kMetricIndexPrunedSegments, labels,
      "Whole segments skipped by the top-k score bound");
  metrics_.pruned_candidates = metrics->GetCounter(
      kMetricIndexPrunedCandidates, labels,
      "Candidate documents skipped unscored by the score bound");
  metrics_.pruned_windows = metrics->GetCounter(
      kMetricIndexPrunedWindows, labels,
      "Candidate sentence windows skipped unscored by the score bound");
}

}  // namespace ir
}  // namespace dwqa
