#ifndef DWQA_QA_STRUCTURED_H_
#define DWQA_QA_STRUCTURED_H_

#include <optional>
#include <string>
#include <vector>

#include "common/date.h"
#include "common/result.h"
#include "qa/answer.h"

namespace dwqa {
namespace qa {

/// \brief What the Step-5 feed ultimately did with a reported fact. Every
/// extracted fact gets exactly one disposition, so
/// `FeedReport::facts` is a complete audit trail, not just the loaded rows.
enum class FactDisposition {
  /// Reached the warehouse as a new row.
  kLoaded = 0,
  /// A duplicate of an already-fed row; dropped before the ETL boundary.
  kDeduplicated,
  /// Refused admission (validator axiom, confidence floor, open circuit)
  /// and parked in the QuarantineStore.
  kQuarantined,
  /// Admitted to the ETL boundary but the load ultimately failed
  /// (retry budget exhausted or ETL reject); also quarantined.
  kRejected,
};

/// "Loaded", "Deduplicated", "Quarantined", "Rejected".
const char* FactDispositionName(FactDisposition disposition);

/// \brief The structured tuple Step 5 feeds into the DW: the paper's
/// "(temperature – date – city – web page)" database row. The web page URL
/// is always stored "in order to make the approach robust against errors ...
/// the user can select the more useful data" (§4.2).
struct StructuredFact {
  /// The analyzed attribute ("temperature", "price").
  std::string attribute;
  double value = 0.0;
  std::string unit;
  std::optional<Date> date;
  std::string location;
  std::string url;
  /// Extraction score of the answer the fact came from.
  double confidence = 0.0;
  /// Ladder rung of the answer the fact came from (qa/degradation.h).
  DegradationLevel level = DegradationLevel::kFull;
  /// What the feed did with the fact (set by the Step-5 loop).
  FactDisposition disposition = FactDisposition::kLoaded;

  /// "(8ºC – Monday, January 31, 2004 – Barcelona – URL)".
  std::string ToDisplayString() const;
};

/// Converts a ranked answer into a structured fact. Fails when the answer
/// carries no numeric value (nothing to feed the measure column with).
Result<StructuredFact> ToStructuredFact(const AnswerCandidate& answer,
                                        const std::string& attribute);

/// Converts every convertible answer of a set, preserving rank order.
std::vector<StructuredFact> ToStructuredFacts(const AnswerSet& answers,
                                              const std::string& attribute);

/// Renders facts as CSV (attribute,value,unit,date,location,url,
/// confidence,level,disposition) — the interchange form of the Step-5
/// database.
std::string StructuredFactsToCsv(const std::vector<StructuredFact>& facts);

}  // namespace qa
}  // namespace dwqa

#endif  // DWQA_QA_STRUCTURED_H_
