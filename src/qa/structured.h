#ifndef DWQA_QA_STRUCTURED_H_
#define DWQA_QA_STRUCTURED_H_

#include <optional>
#include <string>
#include <vector>

#include "common/date.h"
#include "common/result.h"
#include "qa/answer.h"

namespace dwqa {
namespace qa {

/// \brief The structured tuple Step 5 feeds into the DW: the paper's
/// "(temperature – date – city – web page)" database row. The web page URL
/// is always stored "in order to make the approach robust against errors ...
/// the user can select the more useful data" (§4.2).
struct StructuredFact {
  /// The analyzed attribute ("temperature", "price").
  std::string attribute;
  double value = 0.0;
  std::string unit;
  std::optional<Date> date;
  std::string location;
  std::string url;
  /// Extraction score of the answer the fact came from.
  double confidence = 0.0;

  /// "(8ºC – Monday, January 31, 2004 – Barcelona – URL)".
  std::string ToDisplayString() const;
};

/// Converts a ranked answer into a structured fact. Fails when the answer
/// carries no numeric value (nothing to feed the measure column with).
Result<StructuredFact> ToStructuredFact(const AnswerCandidate& answer,
                                        const std::string& attribute);

/// Converts every convertible answer of a set, preserving rank order.
std::vector<StructuredFact> ToStructuredFacts(const AnswerSet& answers,
                                              const std::string& attribute);

/// Renders facts as CSV (attribute,value,unit,date,location,url,
/// confidence) — the interchange form of the Step-5 database.
std::string StructuredFactsToCsv(const std::vector<StructuredFact>& facts);

}  // namespace qa
}  // namespace dwqa

#endif  // DWQA_QA_STRUCTURED_H_
