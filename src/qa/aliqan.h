#ifndef DWQA_QA_ALIQAN_H_
#define DWQA_QA_ALIQAN_H_

#include <functional>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/result.h"
#include "ir/document.h"
#include "ir/inverted_index.h"
#include "ir/passage_index.h"
#include "ontology/ontology.h"
#include "qa/answer.h"
#include "qa/degradation.h"
#include "qa/question.h"

namespace dwqa {
namespace qa {

/// \brief Configuration of an AliQAn instance.
struct AliQAnConfig {
  /// Sentences per IR-n passage (the paper's footnote 6 reports eight).
  size_t passage_window = 8;
  /// Passages handed to the extraction module per question.
  size_t passages_to_analyze = 5;
  /// When false, Module 2 is bypassed and the extraction module analyzes
  /// every sentence of every document — the ablation quantifying the
  /// paper's "IR as first filtering phase" claim (§1).
  bool use_ir_filter = true;
  /// Candidates kept per question.
  size_t max_answers = 5;
  /// Answer ladder (qa/degradation.h). Both rungs default off.
  DegradationConfig degradation;
};

/// \brief Wall-clock of the last Ask()/IndexCorpus() call, by phase — used
/// by bench_fig3_aliqan_phases.
struct PhaseTimings {
  double indexation_ms = 0.0;
  double analysis_ms = 0.0;
  double retrieval_ms = 0.0;
  double extraction_ms = 0.0;
  size_t sentences_analyzed = 0;
};

/// \brief The QA system: a reimplementation of AliQAn's architecture
/// (paper Figure 3).
///
/// Indexation phase (off-line): documents are normalized to plain text (a
/// pluggable preprocessor handles HTML/XML; the integration layer plugs the
/// table-aware preprocessor here) and indexed twice — the IR-n passage index
/// for filtering and a document-level index for the IR baseline comparisons.
///
/// Search phase: (1) question analysis, (2) selection of relevant passages,
/// (3) extraction of the answer.
class AliQAn {
 public:
  /// Normalizes a raw document to the plain text to index.
  using Preprocessor = std::function<std::string(const ir::Document&)>;

  explicit AliQAn(const ontology::Ontology* onto, AliQAnConfig config = {});

  /// Replaces the default preprocessor (tag stripping for HTML/XML).
  void set_preprocessor(Preprocessor preprocessor);

  /// Installs a shared cost budget (owned by the caller, may be null).
  /// Ask() charges it per phase and per passage analyzed; once exhausted,
  /// extraction degrades to what was already retrieved instead of running
  /// to completion.
  void set_deadline(Deadline* deadline) { deadline_ = deadline; }

  const AliQAnConfig& config() const { return config_; }

  /// Off-line indexation phase. `docs` must outlive this object.
  Status IndexCorpus(const ir::DocumentStore* docs);

  /// Module 1: question analysis.
  Result<QuestionAnalysis> AnalyzeQuestion(const std::string& question) const;

  /// Module 2: selection of relevant passages for an analyzed question.
  Result<std::vector<ir::Passage>> SelectPassages(
      const QuestionAnalysis& analysis) const;

  /// Full search phase: modules 1–3.
  Result<AnswerSet> Ask(const std::string& question);

  /// The document-level index (the IR baseline of bench_ir_vs_qa).
  const ir::InvertedIndex& document_index() const { return doc_index_; }
  const ir::PassageIndex& passage_index() const { return passage_index_; }

  /// Plain text of an indexed document.
  Result<std::string> PlainText(ir::DocId doc) const;

  const PhaseTimings& last_timings() const { return timings_; }

 private:
  const ontology::Ontology* onto_;
  AliQAnConfig config_;
  Preprocessor preprocessor_;
  const ir::DocumentStore* docs_ = nullptr;
  Deadline* deadline_ = nullptr;
  std::vector<std::string> plain_;
  ir::PassageIndex passage_index_;
  ir::InvertedIndex doc_index_;
  PhaseTimings timings_;
};

}  // namespace qa
}  // namespace dwqa

#endif  // DWQA_QA_ALIQAN_H_
