#ifndef DWQA_QA_ALIQAN_H_
#define DWQA_QA_ALIQAN_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/metrics.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "ir/document.h"
#include "ir/inverted_index.h"
#include "ir/passage_index.h"
#include "ir/segmented_index.h"
#include "ontology/ontology.h"
#include "qa/answer.h"
#include "qa/degradation.h"
#include "qa/question.h"
#include "text/analyzed_corpus.h"

namespace dwqa {
namespace qa {

/// \brief Configuration of an AliQAn instance.
struct AliQAnConfig {
  /// Sentences per IR-n passage (the paper's footnote 6 reports eight).
  size_t passage_window = 8;
  /// Passages handed to the extraction module per question.
  size_t passages_to_analyze = 5;
  /// When false, Module 2 is bypassed and the extraction module analyzes
  /// every sentence of every document — the ablation quantifying the
  /// paper's "IR as first filtering phase" claim (§1).
  bool use_ir_filter = true;
  /// Candidates kept per question.
  size_t max_answers = 5;
  /// Answer ladder (qa/degradation.h). Both rungs default off.
  DegradationConfig degradation;
  /// Ablation flag: when true, IndexCorpus skips the AnalyzedCorpus build
  /// and the search phase re-tokenizes/tags/chunks every passage sentence
  /// per question — the pre-refactor behaviour. The golden-equivalence
  /// suite asserts both modes answer byte-identically;
  /// bench_fig3_aliqan_phases reports the cached-path speedup.
  bool reanalyze_per_question = false;
  /// Worker threads for the off-line indexation phase. 1 (the default) is
  /// the serial path; N > 1 analyzes documents concurrently and merges
  /// deterministically (AnalyzedCorpus::AddBatch), producing byte-identical
  /// dictionaries and postings. Ignored — with a log line — when a finite
  /// deadline budget is installed (mid-indexation exhaustion is inherently
  /// order-dependent) or under the reanalyze_per_question ablation.
  size_t threads = 1;
  /// Segment policy for both indexes (ir/segmented_index.h): memtable seal
  /// threshold, merge trigger, posting-block size. `merge_pool` is ignored
  /// here — set index_merge_threads instead and AliQAn owns the pool.
  ir::SegmentedIndexOptions index_options;
  /// Background threads for segment merges. 0 (the default) merges inline
  /// on the writer thread; N > 0 runs merges on an AliQAn-owned pool so
  /// ingest returns before compaction finishes. Either way searches stay
  /// byte-identical — merge timing never changes results.
  size_t index_merge_threads = 0;
};

/// \brief Wall-clock of the last Ask()/IndexCorpus() call, by phase — used
/// by bench_fig3_aliqan_phases.
///
/// Reset contract (tested by aliqan_test): IndexCorpus() zeroes
/// `indexation_ms` and `indexation_sentences` on entry; Ask() zeroes the
/// search-phase fields (`analysis_ms`, `retrieval_ms`, `extraction_ms`,
/// `sentences_analyzed`, `sentences_analyzed_cached`) on entry. Each field
/// therefore always describes the *last* call of its phase, never an
/// accumulation or a stale previous question.
struct PhaseTimings {
  double indexation_ms = 0.0;
  double analysis_ms = 0.0;
  double retrieval_ms = 0.0;
  double extraction_ms = 0.0;
  /// Sentences the extraction module processed for the last Ask().
  size_t sentences_analyzed = 0;
  /// Of those, how many were served from the AnalyzedCorpus cache instead
  /// of being re-analyzed — the bench's cache hit rate. Equal to
  /// sentences_analyzed on the cached path, 0 under reanalyze_per_question.
  size_t sentences_analyzed_cached = 0;
  /// Sentences analyzed (tokenize/tag/lemmatize/chunk/dates) by the last
  /// IndexCorpus() — the one-time off-line cost the paper's Figure 3 puts
  /// in the indexation phase.
  size_t indexation_sentences = 0;
};

/// \brief The QA system: a reimplementation of AliQAn's architecture
/// (paper Figure 3).
///
/// Indexation phase (off-line): documents are normalized to plain text (a
/// pluggable preprocessor handles HTML/XML; the integration layer plugs the
/// table-aware preprocessor here), linguistically analyzed exactly once
/// into the AnalyzedCorpus (sentence split, POS tags, lemmas, Syntactic
/// Blocks, date mentions, interned term ids), and indexed twice from that
/// analysis — the IR-n passage index for filtering and a document-level
/// index for the IR baseline comparisons. Indexation is deliberately the
/// expensive phase, exactly the paper's off-line/on-line split.
///
/// Search phase: (1) question analysis, (2) selection of relevant passages,
/// (3) extraction of the answer — pattern matching over the cached
/// analyses, no re-tokenization.
class AliQAn {
 public:
  /// Normalizes a raw document to the plain text to index.
  using Preprocessor = std::function<std::string(const ir::Document&)>;

  explicit AliQAn(const ontology::Ontology* onto, AliQAnConfig config = {});

  /// Replaces the default preprocessor (tag stripping for HTML/XML).
  void set_preprocessor(Preprocessor preprocessor);

  /// Installs a shared cost budget (owned by the caller, may be null).
  /// IndexCorpus() charges one unit per analyzed sentence (the linguistic
  /// work now lives there); Ask() charges per phase and per passage whose
  /// cached analyses are pattern-matched. Once exhausted, extraction
  /// degrades to what was already retrieved instead of running to
  /// completion.
  void set_deadline(Deadline* deadline) { deadline_ = deadline; }

  /// Attaches a metrics registry (owned by the caller, may be null). Ask
  /// records per-question counters and phase latencies into the `dwqa_qa_*`
  /// families; the registry is also propagated to both indexes (including
  /// the fresh ones IndexCorpus builds), so retrieval feeds the
  /// `dwqa_ir_*` families. Recording is lock-free, so speculative AskWith
  /// workers may run concurrently against the same registry.
  void set_metrics(MetricRegistry* metrics);

  const AliQAnConfig& config() const { return config_; }

  /// Off-line indexation phase. `docs` must outlive this object.
  Status IndexCorpus(const ir::DocumentStore* docs);

  /// Incremental ingest: indexes every document appended to the store
  /// since the last IndexCorpus()/IngestNewDocuments() call — an append
  /// into both segmented indexes, never a rebuild, so the cost is
  /// proportional to the new documents and independent of corpus size.
  /// New documents are searchable on return. Returns the number ingested.
  Result<size_t> IngestNewDocuments();

  /// Module 1: question analysis.
  Result<QuestionAnalysis> AnalyzeQuestion(const std::string& question) const;

  /// Module 2: selection of relevant passages for an analyzed question.
  Result<std::vector<ir::Passage>> SelectPassages(
      const QuestionAnalysis& analysis) const;

  /// Full search phase: modules 1–3. When `trace` is non-null the call
  /// contributes a `qa.ask` span tree (analysis → retrieval → extraction,
  /// plus ladder rungs) to it.
  Result<AnswerSet> Ask(const std::string& question,
                        TraceRecorder* trace = nullptr);

  /// The same search phase against caller-supplied timing and deadline
  /// sinks, leaving the instance untouched. This is the speculation
  /// primitive behind Pipeline's batched Step-5: workers run AskWith
  /// against private unlimited Deadline ledgers concurrently (safe — the
  /// index is quiescent and this method only reads it), and the serial
  /// merge point later absorbs each ledger into the shared deadline.
  /// `timings`, `deadline` and `trace` may all be null; speculative
  /// workers must pass a null `trace` (TraceRecorder parents spans off a
  /// single serial stack).
  Result<AnswerSet> AskWith(const std::string& question,
                            PhaseTimings* timings, Deadline* deadline,
                            TraceRecorder* trace = nullptr) const;

  /// The document-level index (the IR baseline of bench_ir_vs_qa).
  const ir::InvertedIndex& document_index() const { return doc_index_; }
  const ir::PassageIndex& passage_index() const { return passage_index_; }

  /// The analyze-once corpus built by IndexCorpus (empty under the
  /// reanalyze_per_question ablation). Consumers wanting the same term ids
  /// — e.g. integration::MultidimIr — attach to this object.
  const text::AnalyzedCorpus& corpus() const { return corpus_; }
  text::AnalyzedCorpus* mutable_corpus() { return &corpus_; }

  /// Plain text of an indexed document.
  Result<std::string> PlainText(ir::DocId doc) const;

  const PhaseTimings& last_timings() const { return timings_; }

 private:
  /// config_.index_options with the owned merge pool injected.
  ir::SegmentedIndexOptions EffectiveIndexOptions() const;

  const ontology::Ontology* onto_;
  AliQAnConfig config_;
  Preprocessor preprocessor_;
  const ir::DocumentStore* docs_ = nullptr;
  Deadline* deadline_ = nullptr;
  MetricRegistry* metrics_ = nullptr;
  /// Background merge pool (null when index_merge_threads == 0). Declared
  /// before the indexes that submit work to it: index destructors wait for
  /// in-flight merges, so the pool must be destroyed after them.
  std::unique_ptr<ThreadPool> merge_pool_;
  /// Owns the shared TermDictionary; declared before the indexes that
  /// borrow its pointer so destruction order stays safe.
  text::AnalyzedCorpus corpus_;
  /// Raw plain text per doc — only populated under reanalyze_per_question
  /// (the corpus stores plain text on the cached path).
  std::vector<std::string> plain_;
  ir::PassageIndex passage_index_;
  ir::InvertedIndex doc_index_;
  PhaseTimings timings_;
  /// Documents of docs_ already indexed — the IngestNewDocuments cursor.
  size_t indexed_docs_ = 0;
};

}  // namespace qa
}  // namespace dwqa

#endif  // DWQA_QA_ALIQAN_H_
