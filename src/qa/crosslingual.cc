#include "qa/crosslingual.h"

#include <cctype>
#include <vector>

#include "common/string_util.h"

namespace dwqa {
namespace qa {

namespace {

/// One phrase-table entry; `es` is stored normalized (lowercase, no
/// accents) and whole-word matched.
struct PhraseEntry {
  const char* es;
  const char* en;
};

/// Ordered longest-phrase-first table. Interrogative constructions come
/// before their sub-phrases so "cuanto cuesta" wins over "cuanto".
const std::vector<PhraseEntry>& PhraseTable() {
  static const auto* kTable = new std::vector<PhraseEntry>{
      // Interrogative constructions.
      {"que tiempo hace en", "what is the weather like in"},
      {"cual es la temperatura", "what is the temperature"},
      {"cual es el precio", "what is the price"},
      {"cual es la capital", "what is the capital"},
      {"cual es", "what is"},
      {"cuanto cuesta", "how much does it cost"},
      {"cuantos anos tenia", "how old was"},
      {"cuantos anos tiene", "how old is"},
      {"cuantos", "how many"},
      {"cuantas", "how many"},
      {"cuanto dura", "how long takes"},
      {"que pais invadio", "which country did invade"},
      {"en que ciudad", "in which city"},
      {"en que ano", "in what year"},
      {"que significa", "what does stand for"},
      {"quien fue", "who was"},
      {"quien es", "who is"},
      {"donde esta", "where is"},
      {"donde", "where"},
      {"cuando", "when"},
      {"que", "what"},
      // Function words.
      {"de la", "of the"},
      {"del", "of the"},
      {"de", "of"},
      {"en", "in"},
      {"el", "the"},
      {"la", "the"},
      {"los", "the"},
      {"las", "the"},
      {"un", "a"},
      {"una", "a"},
      {"y", "and"},
      {"a", "to"},
      {"es", "is"},
      {"son", "are"},
      {"fue", "was"},
      // Months.
      {"enero", "January"},
      {"febrero", "February"},
      {"marzo", "March"},
      {"abril", "April"},
      {"mayo", "May"},
      {"junio", "June"},
      {"julio", "July"},
      {"agosto", "August"},
      {"septiembre", "September"},
      {"octubre", "October"},
      {"noviembre", "November"},
      {"diciembre", "December"},
      // Domain vocabulary.
      {"temperatura", "temperature"},
      {"tiempo", "weather"},
      {"precio", "price"},
      {"billete", "ticket"},
      {"billetes", "tickets"},
      {"vuelo", "flight"},
      {"vuelos", "flights"},
      {"aeropuerto", "airport"},
      {"ciudad", "city"},
      {"pais", "country"},
      {"capital", "capital"},
      {"ventas", "sales"},
      {"ultima hora", "last minute"},
      {"presidente", "president"},
      {"grupo", "group"},
      {"mes", "month"},
      {"ano", "year"},
      {"dia", "day"},
      {"hora", "hour"},
      {"horas", "hours"},
      {"estados unidos", "United States"},
      {"espana", "Spain"},
      {"francia", "France"},
      {"londres", "London"},
      {"nueva york", "New York"},
  };
  return *kTable;
}

bool IsSpaceOrPunct(char c) {
  unsigned char u = static_cast<unsigned char>(c);
  return std::isspace(u) || c == ',' || c == '?' || c == '!' || c == '.';
}

}  // namespace

std::string SpanishTranslator::Normalize(const std::string& text) {
  // Strip inverted punctuation (UTF-8 ¿ = C2 BF, ¡ = C2 A1) and fold the
  // accented vowels / ñ to ASCII, then lowercase.
  std::string out;
  for (size_t i = 0; i < text.size(); ++i) {
    unsigned char c = static_cast<unsigned char>(text[i]);
    if (c == 0xC2 && i + 1 < text.size()) {
      unsigned char n = static_cast<unsigned char>(text[i + 1]);
      if (n == 0xBF || n == 0xA1) {
        ++i;
        continue;  // ¿ ¡ dropped.
      }
    }
    if (c == 0xC3 && i + 1 < text.size()) {
      unsigned char n = static_cast<unsigned char>(text[i + 1]);
      ++i;
      switch (n) {
        case 0xA1:
        case 0x81:
          out += 'a';
          continue;  // á Á
        case 0xA9:
        case 0x89:
          out += 'e';
          continue;  // é É
        case 0xAD:
        case 0x8D:
          out += 'i';
          continue;  // í Í
        case 0xB3:
        case 0x93:
          out += 'o';
          continue;  // ó Ó
        case 0xBA:
        case 0x9A:
          out += 'u';
          continue;  // ú Ú
        case 0xB1:
        case 0x91:
          out += 'n';
          continue;  // ñ Ñ
        default:
          --i;  // Not a Spanish letter; fall through byte by byte.
          break;
      }
    }
    out += static_cast<char>(std::tolower(c));
  }
  return out;
}

Translation SpanishTranslator::Translate(const std::string& question) {
  // Tokenize the ORIGINAL (for casing/pass-through) and the normalized
  // form (for lookup) in parallel: split on whitespace/punctuation.
  struct Word {
    std::string original;
    std::string norm;
  };
  std::vector<Word> words;
  {
    std::vector<std::string> orig_parts;
    std::string tmp;
    for (char c : question) {
      if (IsSpaceOrPunct(c)) {
        if (!tmp.empty()) orig_parts.push_back(tmp);
        tmp.clear();
      } else {
        tmp += c;
      }
    }
    if (!tmp.empty()) orig_parts.push_back(tmp);
    for (std::string& part : orig_parts) {
      Word w;
      w.norm = Normalize(part);
      w.original = std::move(part);
      // Words that normalize away entirely (bare ¿/¡ tokens) are dropped.
      if (!w.norm.empty()) words.push_back(std::move(w));
    }
  }

  Translation result;
  std::vector<std::string> out;
  size_t covered = 0;
  size_t i = 0;
  // Tries the phrase table at position i; entries shorter than min_words
  // are skipped; with names_only, only name-to-name mappings (capitalized
  // English side: España→Spain, enero→January) are considered. Returns how
  // many source words were consumed (0 = miss).
  auto try_table = [&](size_t at, size_t min_words,
                       bool names_only = false) -> size_t {
    for (const PhraseEntry& entry : PhraseTable()) {
      if (names_only &&
          !std::isupper(static_cast<unsigned char>(entry.en[0]))) {
        continue;
      }
      std::vector<std::string> es_words = SplitWhitespace(entry.es);
      if (es_words.size() < min_words ||
          es_words.size() > words.size() - at) {
        continue;
      }
      bool all = true;
      for (size_t k = 0; k < es_words.size(); ++k) {
        if (words[at + k].norm != es_words[k]) {
          all = false;
          break;
        }
      }
      if (!all) continue;
      if (entry.en[0] != '\0') out.push_back(entry.en);
      return es_words.size();
    }
    return 0;
  };

  while (i < words.size()) {
    // 1. Multiword phrases win outright ("nueva york" → "New York").
    if (size_t n = try_table(i, 2); n > 0) {
      covered += n;
      i += n;
      continue;
    }
    // 2. Known name-to-name mappings beat pass-through (España → Spain).
    if (size_t n = try_table(i, 1, /*names_only=*/true); n > 0) {
      covered += n;
      i += n;
      continue;
    }
    // 3. A capitalized word mid-question is a proper noun and passes
    // through before single-word entries ("El Prat" keeps its article;
    // the question-initial capital is not a name).
    const Word& w = words[i];
    if ((i > 0 && IsCapitalized(w.original)) || IsNumber(w.norm)) {
      out.push_back(w.original);
      ++covered;
      ++i;
      continue;
    }
    // 3. Single-word table entries.
    if (size_t n = try_table(i, 1); n > 0) {
      covered += n;
      i += n;
      continue;
    }
    // 4. Unknown: kept verbatim, reported.
    out.push_back(w.original);
    result.unknown_words.push_back(w.original);
    ++i;
  }
  result.english = Join(out, " ") + "?";
  // Capitalize the first letter for the tagger.
  if (!result.english.empty() &&
      std::islower(static_cast<unsigned char>(result.english[0]))) {
    result.english[0] = static_cast<char>(
        std::toupper(static_cast<unsigned char>(result.english[0])));
  }
  result.coverage = words.empty()
                        ? 0.0
                        : static_cast<double>(covered) /
                              static_cast<double>(words.size());
  return result;
}

Result<AnswerSet> CrossLingualAliQAn::Ask(const std::string& question,
                                          double min_coverage) {
  last_ = SpanishTranslator::Translate(question);
  if (last_.coverage < min_coverage) {
    std::string unknown = Join(last_.unknown_words, ", ");
    return Status::InvalidArgument(
        "translation coverage " + FormatDouble(last_.coverage, 2) +
        " below threshold; unknown words: " + unknown);
  }
  return aliqan_->Ask(last_.english);
}

}  // namespace qa
}  // namespace dwqa
