#include "qa/question_analyzer.h"

#include <algorithm>
#include <functional>

#include "common/string_util.h"
#include "ontology/wsd.h"
#include "text/entities.h"
#include "text/pos_tagger.h"
#include "text/tokenizer.h"

namespace dwqa {
namespace qa {

using text::SyntacticBlock;

namespace {

bool IsWhTag(const std::string& tag) {
  return tag == "WP" || tag == "WDT" || tag == "WRB" || tag == "WP$";
}

bool IsAuxiliaryOnly(const SyntacticBlock& vbc) {
  for (const text::Token& t : vbc.tokens) {
    if (t.lemma != "be" && t.lemma != "do" && t.lemma != "have" &&
        t.tag != "MD" && t.tag != "TO" && t.tag != "RB") {
      return false;
    }
  }
  return true;
}

}  // namespace

bool QuestionAnalyzer::LemmaUnder(const std::string& lemma,
                                  const std::string& target) const {
  if (lemma == target) return true;
  auto tgt = onto_->FindClass(target);
  if (!tgt.ok()) return false;
  for (ontology::ConceptId id : onto_->Find(ToLower(lemma))) {
    if (onto_->IsA(id, *tgt)) return true;
  }
  return false;
}

std::string QuestionAnalyzer::ResolveCity(
    const std::string& mention,
    const std::vector<std::string>& context) const {
  auto city = onto_->FindClass("city");
  if (!city.ok()) return "";
  auto airport = onto_->FindClass("airport");

  // Resolve one sense to a city name ("" when the sense is no location).
  auto resolve = [&](ontology::ConceptId sense) -> std::string {
    if (onto_->IsA(sense, *city)) return onto_->GetConcept(sense).name;
    if (airport.ok() && onto_->IsA(sense, *airport)) {
      // The city containing the airport, through partOf.
      for (ontology::ConceptId part :
           onto_->Related(sense, ontology::RelationKind::kPartOf)) {
        if (onto_->IsA(part, *city)) return onto_->GetConcept(part).name;
      }
      for (ontology::ConceptId part :
           onto_->Related(sense, ontology::RelationKind::kPartOf)) {
        if (onto_->GetConcept(part).is_instance) {
          return onto_->GetConcept(part).name;
        }
      }
    }
    return "";
  };

  // The question pattern imposes a location type on the mention ("in X"):
  // the WSD-preferred sense is tried first, then the remaining senses —
  // type coercion keeps a resolvable sense alive even when the lexical
  // context favors a distractor (the JFK-the-president problem).
  ontology::Wsd wsd(onto_);
  auto choice = wsd.Disambiguate(ToLower(mention), context);
  if (choice.ok() && choice->sense != ontology::kInvalidConcept) {
    std::string resolved = resolve(choice->sense);
    if (!resolved.empty()) return resolved;
  }
  for (ontology::ConceptId sense : onto_->Find(ToLower(mention))) {
    std::string resolved = resolve(sense);
    if (!resolved.empty()) return resolved;
  }
  return "";
}

Result<QuestionAnalysis> QuestionAnalyzer::Analyze(
    const std::string& question) const {
  if (Trim(question).empty()) {
    return Status::InvalidArgument("empty question");
  }
  QuestionAnalysis qa;
  qa.question = question;
  qa.tokens = text::Tokenizer::Tokenize(question);
  text::PosTagger tagger;
  tagger.Tag(&qa.tokens);
  qa.blocks = text::Chunker::Chunk(qa.tokens);
  qa.annotated = text::Chunker::AnnotateSentence(qa.tokens);

  // ---- Locate the wh-word and the question focus -----------------------
  std::string wh;
  size_t wh_index = qa.tokens.size();
  for (size_t i = 0; i < qa.tokens.size(); ++i) {
    if (IsWhTag(qa.tokens[i].tag)) {
      wh = qa.tokens[i].lemma;
      wh_index = i;
      break;
    }
  }
  auto block_start = [](const SyntacticBlock& b) -> size_t {
    const SyntacticBlock* cur = &b;
    while (cur->tokens.empty() && !cur->children.empty()) {
      cur = &cur->children.front();
    }
    return cur->tokens.empty() ? 0 : cur->tokens.front().begin;
  };
  size_t wh_offset =
      wh_index < qa.tokens.size() ? qa.tokens[wh_index].begin : 0;
  // Focus NP: the first NP block starting after the wh-word (not inside a
  // PP). For "which country did Iraq invade" that is "country"; for
  // "what is the temperature in..." it is "the temperature".
  const SyntacticBlock* focus_np = nullptr;
  for (const SyntacticBlock& b : qa.blocks) {
    if (b.type != SyntacticBlock::Type::kNP) continue;
    if (block_start(b) < wh_offset) continue;
    focus_np = &b;
    break;
  }
  qa.focus_lemma = focus_np != nullptr ? focus_np->HeadLemma() : "";
  const std::string& f = qa.focus_lemma;

  std::vector<std::string> context_lemmas;
  for (const text::Token& t : qa.tokens) context_lemmas.push_back(t.lemma);

  // ---- Pattern matching: ordered syntactic-semantic rules ---------------
  auto set = [&](AnswerType type, std::string pattern,
                 std::string expected) {
    qa.answer_type = type;
    qa.pattern = std::move(pattern);
    qa.expected_answer = std::move(expected);
  };

  // Count the content SBs other than the focus NP, to recognize the bare
  // definition shape "What is X?".
  size_t non_focus_content = 0;
  for (const SyntacticBlock& b : qa.blocks) {
    if (&b == focus_np) continue;
    if (b.type == SyntacticBlock::Type::kVBC && IsAuxiliaryOnly(b)) continue;
    ++non_focus_content;
  }

  // Abbreviation pattern cuts across the wh-rules: "What does X stand
  // for?" — recognized by the stand-for construction anywhere after wh.
  bool stand_for = false;
  for (size_t i = 0; i + 1 < qa.tokens.size(); ++i) {
    if (qa.tokens[i].lemma == "stand" && qa.tokens[i + 1].lower == "for") {
      stand_for = true;
    }
  }

  bool matched = true;
  if (stand_for) {
    set(AnswerType::kAbbreviation, "[WHAT] [do] [ABBR] [stand for] ?",
        "Expansion of the abbreviation");
  } else if (wh == "what" || wh == "which") {
    if (LemmaUnder(f, "weather") || LemmaUnder(f, "temperature")) {
      set(AnswerType::kNumericalMeasure,
          "[WHAT] [to be] [synonym of weather | temperature] ...",
          "Number + [\xC2\xBA\x43 | F]");
    } else if (LemmaUnder(f, "capital")) {
      set(AnswerType::kPlaceCapital, "[WHAT|WHICH] [synonym of CAPITAL] ...",
          "Proper noun (hyponym of capital)");
    } else if (LemmaUnder(f, "country")) {
      set(AnswerType::kPlaceCountry, "[WHICH] [synonym of COUNTRY] [...]",
          "Proper noun (hyponym of country)");
    } else if (LemmaUnder(f, "city")) {
      set(AnswerType::kPlaceCity, "[WHAT|WHICH] [synonym of CITY] ...",
          "Proper noun (hyponym of city)");
    } else if (f == "place" || f == "location" || LemmaUnder(f, "airport")) {
      set(AnswerType::kPlace, "[WHAT|WHICH] [synonym of PLACE] ...",
          "Proper noun (hyponym of location)");
    } else if (f == "year") {
      set(AnswerType::kTemporalYear, "[WHAT|WHICH] [YEAR] ...",
          "Four-digit year");
    } else if (f == "month") {
      set(AnswerType::kTemporalMonth, "[WHAT|WHICH] [MONTH] ...",
          "Month name");
    } else if (f == "date" || f == "day") {
      set(AnswerType::kTemporalDate, "[WHAT|WHICH] [DATE] ...",
          "Complete date");
    } else if (f == "percentage" || f == "percent") {
      set(AnswerType::kNumericalPercentage,
          "[WHAT] [synonym of PERCENTAGE] ...", "Number + %");
    } else if (LemmaUnder(f, "price") || f == "cost") {
      set(AnswerType::kNumericalEconomic, "[WHAT] [synonym of PRICE] ...",
          "Number + currency");
    } else if (LemmaUnder(f, "group")) {
      set(AnswerType::kGroup, "[WHAT|WHICH] [synonym of GROUP] ...",
          "Proper noun (hyponym of group)");
    } else if (LemmaUnder(f, "profession")) {
      set(AnswerType::kProfession, "[WHAT] [synonym of PROFESSION] ...",
          "Profession noun");
    } else if (LemmaUnder(f, "event")) {
      set(AnswerType::kEvent, "[WHAT|WHICH] [synonym of EVENT] ...",
          "Event mention");
    } else if (f == "person") {
      set(AnswerType::kPerson, "[WHAT|WHICH] [PERSON] ...",
          "Proper noun (person)");
    } else if (non_focus_content == 0 && wh == "what") {
      set(AnswerType::kDefinition, "[WHAT] [to be] [NP] ?",
          "Defining clause");
    } else {
      set(AnswerType::kObject, "[WHAT|WHICH] [NP] ...", "Noun phrase");
    }
  } else if (wh == "who" || wh == "whom") {
    set(AnswerType::kPerson, "[WHO] [VBC] ...", "Proper noun (person)");
  } else if (wh == "when") {
    set(AnswerType::kTemporalDate, "[WHEN] [VBC] ...", "Date expression");
  } else if (wh == "where") {
    set(AnswerType::kPlace, "[WHERE] [VBC] ...",
        "Proper noun (hyponym of location)");
  } else if (wh == "how") {
    std::string next = wh_index + 1 < qa.tokens.size()
                           ? qa.tokens[wh_index + 1].lemma
                           : "";
    if (next == "many") {
      set(AnswerType::kNumericalQuantity, "[HOW MANY] [NP] ...", "Number");
    } else if (next == "much") {
      bool economic = false;
      for (const text::Token& t : qa.tokens) {
        if (t.lemma == "cost" || t.lemma == "price" || t.lemma == "pay" ||
            t.lemma == "charge") {
          economic = true;
        }
      }
      set(economic ? AnswerType::kNumericalEconomic
                   : AnswerType::kNumericalQuantity,
          "[HOW MUCH] ...", economic ? "Number + currency" : "Number");
    } else if (next == "old") {
      set(AnswerType::kNumericalAge, "[HOW OLD] [to be] [NP] ?",
          "Number of years");
    } else if (next == "long") {
      set(AnswerType::kNumericalPeriod, "[HOW LONG] ...",
          "Number + time unit");
    } else if (next == "hot" || next == "cold" || next == "warm") {
      set(AnswerType::kNumericalMeasure, "[HOW HOT|COLD] ...",
          "Number + [\xC2\xBA\x43 | F]");
    } else if (next == "far" || next == "tall" || next == "high" ||
               next == "deep" || next == "fast") {
      set(AnswerType::kNumericalMeasure, "[HOW FAR|TALL|...] ...",
          "Number + unit");
    } else {
      set(AnswerType::kObject, "[HOW] ...", "Manner description");
    }
  } else {
    matched = false;
    set(AnswerType::kObject, "[default]", "Noun phrase");
  }
  (void)matched;

  // ---- Temporal constraint ----------------------------------------------
  auto dates = text::EntityRecognizer::FindDates(qa.tokens);
  if (!dates.empty()) qa.date_constraint = dates.front();

  // ---- Main SBs: every content block except the focus and the wh-word ---
  // Focus suppression only applies to *attribute* focuses ("temperature",
  // "country" — Table 1 drops them because the attribute noun rarely sits
  // next to its value). In where/when/who questions the post-wh NP is the
  // theme entity itself and must reach retrieval.
  const bool suppress_focus =
      !(wh == "where" || wh == "when" || wh == "who" || wh == "whom");
  auto add_main_sb = [&](const std::string& s) {
    if (s.empty()) return;
    for (const std::string& existing : qa.main_sbs) {
      if (ToLower(existing) == ToLower(s)) return;
    }
    qa.main_sbs.push_back(s);
  };
  std::function<void(const SyntacticBlock&)> collect =
      [&](const SyntacticBlock& b) {
        switch (b.type) {
          case SyntacticBlock::Type::kNP: {
            std::string head = b.HeadLemma();
            if (suppress_focus &&
                (&b == focus_np || head == qa.focus_lemma)) {
              // The focus noun itself is not a retrieval term, but its
              // modifiers are ("the hottest month" contributes "hottest").
              for (const text::Token& t : b.tokens) {
                if (t.tag == "JJ" || t.tag == "JJS" || t.tag == "JJR") {
                  add_main_sb(t.text);
                }
              }
              return;
            }
            add_main_sb(b.Text());
            break;
          }
          case SyntacticBlock::Type::kPP:
            // Use the inner NPs; the preposition itself is not a retrieval
            // term (Table 1: "[January of 2004] [El Prat]").
            for (const SyntacticBlock& c : b.children) collect(c);
            break;
          case SyntacticBlock::Type::kVBC:
            if (!IsAuxiliaryOnly(b)) {
              for (const text::Token& t : b.tokens) {
                if (t.lemma != "be" && t.lemma != "do" && t.lemma != "have" &&
                    t.tag != "MD" && t.tag != "TO") {
                  add_main_sb(t.lemma);
                }
              }
            }
            break;
        }
      };
  for (const SyntacticBlock& b : qa.blocks) collect(b);
  // For abbreviation questions the focus IS the abbreviation being asked
  // about — it must reach the retrieval module.
  if (qa.answer_type == AnswerType::kAbbreviation && focus_np != nullptr) {
    add_main_sb(focus_np->Text());
  }

  // ---- Location resolution through the (merged) ontology ----------------
  for (const SyntacticBlock& b : qa.blocks) {
    std::vector<const SyntacticBlock*> nps;
    if (b.type == SyntacticBlock::Type::kNP) {
      nps.push_back(&b);
    } else if (b.type == SyntacticBlock::Type::kPP) {
      for (const SyntacticBlock& c : b.children) {
        if (c.type == SyntacticBlock::Type::kNP) nps.push_back(&c);
      }
    }
    for (const SyntacticBlock* np : nps) {
      if (np->subtype != "properNoun") continue;
      std::string mention = np->Text();
      qa.location = mention;
      std::string city = ResolveCity(mention, context_lemmas);
      if (!city.empty()) {
        qa.resolved_city = city;
        // The city expansion sharpens retrieval (Table 1 adds Barcelona),
        // but for place-type questions the city may be the *answer* —
        // injecting it would be circular, so the expansion is skipped.
        if (!IsPlace(qa.answer_type) && ToLower(city) != ToLower(mention)) {
          add_main_sb(city);
        }
      }
    }
  }
  return qa;
}

}  // namespace qa
}  // namespace dwqa
