#ifndef DWQA_QA_QUESTION_H_
#define DWQA_QA_QUESTION_H_

#include <optional>
#include <string>
#include <vector>

#include "common/date.h"
#include "text/chunker.h"
#include "text/entities.h"
#include "text/token.h"
#include "qa/taxonomy.h"

namespace dwqa {
namespace qa {

/// \brief Output of AliQAn's Module 1 (question analysis): the syntactic
/// analysis, the matched question pattern, the expected answer type and the
/// main Syntactic Blocks to hand to the passage-retrieval module — i.e. the
/// first four rows of the paper's Table 1.
struct QuestionAnalysis {
  std::string question;
  text::TokenSequence tokens;
  std::vector<text::SyntacticBlock> blocks;

  /// Matched pattern, in the paper's display form, e.g.
  /// "[WHAT] [to be] [synonym of weather | temperature] ...".
  std::string pattern;
  AnswerType answer_type = AnswerType::kObject;
  /// Description of what a candidate answer must contain, e.g.
  /// "Number + [ºC | F]".
  std::string expected_answer;

  /// The question focus lemma ("temperature", "country"); the focus SB is
  /// *not* passed to retrieval (Table 1 discussion: figures rarely appear
  /// next to the word "temperature").
  std::string focus_lemma;

  /// Main SBs passed to IR-n, as display texts ("January of 2004",
  /// "El Prat") plus ontology expansions ("Barcelona").
  std::vector<std::string> main_sbs;

  /// Temporal constraint recognized in the question.
  std::optional<text::DateMention> date_constraint;
  /// Location mentioned in the question (surface form, e.g. "El Prat").
  std::string location;
  /// City the location resolves to through the ontology (enrichment payoff;
  /// empty when the ontology cannot resolve it).
  std::string resolved_city;

  /// "Term Tag Lemma" annotation of the whole question (Table 1, row 2).
  std::string annotated;
};

}  // namespace qa
}  // namespace dwqa

#endif  // DWQA_QA_QUESTION_H_
