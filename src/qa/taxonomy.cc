#include "qa/taxonomy.h"

namespace dwqa {
namespace qa {

const char* AnswerTypeName(AnswerType type) {
  switch (type) {
    case AnswerType::kPerson:
      return "person";
    case AnswerType::kProfession:
      return "profession";
    case AnswerType::kGroup:
      return "group";
    case AnswerType::kObject:
      return "object";
    case AnswerType::kPlaceCity:
      return "place city";
    case AnswerType::kPlaceCountry:
      return "place country";
    case AnswerType::kPlaceCapital:
      return "place capital";
    case AnswerType::kPlace:
      return "place";
    case AnswerType::kAbbreviation:
      return "abbreviation";
    case AnswerType::kEvent:
      return "event";
    case AnswerType::kNumericalEconomic:
      return "numerical economic";
    case AnswerType::kNumericalAge:
      return "numerical age";
    case AnswerType::kNumericalMeasure:
      return "numerical measure";
    case AnswerType::kNumericalPeriod:
      return "numerical period";
    case AnswerType::kNumericalPercentage:
      return "numerical percentage";
    case AnswerType::kNumericalQuantity:
      return "numerical quantity";
    case AnswerType::kTemporalYear:
      return "temporal year";
    case AnswerType::kTemporalMonth:
      return "temporal month";
    case AnswerType::kTemporalDate:
      return "temporal date";
    case AnswerType::kDefinition:
      return "definition";
  }
  return "?";
}

const AnswerType* AllAnswerTypes() {
  static const AnswerType kAll[kAnswerTypeCount] = {
      AnswerType::kPerson,
      AnswerType::kProfession,
      AnswerType::kGroup,
      AnswerType::kObject,
      AnswerType::kPlaceCity,
      AnswerType::kPlaceCountry,
      AnswerType::kPlaceCapital,
      AnswerType::kPlace,
      AnswerType::kAbbreviation,
      AnswerType::kEvent,
      AnswerType::kNumericalEconomic,
      AnswerType::kNumericalAge,
      AnswerType::kNumericalMeasure,
      AnswerType::kNumericalPeriod,
      AnswerType::kNumericalPercentage,
      AnswerType::kNumericalQuantity,
      AnswerType::kTemporalYear,
      AnswerType::kTemporalMonth,
      AnswerType::kTemporalDate,
      AnswerType::kDefinition,
  };
  return kAll;
}

bool IsNumerical(AnswerType type) {
  switch (type) {
    case AnswerType::kNumericalEconomic:
    case AnswerType::kNumericalAge:
    case AnswerType::kNumericalMeasure:
    case AnswerType::kNumericalPeriod:
    case AnswerType::kNumericalPercentage:
    case AnswerType::kNumericalQuantity:
      return true;
    default:
      return false;
  }
}

bool IsTemporal(AnswerType type) {
  return type == AnswerType::kTemporalYear ||
         type == AnswerType::kTemporalMonth ||
         type == AnswerType::kTemporalDate;
}

bool IsPlace(AnswerType type) {
  return type == AnswerType::kPlaceCity ||
         type == AnswerType::kPlaceCountry ||
         type == AnswerType::kPlaceCapital || type == AnswerType::kPlace;
}

std::string TypeConceptLemma(AnswerType type) {
  switch (type) {
    case AnswerType::kPerson:
      return "person";
    case AnswerType::kProfession:
      return "profession";
    case AnswerType::kGroup:
      return "group";
    case AnswerType::kObject:
      return "entity";
    case AnswerType::kPlaceCity:
      return "city";
    case AnswerType::kPlaceCountry:
      return "country";
    case AnswerType::kPlaceCapital:
      return "capital";
    case AnswerType::kPlace:
      return "location";
    case AnswerType::kEvent:
      return "event";
    default:
      return "";
  }
}

}  // namespace qa
}  // namespace dwqa
