#include "qa/degradation.h"

#include <algorithm>

#include "common/string_util.h"
#include "ir/document.h"
#include "ir/passage_index.h"
#include "qa/answer.h"
#include "qa/question.h"
#include "text/analyzed_corpus.h"
#include "text/entities.h"
#include "text/sentence_splitter.h"

namespace dwqa {
namespace qa {

using text::DateMention;
using text::EntityRecognizer;
using text::TokenSequence;

const char* DegradationLevelName(DegradationLevel level) {
  switch (level) {
    case DegradationLevel::kFull:
      return "Full";
    case DegradationLevel::kRelaxedPattern:
      return "RelaxedPattern";
    case DegradationLevel::kIrOnly:
      return "IrOnly";
    case DegradationLevel::kUnanswered:
      return "Unanswered";
  }
  return "Unknown";
}

const std::vector<DegradationLevel>& AllDegradationLevels() {
  static const std::vector<DegradationLevel> kAll = {
      DegradationLevel::kFull, DegradationLevel::kRelaxedPattern,
      DegradationLevel::kIrOnly, DegradationLevel::kUnanswered};
  return kAll;
}

namespace {

bool WantsNumber(AnswerType type) {
  switch (type) {
    case AnswerType::kNumericalMeasure:
    case AnswerType::kNumericalEconomic:
    case AnswerType::kNumericalPercentage:
    case AnswerType::kNumericalAge:
    case AnswerType::kNumericalPeriod:
    case AnswerType::kNumericalQuantity:
    case AnswerType::kTemporalYear:
      return true;
    default:
      return false;
  }
}

}  // namespace

namespace {

/// The rung-2 pattern pass over one passage's sentence analyses — shared
/// between the cached-corpus path and the legacy re-analysis path.
void RelaxedExtractFromSentences(
    const QuestionAnalysis& q, const ir::Passage& p, const std::string& url,
    const text::SentenceView& sentences, const DegradationConfig& config,
    const std::string& fallback_location,
    std::vector<AnswerCandidate>* out) {
  // Dates carry across sentences, like the weather-page layout the full
  // extractor models (date line, then data line).
  const DateMention* last_date = nullptr;
  for (const text::AnalyzedSentence* s : sentences) {
    const TokenSequence& toks = s->tokens;
    if (!s->dates.empty()) last_date = &s->dates.back();

    auto push = [&](AnswerCandidate c) {
      c.type = q.answer_type;
      c.level = DegradationLevel::kRelaxedPattern;
      c.score = config.relaxed_score;
      c.sentence = s->text;
      c.passage_text = p.text;
      c.doc = p.doc;
      c.url = url;
      if (c.location.empty()) c.location = fallback_location;
      if (!c.date.has_value() && last_date != nullptr) {
        c.date = last_date->date;
        c.date_complete = last_date->IsComplete();
      }
      out->push_back(std::move(c));
    };

    if (WantsNumber(q.answer_type)) {
      // Any bare cardinal, unit or no unit — the Figure-5 stripped-table
      // case where the strict "number + scale" pattern cannot fire.
      // Cardinals inside a recognized date ("31", "2004") stay dates.
      for (const auto& m : EntityRecognizer::FindNumbers(toks)) {
        bool inside_date = false;
        for (const DateMention& d : s->dates) {
          if (m.begin >= d.begin && m.begin < d.end) inside_date = true;
        }
        if (inside_date) continue;
        AnswerCandidate c;
        c.answer_text = m.text;
        c.has_value = true;
        c.value = m.value;
        push(std::move(c));
      }
    } else {
      // Any proper noun, no semantic preference, no question-term filter.
      for (const auto& pn : EntityRecognizer::FindProperNouns(toks)) {
        AnswerCandidate c;
        c.answer_text = pn.text;
        push(std::move(c));
      }
    }
  }
}

}  // namespace

std::vector<AnswerCandidate> RelaxedExtract(
    const QuestionAnalysis& q, const std::vector<ir::Passage>& passages,
    const ir::DocumentStore* docs, const DegradationConfig& config,
    size_t max_answers, const text::AnalyzedCorpus* corpus) {
  std::vector<AnswerCandidate> out;
  std::string fallback_location =
      q.resolved_city.empty() ? q.location : q.resolved_city;

  for (const ir::Passage& p : passages) {
    const std::string& url =
        (docs != nullptr && docs->IsValid(p.doc)) ? docs->Get(p.doc).url : "";

    const text::AnalyzedDocument* analysis =
        corpus != nullptr ? corpus->Find(p.doc) : nullptr;
    if (analysis != nullptr &&
        p.first_sentence < analysis->sentences.size()) {
      // Cached path: the passage is a sentence range of an analyzed doc.
      size_t last =
          std::min(p.last_sentence, analysis->sentences.size() - 1);
      text::SentenceView view;
      view.reserve(last - p.first_sentence + 1);
      for (size_t s = p.first_sentence; s <= last; ++s) {
        view.push_back(&analysis->sentences[s]);
      }
      RelaxedExtractFromSentences(q, p, url, view, config,
                                  fallback_location, &out);
    } else {
      // Legacy path: analyze the passage text here and now.
      TermDictionary dict;
      text::CorpusAnalyzer analyzer(&dict, {.chunk = false});
      std::vector<text::AnalyzedSentence> analyzed;
      for (std::string& s : text::SentenceSplitter::Split(p.text)) {
        analyzed.push_back(analyzer.AnalyzeSentence(std::move(s)));
      }
      text::SentenceView view;
      view.reserve(analyzed.size());
      for (const text::AnalyzedSentence& s : analyzed) view.push_back(&s);
      RelaxedExtractFromSentences(q, p, url, view, config,
                                  fallback_location, &out);
    }
  }
  if (out.size() > max_answers) out.resize(max_answers);
  return out;
}

std::vector<AnswerCandidate> IrOnlyAnswers(
    const std::vector<ir::Passage>& passages, const ir::DocumentStore* docs,
    const DegradationConfig& config) {
  std::vector<AnswerCandidate> out;
  if (passages.empty()) return out;
  const ir::Passage* best = &passages.front();
  for (const ir::Passage& p : passages) {
    if (p.score > best->score) best = &p;
  }
  AnswerCandidate c;
  c.answer_text = Trim(best->text);
  c.level = DegradationLevel::kIrOnly;
  c.score = config.ir_only_score;
  c.passage_text = best->text;
  c.doc = best->doc;
  c.url = (docs != nullptr && docs->IsValid(best->doc))
              ? docs->Get(best->doc).url
              : "";
  out.push_back(std::move(c));
  return out;
}

}  // namespace qa
}  // namespace dwqa
