#include "qa/answer_extractor.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/string_util.h"
#include "text/entities.h"
#include "text/pos_tagger.h"
#include "text/sentence_splitter.h"
#include "text/tokenizer.h"

namespace dwqa {
namespace qa {

using text::DateMention;
using text::EntityRecognizer;
using text::TokenSequence;

namespace {

/// Default temperature plausibility bounds (overridden by Step-4 axioms on
/// the "temperature" concept when present): records on Earth span roughly
/// -90..60 ºC.
constexpr double kDefaultMinCelsius = -90.0;
constexpr double kDefaultMaxCelsius = 60.0;

double FahrenheitToCelsius(double f) { return (f - 32.0) * 5.0 / 9.0; }

/// Content lemmas of one question SB, pre-resolved against the corpus
/// dictionary so per-sentence coverage is set membership, not re-tagging.
struct SbLemmas {
  /// All content tokens (DT/IN/OF/"," dropped), known to the dictionary or
  /// not — the coverage denominator.
  size_t total = 0;
  /// Interned ids of the known content lemmas, one entry per token
  /// occurrence (an SB lemma absent from the whole corpus can never hit).
  std::vector<TermId> ids;
};

/// Tags each main SB once per extraction call and resolves its content
/// lemmas to TermIds.
std::vector<SbLemmas> ResolveSbs(const std::vector<std::string>& sbs,
                                 const TermDictionary& dict) {
  text::PosTagger tagger;
  std::vector<SbLemmas> out;
  out.reserve(sbs.size());
  for (const std::string& sb : sbs) {
    text::TokenSequence toks = text::Tokenizer::Tokenize(sb);
    tagger.Tag(&toks);
    SbLemmas resolved;
    for (const text::Token& t : toks) {
      if (t.tag == "DT" || t.tag == "IN" || t.tag == "OF" || t.tag == ",") {
        continue;
      }
      ++resolved.total;
      TermId id = dict.Find(t.lemma);
      if (id != kInvalidTermId) resolved.ids.push_back(id);
    }
    out.push_back(std::move(resolved));
  }
  return out;
}

/// Fraction of the SB's content lemmas present in `lemmas`.
double SbCoverage(const SbLemmas& sb,
                  const std::unordered_set<TermId>& lemmas) {
  if (sb.total == 0) return 0.0;
  size_t hit = 0;
  for (TermId id : sb.ids) {
    if (lemmas.count(id)) ++hit;
  }
  return static_cast<double>(hit) / static_cast<double>(sb.total);
}

bool MentionEqualsAnyQuestionTerm(const std::string& mention,
                                  const QuestionAnalysis& q) {
  std::string lower = ToLower(mention);
  for (const std::string& sb : q.main_sbs) {
    // Substring containment: "Kennedy International" is part of the
    // question term "Kennedy International Airport" and no answer.
    if (ToLower(sb).find(lower) != std::string::npos) return true;
  }
  if (!q.location.empty() &&
      ToLower(q.location).find(lower) != std::string::npos) {
    return true;
  }
  // The ontology-resolved city is a retrieval expansion; for place-type
  // questions it may be the *answer* ("In which city is El Prat?"), so it
  // is only excluded for the other types.
  if (!IsPlace(q.answer_type) && ToLower(q.resolved_city) == lower) {
    return true;
  }
  return false;
}

/// True when `d` is compatible with the question's (possibly partial) date
/// constraint.
bool DateCompatible(const DateMention& d, const QuestionAnalysis& q) {
  if (!q.date_constraint.has_value()) return true;
  const DateMention& c = *q.date_constraint;
  if (c.has_year && d.has_year && c.date.year() != d.date.year()) {
    return false;
  }
  if (c.has_month && d.has_month && c.date.month() != d.date.month()) {
    return false;
  }
  if (c.has_day && d.has_day && c.date.day() != d.date.day()) return false;
  return true;
}

}  // namespace

bool AnswerExtractor::SatisfiesTypeConcept(const std::string& mention,
                                           AnswerType type) const {
  std::string lemma = TypeConceptLemma(type);
  if (lemma.empty()) return true;
  auto target = onto_->FindClass(lemma);
  if (!target.ok()) return false;
  for (ontology::ConceptId id : onto_->Find(ToLower(mention))) {
    if (onto_->IsA(id, *target)) return true;
  }
  return false;
}

bool AnswerExtractor::TemperaturePlausible(double value, char scale) const {
  double min_c = kDefaultMinCelsius;
  double max_c = kDefaultMaxCelsius;
  if (auto concept_id = onto_->FindClass("temperature"); concept_id.ok()) {
    if (auto v = onto_->GetAxiom(*concept_id, "min_celsius"); v.ok()) {
      min_c = std::atof(v->c_str());
    }
    if (auto v = onto_->GetAxiom(*concept_id, "max_celsius"); v.ok()) {
      max_c = std::atof(v->c_str());
    }
  }
  double celsius = scale == 'F' ? FahrenheitToCelsius(value) : value;
  return celsius >= min_c && celsius <= max_c;
}

std::vector<AnswerCandidate> AnswerExtractor::Extract(
    const QuestionAnalysis& q, const std::string& passage_text,
    ir::DocId doc, const std::string& url) const {
  // Legacy path: run the indexation-time analysis here and now, against a
  // throwaway dictionary, then extract exactly as the fast path does. An SB
  // lemma unknown to this passage-local dictionary cannot occur in any of
  // its sentences, so coverage is unchanged.
  TermDictionary dict;
  text::CorpusAnalyzer analyzer(&dict, {.chunk = false});
  std::vector<text::AnalyzedSentence> analyzed;
  for (std::string& s : text::SentenceSplitter::Split(passage_text)) {
    analyzed.push_back(analyzer.AnalyzeSentence(std::move(s)));
  }
  text::SentenceView view;
  view.reserve(analyzed.size());
  for (const text::AnalyzedSentence& s : analyzed) view.push_back(&s);
  return ExtractAnalyzed(q, view, dict, passage_text, doc, url);
}

std::vector<AnswerCandidate> AnswerExtractor::ExtractAnalyzed(
    const QuestionAnalysis& q, const text::SentenceView& sentences,
    const TermDictionary& dict, const std::string& passage_text,
    ir::DocId doc, const std::string& url) const {
  std::vector<AnswerCandidate> out;

  // Resolve the question SBs once per passage; sentence analyses (tokens +
  // per-sentence date mentions) come precomputed, so a candidate in
  // sentence i can borrow the most recent date from i-1, i-2... — the
  // layout of the Figure 4 weather pages (date line, then data line).
  std::vector<SbLemmas> sb_lemmas = ResolveSbs(q.main_sbs, dict);
  std::unordered_set<TermId> passage_lemmas;
  for (const text::AnalyzedSentence* s : sentences) {
    passage_lemmas.insert(s->lemma_set.begin(), s->lemma_set.end());
  }

  double passage_cov = 0.0;
  for (const SbLemmas& sb : sb_lemmas) {
    passage_cov += SbCoverage(sb, passage_lemmas);
  }

  auto nearest_date = [&](size_t sent_idx,
                          size_t tok_idx) -> const DateMention* {
    // Prefer a date in the same sentence (closest before the token, else
    // after); otherwise the latest date in a preceding sentence.
    const DateMention* best = nullptr;
    for (const DateMention& d : sentences[sent_idx]->dates) {
      if (best == nullptr ||
          (d.begin <= tok_idx &&
           (best->begin > tok_idx || d.begin >= best->begin))) {
        best = &d;
      }
    }
    if (best != nullptr) return best;
    for (size_t i = sent_idx; i-- > 0;) {
      if (!sentences[i]->dates.empty()) return &sentences[i]->dates.back();
    }
    return nullptr;
  };

  auto resolve_location = [&](size_t sent_idx) -> std::string {
    // A proper noun in this sentence (or an earlier one) whose sense is a
    // city; otherwise the question's resolved city.
    auto city = onto_->FindClass("city");
    for (size_t i = sent_idx + 1; i-- > 0;) {
      for (const auto& pn :
           EntityRecognizer::FindProperNouns(sentences[i]->tokens)) {
        if (!city.ok()) break;
        for (ontology::ConceptId id : onto_->Find(ToLower(pn.text))) {
          if (onto_->IsA(id, *city)) return onto_->GetConcept(id).name;
        }
      }
      if (sent_idx - i >= 2) break;  // Look back at most two sentences.
    }
    if (!q.resolved_city.empty()) return q.resolved_city;
    return q.location;
  };

  for (size_t si = 0; si < sentences.size(); ++si) {
    const TokenSequence& toks = sentences[si]->tokens;
    const std::vector<DateMention>& dates = sentences[si]->dates;
    double sent_cov = 0.0;
    for (const SbLemmas& sb : sb_lemmas) {
      sent_cov += SbCoverage(sb, sentences[si]->lemma_set);
    }
    double base = 2.0 * sent_cov + passage_cov;

    auto push = [&](AnswerCandidate cand) {
      cand.type = q.answer_type;
      cand.sentence = sentences[si]->text;
      cand.passage_text = passage_text;
      cand.doc = doc;
      cand.url = url;
      out.push_back(std::move(cand));
    };

    switch (q.answer_type) {
      case AnswerType::kNumericalMeasure: {
        for (const auto& m : EntityRecognizer::FindTemperatures(toks)) {
          AnswerCandidate c;
          c.answer_text =
              FormatDouble(m.value, m.value == std::floor(m.value) ? 0 : 1);
          c.answer_text += m.scale == 'F' ? "F" : "\xC2\xBA\x43";
          c.has_value = true;
          c.value = m.value;
          c.unit = m.scale == 'F' ? "F" : (m.scale == 'C' ? "\xC2\xBA\x43"
                                                          : "");
          c.score = base + 1.0;
          if (m.scale != '?') c.score += 2.0;  // Unit associated.
          // Canonical-unit preference: the Step-4 axiom lists ºC first, so
          // of two renderings of the same reading ("8º C around 46.4 F",
          // Table 1) the Celsius one is extracted.
          if (m.scale == 'C') c.score += 0.25;
          if (!TemperaturePlausible(m.value, m.scale)) c.score -= 5.0;
          if (const DateMention* d = nearest_date(si, m.begin)) {
            c.date = d->date;
            c.date_complete = d->IsComplete();
            c.score += d->IsComplete() ? 1.0 : 0.5;
            if (DateCompatible(*d, q)) {
              c.score += 2.0;
            } else {
              c.score -= 3.0;
            }
          }
          c.location = resolve_location(si);
          if (!q.resolved_city.empty() &&
              ToLower(c.location) == ToLower(q.resolved_city)) {
            c.score += 1.0;
          }
          push(std::move(c));
        }
        break;
      }
      case AnswerType::kNumericalEconomic: {
        for (const auto& m : EntityRecognizer::FindMoney(toks)) {
          AnswerCandidate c;
          c.answer_text = m.text;
          c.has_value = true;
          c.value = m.value;
          c.unit = m.currency;
          c.score = base + 2.0;
          if (const DateMention* d = nearest_date(si, m.begin)) {
            c.date = d->date;
            c.date_complete = d->IsComplete();
            if (DateCompatible(*d, q)) c.score += 1.0;
          }
          c.location = resolve_location(si);
          push(std::move(c));
        }
        break;
      }
      case AnswerType::kNumericalPercentage: {
        for (const auto& m : EntityRecognizer::FindPercents(toks)) {
          AnswerCandidate c;
          c.answer_text = m.text;
          c.has_value = true;
          c.value = m.value;
          c.unit = "%";
          c.score = base + 2.0;
          push(std::move(c));
        }
        break;
      }
      case AnswerType::kNumericalAge: {
        for (const auto& m : EntityRecognizer::FindNumbers(toks)) {
          // "N years old" / "aged N".
          bool age_context = false;
          if (m.end < toks.size() && toks[m.end].lemma == "year" &&
              m.end + 1 < toks.size() && toks[m.end + 1].lemma == "old") {
            age_context = true;
          }
          if (m.begin > 0 && toks[m.begin - 1].lower == "aged") {
            age_context = true;
          }
          if (!age_context) continue;
          AnswerCandidate c;
          c.answer_text = m.text;
          c.has_value = true;
          c.value = m.value;
          c.unit = "years";
          c.score = base + 3.0;
          push(std::move(c));
        }
        break;
      }
      case AnswerType::kNumericalPeriod: {
        for (const auto& m : EntityRecognizer::FindNumbers(toks)) {
          if (m.end >= toks.size()) continue;
          const std::string& unit = toks[m.end].lemma;
          bool duration = unit == "day" || unit == "hour" ||
                          unit == "minute" || unit == "week" ||
                          unit == "month" || unit == "year";
          // "N years old" is an age, not a period.
          if (duration && m.end + 1 < toks.size() &&
              toks[m.end + 1].lemma == "old") {
            duration = false;
          }
          if (!duration) continue;
          AnswerCandidate c;
          c.answer_text = m.text + " " + toks[m.end].text;
          c.has_value = true;
          c.value = m.value;
          c.unit = unit + "s";
          c.score = base + 2.0;
          push(std::move(c));
        }
        break;
      }
      case AnswerType::kNumericalQuantity: {
        // Plain cardinals not consumed by a more specific recognizer.
        std::unordered_set<size_t> taken;
        for (const auto& m : EntityRecognizer::FindTemperatures(toks)) {
          for (size_t i = m.begin; i < m.end; ++i) taken.insert(i);
        }
        for (const auto& m : EntityRecognizer::FindMoney(toks)) {
          for (size_t i = m.begin; i < m.end; ++i) taken.insert(i);
        }
        for (const auto& m : EntityRecognizer::FindPercents(toks)) {
          for (size_t i = m.begin; i < m.end; ++i) taken.insert(i);
        }
        for (const auto& d : dates) {
          for (size_t i = d.begin; i < d.end; ++i) taken.insert(i);
        }
        for (const auto& m : EntityRecognizer::FindNumbers(toks)) {
          if (taken.count(m.begin)) continue;
          AnswerCandidate c;
          c.answer_text = m.text;
          c.has_value = true;
          c.value = m.value;
          c.score = base + 1.0;
          push(std::move(c));
        }
        break;
      }
      case AnswerType::kTemporalDate: {
        for (const DateMention& d : dates) {
          AnswerCandidate c;
          c.answer_text = d.text;
          c.date = d.date;
          c.date_complete = d.IsComplete();
          c.score = base + (d.IsComplete() ? 3.0 : 1.0);
          c.location = resolve_location(si);
          push(std::move(c));
        }
        // A bare year is an acceptable (weaker) date answer: "When did
        // Iraq invade Kuwait?" → "1990".
        std::unordered_set<size_t> in_date;
        for (const auto& d : dates) {
          for (size_t i = d.begin; i < d.end; ++i) in_date.insert(i);
        }
        for (size_t i = 0; i < toks.size(); ++i) {
          if (in_date.count(i)) continue;
          if (!EntityRecognizer::LooksLikeYear(toks[i])) continue;
          AnswerCandidate c;
          c.answer_text = toks[i].text;
          c.has_value = true;
          c.value = std::atof(toks[i].lower.c_str());
          c.score = base + 0.5;
          push(std::move(c));
        }
        break;
      }
      case AnswerType::kTemporalYear: {
        for (const text::Token& t : toks) {
          if (EntityRecognizer::LooksLikeYear(t)) {
            AnswerCandidate c;
            c.answer_text = t.text;
            c.has_value = true;
            c.value = std::atof(t.lower.c_str());
            c.score = base + 2.0;
            push(std::move(c));
          }
        }
        break;
      }
      case AnswerType::kTemporalMonth: {
        for (const text::Token& t : toks) {
          if (EntityRecognizer::IsMonthName(t.lower)) {
            AnswerCandidate c;
            c.answer_text = t.text;
            c.score = base + 2.0;
            push(std::move(c));
          }
        }
        break;
      }
      case AnswerType::kDefinition: {
        // "<focus> is/are <defining clause>".
        for (size_t i = 0; i + 1 < toks.size(); ++i) {
          if (toks[i].lemma != q.focus_lemma || q.focus_lemma.empty()) {
            continue;
          }
          size_t j = i + 1;
          if (j < toks.size() && toks[j].lemma == "be") {
            std::string rest = text::TokensToText(toks, j + 1, toks.size());
            if (!rest.empty() && rest != "?") {
              AnswerCandidate c;
              c.answer_text = rest;
              c.score = base + 3.0;
              push(std::move(c));
            }
          }
        }
        break;
      }
      case AnswerType::kAbbreviation: {
        // "<expansion> (<ABBR>)" and "<ABBR> stands for <expansion>".
        for (size_t i = 0; i + 4 < toks.size(); ++i) {
          if (toks[i + 1].lemma == "stand" && toks[i + 2].lower == "for") {
            AnswerCandidate c;
            c.answer_text =
                text::TokensToText(toks, i + 3, toks.size());
            c.score = base + 2.0;
            push(std::move(c));
          }
        }
        for (size_t i = 2; i + 1 < toks.size(); ++i) {
          if (toks[i - 1].text == "(" && toks[i + 1].text == ")" &&
              toks[i].text == ToUpper(toks[i].text) &&
              toks[i].text.size() >= 2) {
            AnswerCandidate c;
            c.answer_text = toks[i].text;
            c.score = base + 2.0;
            push(std::move(c));
          }
        }
        break;
      }
      default: {
        // Professions are common nouns ("actor"), checked against the
        // profession subtree of the ontology.
        if (q.answer_type == AnswerType::kProfession) {
          for (const text::Token& t : toks) {
            if (t.tag != "NN" && t.tag != "NNS") continue;
            if (!SatisfiesTypeConcept(t.lemma, q.answer_type)) continue;
            if (t.lemma == "profession") continue;
            AnswerCandidate c;
            c.answer_text = t.text;
            c.score = base + 3.0;
            push(std::move(c));
          }
        }
        // Person / profession / group / object / place* / event: proper
        // nouns with a semantic preference for the type's subtree.
        for (const auto& pn : EntityRecognizer::FindProperNouns(toks)) {
          if (MentionEqualsAnyQuestionTerm(pn.text, q)) continue;
          AnswerCandidate c;
          c.answer_text = pn.text;
          c.score = base;
          if (SatisfiesTypeConcept(pn.text, q.answer_type)) {
            c.score += 3.0;  // The paper's "semantic preference".
          } else if (IsPlace(q.answer_type) ||
                     q.answer_type == AnswerType::kPerson ||
                     q.answer_type == AnswerType::kGroup) {
            c.score -= 1.0;  // Off-type proper noun: weak candidate.
          }
          if (const DateMention* d = nearest_date(si, pn.begin)) {
            if (DateCompatible(*d, q)) c.score += 0.5;
          }
          push(std::move(c));
        }
        break;
      }
    }
  }
  return out;
}

std::vector<AnswerCandidate> AnswerExtractor::Rank(
    std::vector<AnswerCandidate> candidates, size_t max_answers) {
  // Deduplicate by normalized answer text + date, keeping the best score.
  std::vector<AnswerCandidate> merged;
  for (AnswerCandidate& c : candidates) {
    bool found = false;
    for (AnswerCandidate& m : merged) {
      bool same_date =
          m.date.has_value() == c.date.has_value() &&
          (!m.date.has_value() || *m.date == *c.date);
      if (ToLower(m.answer_text) == ToLower(c.answer_text) && same_date) {
        if (c.score > m.score) m = std::move(c);
        found = true;
        break;
      }
    }
    if (!found) merged.push_back(std::move(c));
  }
  std::sort(merged.begin(), merged.end(),
            [](const AnswerCandidate& a, const AnswerCandidate& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.answer_text < b.answer_text;
            });
  if (merged.size() > max_answers) merged.resize(max_answers);
  return merged;
}

}  // namespace qa
}  // namespace dwqa
