#ifndef DWQA_QA_FACT_VALIDATOR_H_
#define DWQA_QA_FACT_VALIDATOR_H_

#include <limits>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "ontology/ontology.h"
#include "qa/structured.h"

namespace dwqa {
namespace qa {

/// \brief Why a structured fact was refused admission to the warehouse.
///
/// A typed reason (not a free-form message) so the quarantine can be
/// aggregated per failure class and the checkpoint can persist the
/// counters.
enum class RejectReason {
  kNone = 0,
  /// The value is NaN or infinite — nothing a measure column can hold.
  kNonFiniteValue,
  /// The value violates the attribute's plausible interval (the paper's
  /// Step-4 axiom: "the right temperature intervals").
  kValueOutOfRange,
  /// The unit is not one the attribute admits ("a temperature is a number
  /// followed by the Celsius or Fahrenheit scale").
  kBadUnit,
  /// The extracted date does not exist in the calendar.
  kInvalidDate,
  /// The fact names no location; the City role cannot be resolved.
  kMissingLocation,
  /// The ETL layer refused the record (schema mismatch, bad member path).
  kEtlRejected,
  /// Transient load failures outlasted the retry budget.
  kTransientExhausted,
  /// The source's circuit breaker is open: the source is isolated after
  /// persistent failures and its facts are parked until it recovers.
  kCircuitOpen,
  /// The fact's extraction confidence is below the validator's floor —
  /// typically a degraded-ladder answer the deployment chose not to trust.
  kBelowConfidenceFloor,
  /// The fact could not be made durable: its write-ahead-log append failed.
  /// The feed refuses to load what it cannot replay after a crash.
  kWalFailed,
  /// A replayed WAL record was corrupt (CRC mismatch or unparseable
  /// payload). Assigned by recovery, not the live feed.
  kWalCorrupt,
};

/// "NonFiniteValue", "ValueOutOfRange", ... (stable, serialized into the
/// quarantine CSV and the feed checkpoint).
const char* RejectReasonName(RejectReason reason);

/// Inverse of RejectReasonName; fails on unknown names.
Result<RejectReason> RejectReasonFromName(const std::string& name);

/// All reasons with a name, for iteration in reports.
const std::vector<RejectReason>& AllRejectReasons();

/// \brief Plausibility rule for one attribute.
struct AttributeRule {
  double min_value = -std::numeric_limits<double>::infinity();
  double max_value = std::numeric_limits<double>::infinity();
  /// Units the attribute admits. Empty list = any unit. The empty *unit*
  /// ("" — the Figure-5 stripped-table case) is admitted unless
  /// `require_unit` is set: a bare number is assumed to be in the measure's
  /// canonical scale.
  std::vector<std::string> allowed_units;
  bool require_unit = false;
  bool require_location = true;
};

/// \brief Configuration of a FactValidator: per-attribute rules plus the
/// fallback applied to attributes without one.
struct ValidatorConfig {
  std::map<std::string, AttributeRule> rules;
  AttributeRule default_rule;
  /// Facts whose `confidence` is below this floor are rejected with
  /// kBelowConfidenceFloor. The default (-inf) admits everything, including
  /// the low-scored degraded-ladder answers.
  double confidence_floor = -std::numeric_limits<double>::infinity();
};

/// \brief Enforces the Step-4 axioms on extracted facts before they reach
/// the ETL boundary.
///
/// The paper tunes the QA system with "the right temperature intervals" and
/// unit constraints (§3 Step 4); the validator is where those axioms
/// actually gate the feed. Facts that fail go to the QuarantineStore with
/// their RejectReason instead of silently polluting the warehouse.
class FactValidator {
 public:
  /// Permissive validator: finite value, valid date, location required.
  FactValidator() = default;

  explicit FactValidator(ValidatorConfig config);

  /// Builds the rules from the ontology's Step-4 axioms: for each of
  /// `attributes`, reads the `unit` axiom ("ºC|F" → allowed units) and the
  /// `min`/`max` (or `min_celsius`/`max_celsius`) interval axioms of the
  /// concept with that lemma. Attributes without a concept get the default
  /// rule.
  static FactValidator FromOntology(const ontology::Ontology& onto,
                                    const std::vector<std::string>& attributes);

  /// First violated axiom, or kNone when the fact is admissible.
  RejectReason Check(const StructuredFact& fact) const;

  const ValidatorConfig& config() const { return config_; }

 private:
  ValidatorConfig config_;
};

}  // namespace qa
}  // namespace dwqa

#endif  // DWQA_QA_FACT_VALIDATOR_H_
