#ifndef DWQA_QA_CROSSLINGUAL_H_
#define DWQA_QA_CROSSLINGUAL_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "qa/aliqan.h"

namespace dwqa {
namespace qa {

/// \brief Result of translating a question.
struct Translation {
  std::string english;
  /// Fraction of source tokens covered by the phrase table (proper nouns
  /// and numbers count as covered — they pass through).
  double coverage = 0.0;
  /// Source words the phrase table did not know (excluding pass-throughs).
  std::vector<std::string> unknown_words;
};

/// \brief Spanish → English question translation, phrase-table based.
///
/// AliQAn took part in the CLEF *cross-lingual* tasks (paper §4.1, ref.
/// [2]: "Exploiting Wikipedia and EuroWordNet to Solve Cross-Lingual
/// Question Answering"); this layer reproduces that capability for the
/// question types of this corpus: an ordered longest-match phrase table
/// (interrogative constructions first, then content words, with months and
/// domain vocabulary), proper nouns and numbers passing through.
class SpanishTranslator {
 public:
  /// Translates one question. Inverted punctuation (¿¡) is dropped and
  /// accented vowels are normalized before lookup.
  static Translation Translate(const std::string& spanish_question);

  /// Lowercased, accent-normalized form used for table lookups.
  static std::string Normalize(const std::string& text);
};

/// \brief Cross-lingual facade: Spanish question in, AliQAn answers out.
class CrossLingualAliQAn {
 public:
  /// `aliqan` must be indexed and outlive this object.
  explicit CrossLingualAliQAn(AliQAn* aliqan) : aliqan_(aliqan) {}

  /// Translates, then runs the monolingual search phase. Fails with
  /// InvalidArgument when translation coverage is below `min_coverage`
  /// (the cross-lingual systems' guard against untranslatable input).
  Result<AnswerSet> Ask(const std::string& spanish_question,
                        double min_coverage = 0.5);

  /// The translation of the last Ask call.
  const Translation& last_translation() const { return last_; }

 private:
  AliQAn* aliqan_;
  Translation last_;
};

}  // namespace qa
}  // namespace dwqa

#endif  // DWQA_QA_CROSSLINGUAL_H_
