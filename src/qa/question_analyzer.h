#ifndef DWQA_QA_QUESTION_ANALYZER_H_
#define DWQA_QA_QUESTION_ANALYZER_H_

#include <string>

#include "common/result.h"
#include "ontology/ontology.h"
#include "qa/question.h"

namespace dwqa {
namespace qa {

/// \brief AliQAn Module 1: syntactic analysis of the question, elicitation
/// of its Syntactic Blocks, question-pattern matching, detection of the
/// expected answer type and selection of the main SBs (paper §4.1).
///
/// The ontology supplies the semantic checks of the patterns ("synonym of
/// weather | temperature", "hyponym of country") and the expansion of
/// located entities: once Steps 2–3 have merged the DW contents into the
/// upper ontology, "El Prat" resolves to an airport whose city, Barcelona,
/// is added to the main SBs — exactly the Table 1 behaviour.
class QuestionAnalyzer {
 public:
  explicit QuestionAnalyzer(const ontology::Ontology* onto) : onto_(onto) {}

  Result<QuestionAnalysis> Analyze(const std::string& question) const;

 private:
  /// True if `lemma` is, or is a synonym/hyponym of, concept `target` in
  /// the ontology.
  bool LemmaUnder(const std::string& lemma, const std::string& target) const;

  /// Resolves a proper-noun mention to a city name via the ontology
  /// (instance → airport → partOf city, or the mention already being a
  /// city). Returns "" if unresolvable.
  std::string ResolveCity(const std::string& mention,
                          const std::vector<std::string>& context) const;

  const ontology::Ontology* onto_;
};

}  // namespace qa
}  // namespace dwqa

#endif  // DWQA_QA_QUESTION_ANALYZER_H_
