#ifndef DWQA_QA_DEGRADATION_H_
#define DWQA_QA_DEGRADATION_H_

#include <string>
#include <vector>

namespace dwqa {

namespace ir {
struct Passage;
class DocumentStore;
}  // namespace ir

namespace text {
class AnalyzedCorpus;
}  // namespace text

namespace qa {

struct AnswerCandidate;
struct QuestionAnalysis;

/// \brief How far down the answer ladder AliQAn had to climb for an answer.
///
/// The paper's Step 5 would rather feed the warehouse a lower-confidence
/// row (the URL is stored precisely so "the user can select the more useful
/// data", §4.2) than feed nothing; mediator systems over heterogeneous
/// sources (OntMed) call this graceful degradation. Levels are ordered:
/// a higher value is a worse answer.
enum class DegradationLevel {
  /// Full syntactic-pattern extraction (Module 3 as published).
  kFull = 0,
  /// Pattern-relaxed extraction: bare mentions without the strict lexical
  /// shape (a number with no unit, a proper noun with no semantic
  /// preference). Low confidence by construction.
  kRelaxedPattern,
  /// No extraction succeeded; the best retrieved passage is returned as an
  /// IR-style answer (a pointer, not a value — never feedable to a
  /// measure).
  kIrOnly,
  /// Even retrieval produced nothing; the AnswerSet records why.
  kUnanswered,
};

/// "Full", "RelaxedPattern", "IrOnly", "Unanswered" — stable names for
/// reports, CSV columns and tests.
const char* DegradationLevelName(DegradationLevel level);

/// All levels in order, for iteration in reports.
const std::vector<DegradationLevel>& AllDegradationLevels();

/// \brief Tuning of the answer ladder. Both rungs default OFF so the
/// published extraction behaviour (and every golden test built on it) is
/// untouched unless a caller opts in.
struct DegradationConfig {
  /// Rung 2: pattern-relaxed extraction when full extraction is empty.
  bool enable_relaxed = false;
  /// Rung 3: IR-only best-passage answer when even rung 2 is empty.
  bool enable_ir_only = false;
  /// Score assigned to relaxed candidates (kept deliberately below any
  /// full-pattern score so a confidence floor can cut the ladder).
  double relaxed_score = 0.1;
  /// Score assigned to the IR-only passage answer.
  double ir_only_score = 0.05;

  bool enabled() const { return enable_relaxed || enable_ir_only; }
};

/// Rung 2: extracts bare mentions (numbers for numerical/temporal
/// questions, proper nouns otherwise) from the retrieved passages without
/// the strict answer patterns. Candidates carry `config.relaxed_score` and
/// DegradationLevel::kRelaxedPattern.
///
/// When `corpus` is non-null and holds the passage's document, the rung
/// pattern-matches over the cached indexation-time sentence analyses (the
/// passage's [first_sentence, last_sentence] range); otherwise it
/// re-analyzes the passage text on the fly. Both paths are byte-identical
/// on the same text.
std::vector<AnswerCandidate> RelaxedExtract(
    const QuestionAnalysis& q, const std::vector<ir::Passage>& passages,
    const ir::DocumentStore* docs, const DegradationConfig& config,
    size_t max_answers, const text::AnalyzedCorpus* corpus = nullptr);

/// Rung 3: wraps the best retrieved passage as a valueless answer carrying
/// `config.ir_only_score` and DegradationLevel::kIrOnly. Empty when there
/// are no passages.
std::vector<AnswerCandidate> IrOnlyAnswers(
    const std::vector<ir::Passage>& passages, const ir::DocumentStore* docs,
    const DegradationConfig& config);

}  // namespace qa
}  // namespace dwqa

#endif  // DWQA_QA_DEGRADATION_H_
