#include "qa/aliqan.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"
#include "common/metric_names.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "ir/html.h"
#include "qa/answer_extractor.h"
#include "qa/degradation.h"
#include "qa/question_analyzer.h"

namespace dwqa {
namespace qa {

namespace {

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

std::string DefaultPreprocess(const ir::Document& doc) {
  if (doc.format == ir::DocFormat::kPlainText) return doc.raw;
  return ir::Html::StripTags(doc.raw);
}

}  // namespace

AliQAn::AliQAn(const ontology::Ontology* onto, AliQAnConfig config)
    : onto_(onto),
      config_(config),
      preprocessor_(DefaultPreprocess),
      merge_pool_(config.index_merge_threads > 0
                      ? std::make_unique<ThreadPool>(config.index_merge_threads)
                      : nullptr),
      passage_index_(config.passage_window, corpus_.mutable_dictionary(),
                     EffectiveIndexOptions()),
      doc_index_(corpus_.mutable_dictionary(), EffectiveIndexOptions()) {}

ir::SegmentedIndexOptions AliQAn::EffectiveIndexOptions() const {
  ir::SegmentedIndexOptions options = config_.index_options;
  options.merge_pool = merge_pool_.get();
  return options;
}

void AliQAn::set_preprocessor(Preprocessor preprocessor) {
  preprocessor_ = std::move(preprocessor);
}

void AliQAn::set_metrics(MetricRegistry* metrics) {
  metrics_ = metrics;
  passage_index_.set_metrics(metrics);
  doc_index_.set_metrics(metrics);
}

Status AliQAn::IndexCorpus(const ir::DocumentStore* docs) {
  if (docs == nullptr) {
    return Status::InvalidArgument("document store must not be null");
  }
  timings_.indexation_ms = 0.0;
  timings_.indexation_sentences = 0;
  if (deadline_ != nullptr) {
    DWQA_RETURN_NOT_OK(deadline_->Spend("qa.index"));
  }
  auto start = std::chrono::steady_clock::now();
  docs_ = docs;
  corpus_.Clear();
  plain_.clear();
  if (config_.reanalyze_per_question) {
    // Ablation: raw-string indexing, all linguistic analysis deferred to
    // the per-question search phase (the pre-AnalyzedCorpus behaviour).
    plain_.reserve(docs->size());
    passage_index_ =
        ir::PassageIndex(config_.passage_window, corpus_.mutable_dictionary(),
                         EffectiveIndexOptions());
    doc_index_ = ir::InvertedIndex(corpus_.mutable_dictionary(),
                                   EffectiveIndexOptions());
    passage_index_.set_metrics(metrics_);
    doc_index_.set_metrics(metrics_);
    for (const ir::Document& doc : docs->documents()) {
      std::string plain = preprocessor_(doc);
      passage_index_.AddDocument(doc.id, plain);
      doc_index_.AddDocument(doc.id, plain);
      plain_.push_back(std::move(plain));
    }
  } else {
    passage_index_ =
        ir::PassageIndex(config_.passage_window, corpus_.mutable_dictionary(),
                         EffectiveIndexOptions());
    doc_index_ = ir::InvertedIndex(corpus_.mutable_dictionary(),
                                   EffectiveIndexOptions());
    passage_index_.set_metrics(metrics_);
    doc_index_.set_metrics(metrics_);
    // Parallel analysis needs an unlimited budget: with a finite one, the
    // point of mid-run exhaustion depends on completion order, so the
    // serial path is the only deterministic choice.
    bool parallel = config_.threads > 1 &&
                    (deadline_ == nullptr || deadline_->unlimited());
    if (config_.threads > 1 && !parallel) {
      DWQA_LOG(Info) << "qa.index: threads=" << config_.threads
                     << " ignored under a finite deadline budget;"
                     << " indexing serially";
    }
    if (parallel) {
      // Preprocessing and linguistic analysis fan out over the pool; the
      // dictionary remap, deadline charges and both AddAnalyzed index
      // builds stay serialized in document order, so every id and posting
      // is byte-identical to the serial build.
      const auto& documents = docs->documents();
      std::vector<text::AnalyzedCorpus::DocKey> keys(documents.size());
      std::vector<std::string> plains(documents.size());
      ThreadPool pool(config_.threads);
      pool.ParallelFor(documents.size(), [&](size_t i) {
        keys[i] = documents[i].id;
        plains[i] = preprocessor_(documents[i]);
      });
      corpus_.AddBatch(keys, std::move(plains), &pool);
      std::vector<std::pair<ir::DocId, const text::AnalyzedDocument*>> batch;
      batch.reserve(documents.size());
      for (const ir::Document& doc : documents) {
        const text::AnalyzedDocument* analysis = corpus_.Find(doc.id);
        if (deadline_ != nullptr) {
          DWQA_RETURN_NOT_OK(deadline_->Spend(
              "qa.index.analysis",
              static_cast<double>(analysis->sentences.size())));
        }
        batch.emplace_back(doc.id, analysis);
      }
      // Both indexes build their postings shards concurrently on the same
      // pool — one sealed segment per shard, byte-identical to the serial
      // AddAnalyzed loop (AddAnalyzedBatch's contract).
      passage_index_.AddAnalyzedBatch(batch, &pool);
      doc_index_.AddAnalyzedBatch(batch, &pool);
    } else {
      for (const ir::Document& doc : docs->documents()) {
        const text::AnalyzedDocument& analysis =
            corpus_.Add(doc.id, preprocessor_(doc));
        // The linguistic cost now lives off-line: one unit per analyzed
        // sentence, charged where the work happens (Figure 3's indexation
        // phase), so the search phase only pays for pattern matching.
        if (deadline_ != nullptr) {
          DWQA_RETURN_NOT_OK(deadline_->Spend(
              "qa.index.analysis",
              static_cast<double>(analysis.sentences.size())));
        }
        passage_index_.AddAnalyzed(doc.id, analysis);
        doc_index_.AddAnalyzed(doc.id, analysis);
      }
    }
    timings_.indexation_sentences = corpus_.sentence_count();
  }
  indexed_docs_ = docs->size();
  timings_.indexation_ms = MsSince(start);
  if (metrics_ != nullptr) {
    metrics_
        ->GetCounter(kMetricQaIndexDocuments, {},
                     "Documents indexed by IndexCorpus")
        ->Increment(static_cast<double>(docs->size()));
    metrics_
        ->GetCounter(kMetricQaIndexSentences, {},
                     "Sentences linguistically analyzed at indexation time")
        ->Increment(static_cast<double>(timings_.indexation_sentences));
    metrics_
        ->GetHistogram(kMetricQaIndexLatency, {},
                       MetricRegistry::LatencyBucketsMs(),
                       "Wall time of IndexCorpus runs")
        ->Observe(timings_.indexation_ms);
  }
  return Status::OK();
}

Result<size_t> AliQAn::IngestNewDocuments() {
  if (docs_ == nullptr) {
    return Status::Internal(
        "IndexCorpus must run before incremental ingest");
  }
  const auto& documents = docs_->documents();
  size_t added = 0;
  while (indexed_docs_ < documents.size()) {
    const ir::Document& doc = documents[indexed_docs_];
    ++indexed_docs_;
    ++added;
    if (config_.reanalyze_per_question) {
      std::string plain = preprocessor_(doc);
      passage_index_.AddDocument(doc.id, plain);
      doc_index_.AddDocument(doc.id, plain);
      plain_.push_back(std::move(plain));
      continue;
    }
    const text::AnalyzedDocument& analysis =
        corpus_.Add(doc.id, preprocessor_(doc));
    passage_index_.AddAnalyzed(doc.id, analysis);
    doc_index_.AddAnalyzed(doc.id, analysis);
    timings_.indexation_sentences += analysis.sentences.size();
    // Same per-sentence charge as IndexCorpus: the linguistic work is
    // billed where it happens. The cursor has already advanced past this
    // document, so a retry after a budget refill resumes with the next.
    if (deadline_ != nullptr) {
      DWQA_RETURN_NOT_OK(deadline_->Spend(
          "qa.index.analysis",
          static_cast<double>(analysis.sentences.size())));
    }
  }
  if (metrics_ != nullptr && added > 0) {
    metrics_
        ->GetCounter(kMetricIndexIngestDocs, {},
                     "Documents made searchable via incremental ingest")
        ->Increment(static_cast<double>(added));
  }
  return added;
}

Result<QuestionAnalysis> AliQAn::AnalyzeQuestion(
    const std::string& question) const {
  QuestionAnalyzer analyzer(onto_);
  return analyzer.Analyze(question);
}

Result<std::vector<ir::Passage>> AliQAn::SelectPassages(
    const QuestionAnalysis& analysis) const {
  if (docs_ == nullptr) {
    return Status::Internal("IndexCorpus must run before the search phase");
  }
  // The retrieval query is the concatenation of the main SBs (Table 1:
  // "Main SBs passed to the IR-n passage retrieval system").
  std::string query = Join(analysis.main_sbs, " ");
  if (Trim(query).empty()) query = analysis.question;
  return passage_index_.Search(query, config_.passages_to_analyze);
}

Result<std::string> AliQAn::PlainText(ir::DocId doc) const {
  if (config_.reanalyze_per_question) {
    if (doc < 0 || static_cast<size_t>(doc) >= plain_.size()) {
      return Status::NotFound("document " + std::to_string(doc) +
                              " is not indexed");
    }
    return plain_[static_cast<size_t>(doc)];
  }
  const text::AnalyzedDocument* analysis = corpus_.Find(doc);
  if (analysis == nullptr) {
    return Status::NotFound("document " + std::to_string(doc) +
                            " is not indexed");
  }
  return analysis->plain;
}

Result<AnswerSet> AliQAn::Ask(const std::string& question,
                              TraceRecorder* trace) {
  return AskWith(question, &timings_, deadline_, trace);
}

Result<AnswerSet> AliQAn::AskWith(const std::string& question,
                                  PhaseTimings* timings,
                                  Deadline* deadline,
                                  TraceRecorder* trace) const {
  PhaseTimings discard;
  if (timings == nullptr) timings = &discard;
  if (docs_ == nullptr) {
    return Status::Internal("IndexCorpus must run before the search phase");
  }
  // Per-call reset: the search-phase fields describe this call only.
  timings->analysis_ms = 0.0;
  timings->retrieval_ms = 0.0;
  timings->extraction_ms = 0.0;
  timings->sentences_analyzed = 0;
  timings->sentences_analyzed_cached = 0;
  AnswerSet result;
  Span ask_span(trace, "qa.ask");
  ask_span.Annotate("question", question);
  if (metrics_ != nullptr) {
    metrics_
        ->GetCounter(kMetricQaQuestions, {}, "Questions the QA engine ran")
        ->Increment();
  }

  auto t0 = std::chrono::steady_clock::now();
  if (deadline != nullptr) {
    DWQA_RETURN_NOT_OK(deadline->Spend("qa.analysis"));
  }
  {
    Span span(trace, "qa.analysis");
    DWQA_ASSIGN_OR_RETURN(result.analysis, AnalyzeQuestion(question));
    span.Annotate("answer_type",
                  AnswerTypeName(result.analysis.answer_type));
  }
  timings->analysis_ms = MsSince(t0);

  // Module 2 (or the unfiltered ablation).
  auto t1 = std::chrono::steady_clock::now();
  if (deadline != nullptr) {
    DWQA_RETURN_NOT_OK(deadline->Spend("qa.retrieval"));
  }
  Span retrieval_span(trace, "ir.retrieval");
  std::vector<ir::Passage> passages;
  if (config_.use_ir_filter) {
    DWQA_ASSIGN_OR_RETURN(passages, SelectPassages(result.analysis));
  } else {
    for (const ir::Document& doc : docs_->documents()) {
      ir::Passage p;
      p.doc = doc.id;
      p.first_sentence = 0;
      if (config_.reanalyze_per_question) {
        p.text = plain_[static_cast<size_t>(doc.id)];
      } else {
        const text::AnalyzedDocument* analysis = corpus_.Find(doc.id);
        p.text = analysis->plain;
        p.last_sentence =
            analysis->sentences.empty() ? 0 : analysis->sentences.size() - 1;
      }
      passages.push_back(std::move(p));
    }
  }
  retrieval_span.Annotate("passages", static_cast<double>(passages.size()));
  retrieval_span.End();
  timings->retrieval_ms = MsSince(t1);

  // Module 3: pattern matching over the cached indexation-time analyses
  // (or full re-analysis under the reanalyze_per_question ablation).
  auto t2 = std::chrono::steady_clock::now();
  Span extraction_span(trace, "qa.extraction");
  AnswerExtractor extractor(onto_);
  std::vector<AnswerCandidate> candidates;
  size_t sentences = 0;
  size_t cached = 0;
  for (const ir::Passage& p : passages) {
    // One budget unit per analyzed passage. An exhausted budget does not
    // fail the question: extraction stops and the ladder answers from
    // whatever was already retrieved/extracted.
    if (deadline != nullptr &&
        !deadline->Spend("qa.extraction").ok()) {
      break;
    }
    result.passages.push_back(p.text);
    const std::string& url =
        docs_->IsValid(p.doc) ? docs_->Get(p.doc).url : "";
    std::vector<AnswerCandidate> found;
    const text::AnalyzedDocument* analysis =
        config_.reanalyze_per_question ? nullptr : corpus_.Find(p.doc);
    if (analysis != nullptr &&
        p.first_sentence < analysis->sentences.size()) {
      size_t last =
          std::min(p.last_sentence, analysis->sentences.size() - 1);
      text::SentenceView view;
      view.reserve(last - p.first_sentence + 1);
      for (size_t s = p.first_sentence; s <= last; ++s) {
        view.push_back(&analysis->sentences[s]);
      }
      found = extractor.ExtractAnalyzed(result.analysis, view,
                                        corpus_.dictionary(), p.text,
                                        p.doc, url);
      sentences += view.size();
      cached += view.size();
    } else {
      found = extractor.Extract(result.analysis, p.text, p.doc, url);
      for (char c : p.text) sentences += (c == '\n') ? 1 : 0;
      ++sentences;
    }
    for (AnswerCandidate& cand : found) {
      candidates.push_back(std::move(cand));
    }
  }
  result.answers =
      AnswerExtractor::Rank(std::move(candidates), config_.max_answers);
  extraction_span.Annotate("sentences", static_cast<double>(sentences));
  extraction_span.Annotate("candidates",
                           static_cast<double>(result.answers.size()));
  extraction_span.End();

  // The answer ladder (qa/degradation.h): when the published extraction
  // path comes up empty, climb down rung by rung rather than answer
  // nothing. Both rungs are opt-in.
  if (result.answers.empty() && config_.degradation.enable_relaxed) {
    Span span(trace, "qa.ladder.relaxed");
    result.answers = AnswerExtractor::Rank(
        RelaxedExtract(result.analysis, passages, docs_,
                       config_.degradation, config_.max_answers,
                       config_.reanalyze_per_question ? nullptr : &corpus_),
        config_.max_answers);
    if (!result.answers.empty()) {
      result.degradation = DegradationLevel::kRelaxedPattern;
    }
    span.Annotate("answers", static_cast<double>(result.answers.size()));
  }
  if (result.answers.empty() && config_.degradation.enable_ir_only) {
    Span span(trace, "qa.ladder.ir_only");
    result.answers =
        IrOnlyAnswers(passages, docs_, config_.degradation);
    if (!result.answers.empty()) {
      result.degradation = DegradationLevel::kIrOnly;
    }
    span.Annotate("answers", static_cast<double>(result.answers.size()));
  }
  if (result.answers.empty()) {
    result.degradation = DegradationLevel::kUnanswered;
    result.unanswered_reason = passages.empty()
                                   ? "no passages retrieved"
                                   : "no candidates extracted from " +
                                         std::to_string(passages.size()) +
                                         " passage(s)";
  }

  result.sentences_analyzed = sentences;
  timings->extraction_ms = MsSince(t2);
  timings->sentences_analyzed = sentences;
  timings->sentences_analyzed_cached = cached;
  ask_span.Annotate("level", DegradationLevelName(result.degradation));
  if (metrics_ != nullptr) {
    metrics_
        ->GetCounter(kMetricQaAnswers,
                     {{"level", DegradationLevelName(result.degradation)}},
                     "Answer sets produced, by degradation level")
        ->Increment();
    Histogram* phase = metrics_->GetHistogram(
        kMetricQaPhaseLatency, {{"phase", "analysis"}},
        MetricRegistry::LatencyBucketsMs(),
        "Latency of the three search-phase modules");
    phase->Observe(timings->analysis_ms);
    metrics_
        ->GetHistogram(kMetricQaPhaseLatency, {{"phase", "retrieval"}},
                       MetricRegistry::LatencyBucketsMs())
        ->Observe(timings->retrieval_ms);
    metrics_
        ->GetHistogram(kMetricQaPhaseLatency, {{"phase", "extraction"}},
                       MetricRegistry::LatencyBucketsMs())
        ->Observe(timings->extraction_ms);
    if (cached > 0) {
      metrics_
          ->GetCounter(kMetricQaSentencesAnalyzed, {{"source", "cached"}},
                       "Sentences the extraction module consumed, by "
                       "analysis source")
          ->Increment(static_cast<double>(cached));
    }
    if (sentences > cached) {
      metrics_
          ->GetCounter(kMetricQaSentencesAnalyzed, {{"source", "fresh"}},
                       "Sentences the extraction module consumed, by "
                       "analysis source")
          ->Increment(static_cast<double>(sentences - cached));
    }
  }
  return result;
}

}  // namespace qa
}  // namespace dwqa
