#include "qa/structured.h"

#include <cmath>

#include "common/csv.h"
#include "common/string_util.h"

namespace dwqa {
namespace qa {

const char* FactDispositionName(FactDisposition disposition) {
  switch (disposition) {
    case FactDisposition::kLoaded:
      return "Loaded";
    case FactDisposition::kDeduplicated:
      return "Deduplicated";
    case FactDisposition::kQuarantined:
      return "Quarantined";
    case FactDisposition::kRejected:
      return "Rejected";
  }
  return "Unknown";
}

std::string StructuredFact::ToDisplayString() const {
  std::string out = "(";
  out += FormatDouble(value, value == static_cast<int64_t>(value) ? 0 : 1);
  out += unit;
  out += " \xE2\x80\x93 ";
  out += date.has_value() ? date->ToLongString() : "?";
  out += " \xE2\x80\x93 ";
  out += location.empty() ? "?" : location;
  out += " \xE2\x80\x93 ";
  out += url.empty() ? "?" : url;
  out += ")";
  return out;
}

Result<StructuredFact> ToStructuredFact(const AnswerCandidate& answer,
                                        const std::string& attribute) {
  if (!answer.has_value) {
    return Status::InvalidArgument(
        "answer '" + answer.answer_text +
        "' carries no numeric value; cannot feed a measure");
  }
  if (!std::isfinite(answer.value)) {
    return Status::InvalidArgument(
        "answer '" + answer.answer_text +
        "' carries a non-finite value; cannot feed a measure");
  }
  StructuredFact fact;
  fact.attribute = attribute;
  fact.value = answer.value;
  fact.unit = answer.unit;
  fact.date = answer.date;
  fact.location = answer.location;
  fact.url = answer.url;
  fact.confidence = answer.score;
  fact.level = answer.level;
  return fact;
}

std::vector<StructuredFact> ToStructuredFacts(const AnswerSet& answers,
                                              const std::string& attribute) {
  std::vector<StructuredFact> out;
  for (const AnswerCandidate& a : answers.answers) {
    auto fact = ToStructuredFact(a, attribute);
    if (fact.ok()) out.push_back(std::move(fact).ValueOrDie());
  }
  return out;
}

std::string StructuredFactsToCsv(const std::vector<StructuredFact>& facts) {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"attribute", "value", "unit", "date", "location", "url",
                  "confidence", "level", "disposition"});
  for (const StructuredFact& f : facts) {
    rows.push_back({f.attribute, FormatDouble(f.value, 2), f.unit,
                    f.date.has_value() ? f.date->ToIsoString() : "",
                    f.location, f.url, FormatDouble(f.confidence, 2),
                    DegradationLevelName(f.level),
                    FactDispositionName(f.disposition)});
  }
  return Csv::Render(rows);
}

}  // namespace qa
}  // namespace dwqa
