#ifndef DWQA_QA_ANSWER_EXTRACTOR_H_
#define DWQA_QA_ANSWER_EXTRACTOR_H_

#include <string>
#include <vector>

#include "common/interner.h"
#include "ontology/ontology.h"
#include "qa/answer.h"
#include "qa/question.h"
#include "text/analyzed_corpus.h"

namespace dwqa {
namespace qa {

/// \brief AliQAn Module 3: extraction of the answer from retrieved passages
/// using syntactic-semantic answer patterns (paper §4.1).
///
/// Per answer type the module looks for the lexical shape the taxonomy
/// prescribes (a temperature is "a number lexical type followed by the
/// unit-measure (ºC or F)"; a place answer is a proper noun with "a semantic
/// preference to the hyponyms" of the type concept) and scores candidates
/// by (a) main-SB term coverage in the candidate's sentence and passage,
/// (b) satisfaction of the type constraints, (c) agreement with the
/// question's date constraint, and (d) the Step-4 axioms attached to the
/// ontology (plausible temperature intervals, ºC/ºF consistency).
///
/// The linguistic analysis of the passage (tokenize/tag/lemmatize, date
/// recognition) belongs to the off-line indexation phase: the fast path
/// (ExtractAnalyzed) only pattern-matches over cached AnalyzedSentences.
/// Extract is the legacy entry that re-analyzes raw passage text on the fly
/// — kept for callers without an AnalyzedCorpus and as the before/after
/// ablation of the golden-equivalence suite; both paths produce
/// byte-identical candidates for the same text.
class AnswerExtractor {
 public:
  explicit AnswerExtractor(const ontology::Ontology* onto) : onto_(onto) {}

  /// Extracts and scores the candidates of one passage, re-analyzing
  /// `passage_text` sentence by sentence (the slow, pre-corpus path).
  std::vector<AnswerCandidate> Extract(const QuestionAnalysis& question,
                                       const std::string& passage_text,
                                       ir::DocId doc,
                                       const std::string& url) const;

  /// Extracts from cached sentence analyses. `sentences` is the passage's
  /// consecutive sentence range (views into an AnalyzedCorpus whose
  /// dictionary is `dict`); `passage_text` is the passage's display text.
  std::vector<AnswerCandidate> ExtractAnalyzed(
      const QuestionAnalysis& question, const text::SentenceView& sentences,
      const TermDictionary& dict, const std::string& passage_text,
      ir::DocId doc, const std::string& url) const;

  /// Merges, deduplicates (by normalized answer text) and ranks candidate
  /// lists from several passages.
  static std::vector<AnswerCandidate> Rank(
      std::vector<AnswerCandidate> candidates, size_t max_answers);

 private:
  /// True if some sense of `lemma` is under the concept for `type`.
  bool SatisfiesTypeConcept(const std::string& mention,
                            AnswerType type) const;

  /// Plausibility per the temperature axioms (Step 4). `scale` '?' passes
  /// with a Celsius assumption.
  bool TemperaturePlausible(double value, char scale) const;

  const ontology::Ontology* onto_;
};

}  // namespace qa
}  // namespace dwqa

#endif  // DWQA_QA_ANSWER_EXTRACTOR_H_
