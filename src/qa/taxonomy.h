#ifndef DWQA_QA_TAXONOMY_H_
#define DWQA_QA_TAXONOMY_H_

#include <string>

namespace dwqa {
namespace qa {

/// \brief AliQAn's answer-type taxonomy (paper §4.1) — exactly the twenty
/// categories listed there, "based on WordNet Based-Types and EuroWordNet
/// Top-Concepts".
enum class AnswerType {
  kPerson,
  kProfession,
  kGroup,
  kObject,
  kPlaceCity,
  kPlaceCountry,
  kPlaceCapital,
  kPlace,
  kAbbreviation,
  kEvent,
  kNumericalEconomic,
  kNumericalAge,
  kNumericalMeasure,
  kNumericalPeriod,
  kNumericalPercentage,
  kNumericalQuantity,
  kTemporalYear,
  kTemporalMonth,
  kTemporalDate,
  kDefinition,
};

constexpr int kAnswerTypeCount = 20;

/// Paper-style name: "person", "numerical economic", "temporal date", ...
const char* AnswerTypeName(AnswerType type);

/// All twenty types, in declaration order (for sweeps).
const AnswerType* AllAnswerTypes();

bool IsNumerical(AnswerType type);
bool IsTemporal(AnswerType type);
bool IsPlace(AnswerType type);

/// The upper-ontology concept lemma backing a semantic type check
/// ("person" → person subtree, "place city" → city, ...). Empty for types
/// checked lexically (numerical/temporal/abbreviation/definition).
std::string TypeConceptLemma(AnswerType type);

}  // namespace qa
}  // namespace dwqa

#endif  // DWQA_QA_TAXONOMY_H_
