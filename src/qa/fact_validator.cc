#include "qa/fact_validator.h"

#include <cmath>
#include <cstdlib>

#include "common/string_util.h"

namespace dwqa {
namespace qa {

const char* RejectReasonName(RejectReason reason) {
  switch (reason) {
    case RejectReason::kNone:
      return "None";
    case RejectReason::kNonFiniteValue:
      return "NonFiniteValue";
    case RejectReason::kValueOutOfRange:
      return "ValueOutOfRange";
    case RejectReason::kBadUnit:
      return "BadUnit";
    case RejectReason::kInvalidDate:
      return "InvalidDate";
    case RejectReason::kMissingLocation:
      return "MissingLocation";
    case RejectReason::kEtlRejected:
      return "EtlRejected";
    case RejectReason::kTransientExhausted:
      return "TransientExhausted";
    case RejectReason::kCircuitOpen:
      return "CircuitOpen";
    case RejectReason::kBelowConfidenceFloor:
      return "BelowConfidenceFloor";
    case RejectReason::kWalFailed:
      return "WalFailed";
    case RejectReason::kWalCorrupt:
      return "WalCorrupt";
  }
  return "Unknown";
}

const std::vector<RejectReason>& AllRejectReasons() {
  static const auto* kAll = new std::vector<RejectReason>{
      RejectReason::kNonFiniteValue,   RejectReason::kValueOutOfRange,
      RejectReason::kBadUnit,          RejectReason::kInvalidDate,
      RejectReason::kMissingLocation,  RejectReason::kEtlRejected,
      RejectReason::kTransientExhausted, RejectReason::kCircuitOpen,
      RejectReason::kBelowConfidenceFloor, RejectReason::kWalFailed,
      RejectReason::kWalCorrupt};
  return *kAll;
}

Result<RejectReason> RejectReasonFromName(const std::string& name) {
  if (name == "None") return RejectReason::kNone;
  for (RejectReason reason : AllRejectReasons()) {
    if (name == RejectReasonName(reason)) return reason;
  }
  return Status::InvalidArgument("unknown reject reason '" + name + "'");
}

FactValidator::FactValidator(ValidatorConfig config)
    : config_(std::move(config)) {}

FactValidator FactValidator::FromOntology(
    const ontology::Ontology& onto,
    const std::vector<std::string>& attributes) {
  ValidatorConfig config;
  for (const std::string& attribute : attributes) {
    auto concept_id = onto.FindClass(attribute);
    if (!concept_id.ok()) continue;  // No concept → fall back to defaults.
    AttributeRule rule;
    if (auto unit = onto.GetAxiom(*concept_id, "unit"); unit.ok()) {
      rule.allowed_units = Split(*unit, '|');
    }
    // The interval axioms come in a generic form (min/max) or the
    // temperature-specific Celsius form of pipeline Step 4.
    for (const char* key : {"min", "min_celsius"}) {
      if (auto min = onto.GetAxiom(*concept_id, key); min.ok()) {
        rule.min_value = std::strtod(min->c_str(), nullptr);
      }
    }
    for (const char* key : {"max", "max_celsius"}) {
      if (auto max = onto.GetAxiom(*concept_id, key); max.ok()) {
        rule.max_value = std::strtod(max->c_str(), nullptr);
      }
    }
    config.rules[attribute] = std::move(rule);
  }
  return FactValidator(std::move(config));
}

RejectReason FactValidator::Check(const StructuredFact& fact) const {
  auto it = config_.rules.find(fact.attribute);
  const AttributeRule& rule =
      it == config_.rules.end() ? config_.default_rule : it->second;

  if (fact.confidence < config_.confidence_floor) {
    return RejectReason::kBelowConfidenceFloor;
  }
  if (!std::isfinite(fact.value)) return RejectReason::kNonFiniteValue;
  if (!rule.allowed_units.empty()) {
    bool unit_ok = !rule.require_unit && fact.unit.empty();
    for (const std::string& unit : rule.allowed_units) {
      if (fact.unit == unit) unit_ok = true;
    }
    if (!unit_ok) return RejectReason::kBadUnit;
  } else if (rule.require_unit && fact.unit.empty()) {
    return RejectReason::kBadUnit;
  }
  // Range check against the attribute's canonical scale. A Fahrenheit
  // reading is converted first — the axiom interval speaks Celsius (the
  // paper's "conversion formulae between Celsius and Fahrenheit scales").
  double value = fact.value;
  if (fact.unit == "F") value = (value - 32.0) * 5.0 / 9.0;
  if (value < rule.min_value || value > rule.max_value) {
    return RejectReason::kValueOutOfRange;
  }
  if (fact.date.has_value() && !fact.date->IsValid()) {
    return RejectReason::kInvalidDate;
  }
  if (rule.require_location &&
      (fact.location.empty() || fact.location == "?")) {
    return RejectReason::kMissingLocation;
  }
  return RejectReason::kNone;
}

}  // namespace qa
}  // namespace dwqa
