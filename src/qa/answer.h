#ifndef DWQA_QA_ANSWER_H_
#define DWQA_QA_ANSWER_H_

#include <optional>
#include <string>
#include <vector>

#include "common/date.h"
#include "ir/document.h"
#include "qa/degradation.h"
#include "qa/question.h"
#include "qa/taxonomy.h"

namespace dwqa {
namespace qa {

/// \brief One candidate answer extracted from a passage — the precise,
/// structured output that distinguishes QA from IR in the paper (§1,
/// difference 2): not a document but "(8ºC – Monday, January 31, 2004 –
/// Barcelona)".
struct AnswerCandidate {
  /// Display form of the answer ("8\xC2\xBA\x43", "Kuwait").
  std::string answer_text;
  AnswerType type = AnswerType::kObject;
  double score = 0.0;
  /// Ladder rung that produced this candidate (kFull = the published
  /// extraction path; see qa/degradation.h).
  DegradationLevel level = DegradationLevel::kFull;

  /// The sentence the answer was extracted from.
  std::string sentence;
  /// The passage handed over by the retrieval module.
  std::string passage_text;
  ir::DocId doc = ir::kInvalidDoc;
  std::string url;

  /// \name Structured slots (filled when applicable)
  /// @{
  bool has_value = false;
  double value = 0.0;
  /// Unit of a numerical answer: "\xC2\xBA\x43", "F", "%", "EUR"...; empty
  /// when the unit could not be associated (the Figure 5 failure mode).
  std::string unit;
  std::optional<Date> date;
  bool date_complete = false;
  /// City the answer is about, resolved via ontology/context.
  std::string location;
  /// @}
};

/// \brief Final output of one AliQAn query.
struct AnswerSet {
  QuestionAnalysis analysis;
  /// Ranked candidates, best first.
  std::vector<AnswerCandidate> answers;
  /// Passages that were analyzed (for Table 1 display).
  std::vector<std::string> passages;
  size_t sentences_analyzed = 0;
  /// Worst rung the ladder had to climb for this set: kFull when the
  /// published path answered, kUnanswered when nothing did.
  DegradationLevel degradation = DegradationLevel::kFull;
  /// Why the set is empty (only meaningful at kUnanswered).
  std::string unanswered_reason;

  bool empty() const { return answers.empty(); }
  const AnswerCandidate& best() const { return answers.front(); }
};

}  // namespace qa
}  // namespace dwqa

#endif  // DWQA_QA_ANSWER_H_
