#include "common/thread_pool.h"

#include <atomic>
#include <exception>

namespace dwqa {

ThreadPool::ThreadPool(size_t threads) {
  if (threads <= 1) return;  // Inline mode: no workers, serial semantics.
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this]() { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and drained.
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    // Inline mode: strict index order, same completion semantics as the
    // pooled path — a throwing index does not cancel the round, and the
    // lowest-index exception is rethrown once every index ran.
    std::exception_ptr first_error;
    for (size_t i = 0; i < n; ++i) {
      try {
        fn(i);
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (first_error) std::rethrow_exception(first_error);
    return;
  }

  // Shared state of one ParallelFor round. The caller blocks until
  // `done == n`, so capturing `fn` and the counters by reference is safe.
  struct Round {
    std::atomic<size_t> next{0};
    std::mutex mu;
    std::condition_variable done_cv;
    size_t done = 0;
    std::vector<std::exception_ptr> errors;
  };
  auto round = std::make_shared<Round>();
  round->errors.resize(n);

  auto drain = [round, n, &fn]() {
    for (;;) {
      size_t i = round->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        round->errors[i] = std::current_exception();
      }
      {
        std::lock_guard<std::mutex> lock(round->mu);
        ++round->done;
      }
      round->done_cv.notify_one();
    }
  };

  // Hand one dispenser loop to each worker; the caller runs one too, so
  // progress never depends on workers being idle.
  const size_t helpers = std::min(workers_.size(), n);
  for (size_t w = 0; w < helpers; ++w) Enqueue(drain);
  drain();
  {
    std::unique_lock<std::mutex> lock(round->mu);
    round->done_cv.wait(lock, [&]() { return round->done == n; });
  }
  for (size_t i = 0; i < n; ++i) {
    if (round->errors[i]) std::rethrow_exception(round->errors[i]);
  }
}

}  // namespace dwqa
