#include "common/circuit_breaker.h"

namespace dwqa {

const char* BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "Closed";
    case BreakerState::kOpen:
      return "Open";
    case BreakerState::kHalfOpen:
      return "HalfOpen";
  }
  return "Unknown";
}

Status BreakerConfig::Validate() const {
  if (failure_threshold == 0) {
    return Status::InvalidArgument(
        "breaker failure_threshold must be >= 1 (a zero threshold would "
        "reject every call forever)");
  }
  return Status::OK();
}

bool CircuitBreaker::WouldAllow() const {
  if (!config_.enabled) return true;
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      return cooldown_progress_ >= config_.cooldown_attempts;
    case BreakerState::kHalfOpen:
      return !probe_outstanding_;
  }
  return true;
}

bool CircuitBreaker::Allow() {
  if (!config_.enabled) return true;
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      if (cooldown_progress_ >= config_.cooldown_attempts) {
        // Cool-down served: this admission is the half-open probe.
        state_ = BreakerState::kHalfOpen;
        probe_outstanding_ = true;
        return true;
      }
      ++cooldown_progress_;
      ++rejected_;
      return false;
    case BreakerState::kHalfOpen:
      if (!probe_outstanding_) {
        probe_outstanding_ = true;
        return true;
      }
      ++rejected_;
      return false;
  }
  return true;
}

void CircuitBreaker::RecordSuccess() {
  consecutive_failures_ = 0;
  if (!config_.enabled) return;
  if (state_ == BreakerState::kHalfOpen) {
    // The probe came back healthy: the dependency recovered.
    state_ = BreakerState::kClosed;
    cooldown_progress_ = 0;
    probe_outstanding_ = false;
  }
}

void CircuitBreaker::RecordFailure() {
  ++consecutive_failures_;
  ++total_failures_;
  if (!config_.enabled) return;
  if (state_ == BreakerState::kHalfOpen) {
    // Probe failed: back to open, cool-down restarts from zero.
    state_ = BreakerState::kOpen;
    cooldown_progress_ = 0;
    probe_outstanding_ = false;
    ++opens_;
    return;
  }
  if (state_ == BreakerState::kClosed &&
      consecutive_failures_ >= config_.failure_threshold) {
    state_ = BreakerState::kOpen;
    cooldown_progress_ = 0;
    ++opens_;
  }
}

CircuitBreaker* CircuitBreakerRegistry::Get(const std::string& name) {
  auto it = breakers_.find(name);
  if (it == breakers_.end()) {
    it = breakers_.emplace(name, CircuitBreaker(config_)).first;
  }
  return &it->second;
}

size_t CircuitBreakerRegistry::open_count() const {
  size_t open = 0;
  for (const auto& [name, breaker] : breakers_) {
    if (breaker.state() != BreakerState::kClosed) ++open;
  }
  return open;
}

}  // namespace dwqa
