#include "common/circuit_breaker.h"

#include "common/metric_names.h"

namespace dwqa {

const char* BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "Closed";
    case BreakerState::kOpen:
      return "Open";
    case BreakerState::kHalfOpen:
      return "HalfOpen";
  }
  return "Unknown";
}

Status BreakerConfig::Validate() const {
  if (failure_threshold == 0) {
    return Status::InvalidArgument(
        "breaker failure_threshold must be >= 1 (a zero threshold would "
        "reject every call forever)");
  }
  return Status::OK();
}

void CircuitBreaker::set_metrics(MetricRegistry* metrics,
                                 const std::string& name) {
  metrics_ = metrics;
  metrics_name_ = name;
}

void CircuitBreaker::RecordTransition(const char* to) {
  if (metrics_ == nullptr) return;
  metrics_
      ->GetCounter(kMetricBreakerTransitions,
                   {{"breaker", metrics_name_}, {"to", to}},
                   "Circuit breaker state transitions")
      ->Increment();
}

void CircuitBreaker::RecordRejection() {
  if (metrics_ == nullptr) return;
  metrics_
      ->GetCounter(kMetricBreakerRejections, {{"breaker", metrics_name_}},
                   "Admissions refused by an open/half-open breaker")
      ->Increment();
}

bool CircuitBreaker::WouldAllow() const {
  if (!config_.enabled) return true;
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      return cooldown_progress_ >= config_.cooldown_attempts;
    case BreakerState::kHalfOpen:
      return !probe_outstanding_;
  }
  return true;
}

bool CircuitBreaker::Allow() {
  if (!config_.enabled) return true;
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      if (cooldown_progress_ >= config_.cooldown_attempts) {
        // Cool-down served: this admission is the half-open probe.
        state_ = BreakerState::kHalfOpen;
        probe_outstanding_ = true;
        RecordTransition("HalfOpen");
        return true;
      }
      ++cooldown_progress_;
      ++rejected_;
      RecordRejection();
      return false;
    case BreakerState::kHalfOpen:
      if (!probe_outstanding_) {
        probe_outstanding_ = true;
        return true;
      }
      ++rejected_;
      RecordRejection();
      return false;
  }
  return true;
}

void CircuitBreaker::RecordSuccess() {
  consecutive_failures_ = 0;
  if (!config_.enabled) return;
  if (state_ == BreakerState::kHalfOpen) {
    // The probe came back healthy: the dependency recovered.
    state_ = BreakerState::kClosed;
    cooldown_progress_ = 0;
    probe_outstanding_ = false;
    RecordTransition("Closed");
  }
}

void CircuitBreaker::RecordFailure() {
  ++consecutive_failures_;
  ++total_failures_;
  if (metrics_ != nullptr) {
    metrics_
        ->GetCounter(kMetricBreakerFailures, {{"breaker", metrics_name_}},
                     "Whole-operation failures recorded per breaker")
        ->Increment();
  }
  if (!config_.enabled) return;
  if (state_ == BreakerState::kHalfOpen) {
    // Probe failed: back to open, cool-down restarts from zero.
    state_ = BreakerState::kOpen;
    cooldown_progress_ = 0;
    probe_outstanding_ = false;
    ++opens_;
    RecordTransition("Open");
    return;
  }
  if (state_ == BreakerState::kClosed &&
      consecutive_failures_ >= config_.failure_threshold) {
    state_ = BreakerState::kOpen;
    cooldown_progress_ = 0;
    ++opens_;
    RecordTransition("Open");
  }
}

CircuitBreaker* CircuitBreakerRegistry::Get(const std::string& name) {
  auto it = breakers_.find(name);
  if (it == breakers_.end()) {
    it = breakers_.emplace(name, CircuitBreaker(config_)).first;
    if (metrics_ != nullptr) it->second.set_metrics(metrics_, name);
  }
  return &it->second;
}

void CircuitBreakerRegistry::set_metrics(MetricRegistry* metrics) {
  metrics_ = metrics;
  for (auto& [name, breaker] : breakers_) {
    breaker.set_metrics(metrics, name);
  }
}

size_t CircuitBreakerRegistry::open_count() const {
  size_t open = 0;
  for (const auto& [name, breaker] : breakers_) {
    if (breaker.state() != BreakerState::kClosed) ++open;
  }
  return open;
}

}  // namespace dwqa
