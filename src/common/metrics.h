#ifndef DWQA_COMMON_METRICS_H_
#define DWQA_COMMON_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace dwqa {

/// Label set of one metric series, e.g. `{{"stage", "qa.extraction"}}`.
/// A std::map so series with the same labels compare equal regardless of
/// insertion order and exporters emit them deterministically sorted.
using MetricLabels = std::map<std::string, std::string>;

/// \brief What a registered metric measures.
enum class MetricType {
  /// Monotonically increasing sum (events, units spent).
  kCounter,
  /// Point-in-time value that can move both ways (queue depth, store size).
  kGauge,
  /// Fixed-bucket distribution (latencies) with count and sum.
  kHistogram,
};

/// "counter", "gauge", "histogram" — the Prometheus TYPE names.
const char* MetricTypeName(MetricType type);

/// \brief Monotonic counter. Increment is lock-free (atomic add), safe to
/// call from any ThreadPool worker.
class Counter {
 public:
  /// Adds `delta` (>= 0; negative deltas are a programmer error and are
  /// dropped with a debug log rather than corrupting the monotone series).
  void Increment(double delta = 1.0);

  /// Current value.
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// \brief Point-in-time gauge. Set/Add are lock-free.
class Gauge {
 public:
  /// Replaces the value.
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }

  /// Adds `delta` (may be negative).
  void Add(double delta);

  /// Current value.
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// \brief Fixed-bucket histogram (cumulative-bucket semantics on export,
/// Prometheus style). Observe is lock-free: per-bucket atomic counters plus
/// an atomic sum, so ThreadPool workers can record concurrently and the
/// final counts are exact regardless of interleaving.
class Histogram {
 public:
  /// `bounds` are the inclusive upper bounds of the finite buckets, strictly
  /// ascending; an implicit +Inf bucket is appended.
  explicit Histogram(std::vector<double> bounds);

  /// Records one observation.
  void Observe(double value);

  /// Observations recorded so far.
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  /// Sum of all observations.
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  /// The finite upper bounds this histogram was built with.
  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) counts; index bounds().size() is +Inf.
  std::vector<uint64_t> bucket_counts() const;

 private:
  std::vector<double> bounds_;
  /// One slot per finite bound plus the +Inf overflow bucket.
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// \brief RAII latency probe: observes the elapsed wall time, in
/// milliseconds, into a Histogram when it goes out of scope. Null-safe —
/// constructing over a null histogram makes the timer a no-op, matching the
/// "null registry = observability off" convention.
class ScopedLatencyTimer {
 public:
  /// Starts timing; `histogram` may be null (the timer is then a no-op).
  explicit ScopedLatencyTimer(Histogram* histogram)
      : histogram_(histogram), start_(std::chrono::steady_clock::now()) {}
  /// Non-copyable.
  ScopedLatencyTimer(const ScopedLatencyTimer&) = delete;
  /// Non-copyable.
  ScopedLatencyTimer& operator=(const ScopedLatencyTimer&) = delete;
  /// Observes the elapsed milliseconds into the histogram.
  ~ScopedLatencyTimer() {
    if (histogram_ == nullptr) return;
    histogram_->Observe(std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - start_)
                            .count());
  }

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

/// \brief One exported series: the flattened, lock-free-read copy of a
/// metric that Snapshot() hands to exporters, tests and benches.
struct MetricSnapshot {
  std::string name;            ///< Family name ("dwqa_feed_facts_total").
  MetricType type = MetricType::kCounter;  ///< Family type.
  std::string help;            ///< HELP text ("" when none was registered).
  MetricLabels labels;         ///< This series' labels (may be empty).
  /// Counter/gauge value; for histograms, equal to `sum`.
  double value = 0.0;
  /// \name Histogram-only fields
  /// @{
  std::vector<double> bounds;         ///< Finite upper bounds.
  std::vector<uint64_t> bucket_counts;  ///< Per-bucket counts (+Inf last).
  uint64_t count = 0;                 ///< Total observations.
  double sum = 0.0;                   ///< Sum of observations.
  /// @}
};

/// Estimated `q`-quantile (q in [0, 1]) of a histogram snapshot, by linear
/// interpolation inside the bucket the quantile falls into (the Prometheus
/// `histogram_quantile` estimator). Observations in the +Inf bucket clamp
/// to the largest finite bound. Returns 0 for an empty histogram or a
/// non-histogram snapshot.
double HistogramQuantile(const MetricSnapshot& snapshot, double q);

/// \brief Thread-safe registry of named counters, gauges and histograms.
///
/// One registry per pipeline (IntegrationPipeline owns one); components
/// receive a `MetricRegistry*` via `set_metrics` and treat null as
/// "observability off". Series are created lazily on first Get and live as
/// long as the registry, so returned pointers are stable and hot paths may
/// cache them. Creation takes a mutex; recording on the returned instrument
/// is lock-free (atomics), which keeps the instrumented ThreadPool paths
/// TSan-clean and free of serialization points.
///
/// A family (one name) has one type and one help string; registering the
/// same name with a different type is a programmer error (DWQA_CHECK).
class MetricRegistry {
 public:
  /// Empty registry.
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;             ///< Non-copyable.
  MetricRegistry& operator=(const MetricRegistry&) = delete;  ///< Non-copyable.

  /// The counter series `name{labels}`, created on first use.
  /// `help` is recorded on the first call that provides one.
  Counter* GetCounter(const std::string& name,
                      const MetricLabels& labels = {},
                      const std::string& help = "");

  /// The gauge series `name{labels}`, created on first use.
  Gauge* GetGauge(const std::string& name, const MetricLabels& labels = {},
                  const std::string& help = "");

  /// The histogram series `name{labels}`, created on first use with
  /// `bounds` (LatencyBucketsMs() when empty). Later calls ignore `bounds`.
  Histogram* GetHistogram(const std::string& name,
                          const MetricLabels& labels = {},
                          const std::vector<double>& bounds = {},
                          const std::string& help = "");

  /// Every series, sorted by (name, labels) — the one source all exporters,
  /// tests and bench tees read.
  std::vector<MetricSnapshot> Snapshot() const;

  /// The series of one family, sorted by labels (empty when unregistered).
  std::vector<MetricSnapshot> SnapshotFamily(const std::string& name) const;

  /// Counter/gauge value of `name{labels}`; 0 when the series does not
  /// exist (absent and never-incremented are indistinguishable, as in
  /// Prometheus).
  double Value(const std::string& name, const MetricLabels& labels = {}) const;

  /// Sum of a counter family across all label values (0 when absent).
  double FamilySum(const std::string& name) const;

  /// Number of distinct registered series.
  size_t series_count() const;

  /// Prometheus text exposition format (HELP/TYPE comments, one line per
  /// series, histograms as cumulative `_bucket{le=...}` + `_sum`/`_count`).
  std::string ExportPrometheus() const;

  /// JSON document `{"schema": "dwqa-metrics-v1", "metrics": [...]}` with
  /// one object per series (histograms carry buckets/sum/count).
  std::string ExportJson() const;

  /// Default latency buckets, in milliseconds:
  /// 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 1000.
  static const std::vector<double>& LatencyBucketsMs();

 private:
  /// One registered series (exactly one of the three instruments is live,
  /// per the family type).
  struct Series {
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  /// Per-name metadata shared by all series of the family.
  struct Family {
    MetricType type = MetricType::kCounter;
    std::string help;
  };

  /// Looks up / creates the series under mu_.
  Series* GetSeries(const std::string& name, const MetricLabels& labels,
                    MetricType type, const std::string& help,
                    const std::vector<double>& bounds);

  mutable std::mutex mu_;
  std::map<std::string, Family> families_;
  std::map<std::pair<std::string, MetricLabels>, Series> series_;
};

}  // namespace dwqa

#endif  // DWQA_COMMON_METRICS_H_
