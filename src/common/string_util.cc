#include "common/string_util.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace dwqa {

namespace {
bool IsSpaceChar(char c) {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}
}  // namespace

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::toupper(c));
  });
  return out;
}

std::string Trim(std::string_view s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && IsSpaceChar(s[begin])) ++begin;
  while (end > begin && IsSpaceChar(s[end - 1])) --end;
  return std::string(s.substr(begin, end - begin));
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && IsSpaceChar(s[i])) ++i;
    size_t start = i;
    while (i < s.size() && !IsSpaceChar(s[i])) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  size_t pos = 0;
  while (pos < s.size()) {
    size_t hit = s.find(from, pos);
    if (hit == std::string_view::npos) {
      out.append(s.substr(pos));
      break;
    }
    out.append(s.substr(pos, hit - pos));
    out.append(to);
    pos = hit + from.size();
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool IsDigits(std::string_view s) {
  if (s.empty()) return false;
  return std::all_of(s.begin(), s.end(), [](unsigned char c) {
    return std::isdigit(c) != 0;
  });
}

bool IsNumber(std::string_view s) {
  if (s.empty()) return false;
  size_t i = 0;
  if (s[0] == '-' || s[0] == '+') i = 1;
  bool saw_digit = false;
  bool saw_dot = false;
  for (; i < s.size(); ++i) {
    unsigned char c = static_cast<unsigned char>(s[i]);
    if (std::isdigit(c)) {
      saw_digit = true;
    } else if (s[i] == '.' && !saw_dot) {
      saw_dot = true;
    } else {
      return false;
    }
  }
  return saw_digit;
}

bool IsCapitalized(std::string_view s) {
  return !s.empty() && std::isupper(static_cast<unsigned char>(s[0])) != 0;
}

size_t EditDistance(std::string_view a, std::string_view b) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0) return m;
  if (m == 0) return n;
  std::vector<size_t> prev(m + 1);
  std::vector<size_t> cur(m + 1);
  for (size_t j = 0; j <= m; ++j) prev[j] = j;
  for (size_t i = 1; i <= n; ++i) {
    cur[0] = i;
    for (size_t j = 1; j <= m; ++j) {
      size_t cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, prev[j - 1] + cost});
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

double StringSimilarity(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  size_t dist = EditDistance(a, b);
  size_t denom = std::max(a.size(), b.size());
  return 1.0 - static_cast<double>(dist) / static_cast<double>(denom);
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

}  // namespace dwqa
