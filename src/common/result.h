#ifndef DWQA_COMMON_RESULT_H_
#define DWQA_COMMON_RESULT_H_

#include <cstdlib>
#include <iostream>
#include <utility>
#include <variant>

#include "common/status.h"

namespace dwqa {

/// \brief Either a value of type T or a non-OK Status explaining why the
/// value could not be produced (Arrow idiom).
///
/// Accessors mirror arrow::Result: `ok()`, `status()`, `ValueOrDie()` and the
/// dereference operators. Use DWQA_ASSIGN_OR_RETURN (status.h) to chain
/// fallible computations.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK Status (failure). Constructing a
  /// Result from an OK status is a programming error and is converted into an
  /// Internal error to keep the invariant "failure Result carries non-OK".
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    if (std::get<Status>(repr_).ok()) {
      repr_ = Status::Internal("Result constructed from OK status");
    }
  }

  /// True when a value is held (the Status alternative is then OK).
  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The failure Status, or OK when a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  /// Returns the held value; aborts the process if this Result is a failure.
  /// Intended for tests and for call sites that have already checked ok().
  const T& ValueOrDie() const& {
    DieIfNotOk();
    return std::get<T>(repr_);
  }
  T& ValueOrDie() & {
    DieIfNotOk();
    return std::get<T>(repr_);
  }
  T ValueOrDie() && {
    DieIfNotOk();
    return std::move(std::get<T>(repr_));
  }

  /// Returns the held value or `fallback` on failure.
  T ValueOr(T fallback) const {
    if (ok()) return std::get<T>(repr_);
    return fallback;
  }

  /// \name Dereference — ValueOrDie() shorthands
  /// @{
  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }
  /// @}

 private:
  void DieIfNotOk() const {
    if (!ok()) {
      std::cerr << "Result::ValueOrDie on failure: "
                << std::get<Status>(repr_).ToString() << std::endl;
      std::abort();
    }
  }

  std::variant<T, Status> repr_;
};

}  // namespace dwqa

#endif  // DWQA_COMMON_RESULT_H_
