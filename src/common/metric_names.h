#ifndef DWQA_COMMON_METRIC_NAMES_H_
#define DWQA_COMMON_METRIC_NAMES_H_

/// \file metric_names.h
/// \brief The metric catalogue: every metric name the codebase registers.
///
/// All metric names live here, as constants, for three reasons: call sites
/// cannot typo a name into a parallel series; the catalogue lint
/// (scripts/lint.sh) can check that every name is documented in
/// docs/OBSERVABILITY.md; and a reader gets the whole observability surface
/// of the system in one header. Names follow the Prometheus convention:
/// `dwqa_<layer>_<what>[_total|_ms]`, `_total` for counters, `_ms` for
/// latency histograms. Label keys are listed next to each name.

namespace dwqa {

/// \name Deadline budget (common/deadline.h)
/// @{
/// Counter, labels {stage}: units charged to the shared budget per stage.
inline constexpr char kMetricDeadlineSpentUnits[] =
    "dwqa_deadline_spent_units_total";
/// Gauge: 1 once the shared budget is exhausted, 0 before.
inline constexpr char kMetricDeadlineExhausted[] = "dwqa_deadline_exhausted";
/// @}

/// \name Circuit breakers (common/circuit_breaker.h)
/// @{
/// Counter, labels {breaker, to}: state transitions per breaker
/// (to = "Open" | "HalfOpen" | "Closed").
inline constexpr char kMetricBreakerTransitions[] =
    "dwqa_breaker_transitions_total";
/// Counter, labels {breaker}: admissions refused while open/half-open.
inline constexpr char kMetricBreakerRejections[] =
    "dwqa_breaker_rejections_total";
/// Counter, labels {breaker}: whole-operation failures recorded.
inline constexpr char kMetricBreakerFailures[] =
    "dwqa_breaker_failures_total";
/// @}

/// \name IR indexes (ir/inverted_index.h, ir/passage_index.h)
/// @{
/// Counter: PassageIndex::Search calls (the IR-n filtering lookups).
inline constexpr char kMetricIrPassageLookups[] =
    "dwqa_ir_passage_lookups_total";
/// Histogram: PassageIndex::Search wall-clock latency.
inline constexpr char kMetricIrPassageLookupLatency[] =
    "dwqa_ir_passage_lookup_latency_ms";
/// Counter: InvertedIndex::Search calls (document-level baseline lookups).
inline constexpr char kMetricIrDocLookups[] = "dwqa_ir_doc_lookups_total";
/// Histogram: InvertedIndex::Search wall-clock latency.
inline constexpr char kMetricIrDocLookupLatency[] =
    "dwqa_ir_doc_lookup_latency_ms";
/// @}

/// \name Segmented index cores (ir/segmented_index.h)
///
/// All families carry the label {index = "doc" | "passage"} — one series
/// per index kind.
/// @{
/// Gauge, labels {index}: sealed segments currently in the manifest.
inline constexpr char kMetricIndexSegments[] = "dwqa_index_segments";
/// Counter, labels {index}: memtables sealed into immutable segments.
inline constexpr char kMetricIndexSeals[] = "dwqa_index_seals_total";
/// Counter, labels {index}: tiered segment merges run (background or
/// inline).
inline constexpr char kMetricIndexMerges[] = "dwqa_index_merges_total";
/// Histogram, labels {index}: wall-clock latency of one segment merge.
inline constexpr char kMetricIndexMergeLatency[] =
    "dwqa_index_merge_latency_ms";
/// Gauge, labels {index}: compressed postings bytes across sealed segments.
inline constexpr char kMetricIndexPostingsBytes[] =
    "dwqa_index_postings_bytes";
/// Counter, labels {index}: whole segments skipped by the top-k score
/// bound without opening a postings list.
inline constexpr char kMetricIndexPrunedSegments[] =
    "dwqa_index_pruned_segments_total";
/// Counter, labels {index}: posting blocks stepped over undecoded by the
/// block-max bound (single-term document queries).
inline constexpr char kMetricIndexPrunedBlocks[] =
    "dwqa_index_pruned_blocks_total";
/// Counter, labels {index}: candidate documents skipped unscored by the
/// block-max / repeat-bonus score bound.
inline constexpr char kMetricIndexPrunedCandidates[] =
    "dwqa_index_pruned_candidates_total";
/// Counter, labels {index}: candidate sentence windows skipped unscored
/// when their document was pruned (passage index only).
inline constexpr char kMetricIndexPrunedWindows[] =
    "dwqa_index_pruned_windows_total";
/// Counter: documents made searchable through the incremental-ingest path
/// (AliQAn::IngestNewDocuments) — appends, never rebuilds.
inline constexpr char kMetricIndexIngestDocs[] =
    "dwqa_index_ingest_docs_total";
/// @}

/// \name QA search and indexation phases (qa/aliqan.h)
/// @{
/// Counter: questions put through the search phase (Ask/AskWith calls,
/// speculative batch asks included).
inline constexpr char kMetricQaQuestions[] = "dwqa_qa_questions_total";
/// Counter, labels {level}: answers produced per degradation-ladder rung.
inline constexpr char kMetricQaAnswers[] = "dwqa_qa_answers_total";
/// Histogram, labels {phase}: per-question latency of the three search
/// modules (phase = "analysis" | "retrieval" | "extraction").
inline constexpr char kMetricQaPhaseLatency[] = "dwqa_qa_phase_latency_ms";
/// Counter, labels {source}: sentences the extraction module processed
/// (source = "cached" from the AnalyzedCorpus, "fresh" re-analyzed).
inline constexpr char kMetricQaSentencesAnalyzed[] =
    "dwqa_qa_sentences_analyzed_total";
/// Counter: documents put through off-line indexation.
inline constexpr char kMetricQaIndexDocuments[] =
    "dwqa_qa_index_documents_total";
/// Counter: sentences linguistically analyzed at indexation time.
inline constexpr char kMetricQaIndexSentences[] =
    "dwqa_qa_index_sentences_total";
/// Histogram: IndexCorpus wall-clock latency.
inline constexpr char kMetricQaIndexLatency[] = "dwqa_qa_index_latency_ms";
/// @}

/// \name Step-5 feed (integration/pipeline.h)
/// @{
/// Counter, labels {outcome}: every question of a RunStep5 batch lands in
/// exactly one outcome ("answered" | "unanswered" | "failed" | "resumed" |
/// "deadline_skipped" | "breaker_rejected").
inline constexpr char kMetricFeedQuestions[] = "dwqa_feed_questions_total";
/// Counter, labels {level}: asked-and-answered questions per
/// degradation-ladder rung (the feed-side twin of dwqa_qa_answers_total).
inline constexpr char kMetricFeedQuestionsByLevel[] =
    "dwqa_feed_questions_by_level_total";
/// Counter, labels {disposition}: every extracted fact lands in exactly one
/// disposition ("loaded" | "deduplicated" | "quarantined" | "rejected") —
/// the metrics half of the FeedReport accounting identity.
inline constexpr char kMetricFeedFacts[] = "dwqa_feed_facts_total";
/// Counter, labels {reason}: facts diverted to the quarantine per typed
/// RejectReason.
inline constexpr char kMetricFeedQuarantined[] =
    "dwqa_feed_quarantined_total";
/// Counter: extra attempts spent on transient faults (ask + ETL).
inline constexpr char kMetricFeedRetries[] = "dwqa_feed_retries_total";
/// Counter: transient failures observed (masked or terminal).
inline constexpr char kMetricFeedTransientFailures[] =
    "dwqa_feed_transient_failures_total";
/// Counter: retries beyond the first on ultimately-failed operations — the
/// waste a circuit breaker exists to cut.
inline constexpr char kMetricFeedWastedRetries[] =
    "dwqa_feed_wasted_retries_total";
/// Counter: boundary checkpoint saves that failed (retried next boundary).
inline constexpr char kMetricFeedCheckpointFailures[] =
    "dwqa_feed_checkpoint_failures_total";
/// @}

/// \name Retry pressure (common/retry.h, MirrorRetryStats)
/// @{
/// Counter, labels {stage}: attempts a RetryCall made (first tries and
/// retries alike), per guarded stage.
inline constexpr char kMetricRetryAttempts[] = "dwqa_retry_attempts_total";
/// Counter, labels {stage}: transient failures a RetryCall observed.
inline constexpr char kMetricRetryTransientFailures[] =
    "dwqa_retry_transient_failures_total";
/// Counter, labels {stage}: RetryCalls that exhausted their attempt budget
/// without succeeding — the give-ups behind breaker trips.
inline constexpr char kMetricRetryGiveups[] = "dwqa_retry_giveups_total";
/// @}

/// \name Serving layer (serve/server.h, serve/admission.h,
/// serve/answer_cache.h)
/// @{
/// Counter, labels {endpoint, outcome}: every request the server saw ends
/// in exactly one outcome ("ok" | "rejected" | "error").
inline constexpr char kMetricServeRequests[] = "dwqa_serve_requests_total";
/// Counter, labels {reason}: admissions the server refused
/// (reason = "queue_full" | "cost_budget" | "rate_limited" |
/// "tenant_concurrency" | "draining" | "circuit_open" |
/// "deadline_exceeded" | "unknown_tenant" | "bad_request").
inline constexpr char kMetricServeRejections[] =
    "dwqa_serve_rejections_total";
/// Gauge: requests admitted and not yet finished.
inline constexpr char kMetricServeQueueDepth[] = "dwqa_serve_queue_depth";
/// Gauge: estimated cost units admitted and not yet finished.
inline constexpr char kMetricServeQueuedCost[] = "dwqa_serve_queued_cost";
/// Gauge, labels {tenant}: requests of one tenant currently in flight.
inline constexpr char kMetricServeTenantInflight[] =
    "dwqa_serve_tenant_inflight";
/// Histogram, labels {endpoint}: wall-clock latency of executed requests
/// (admission-rejected requests are not observed here).
inline constexpr char kMetricServeRequestLatency[] =
    "dwqa_serve_request_latency_ms";
/// Gauge: 1 while the server is draining or drained, 0 while accepting.
inline constexpr char kMetricServeDraining[] = "dwqa_serve_draining";
/// Counter, labels {tenant, result}: answer-cache lookups
/// (result = "hit" | "stale" | "miss").
inline constexpr char kMetricServeCacheLookups[] =
    "dwqa_serve_cache_lookups_total";
/// Counter, labels {tenant}: answers inserted into the cache.
inline constexpr char kMetricServeCacheInsertions[] =
    "dwqa_serve_cache_insertions_total";
/// Counter, labels {tenant}: entries evicted by the LRU memory cap.
inline constexpr char kMetricServeCacheEvictions[] =
    "dwqa_serve_cache_evictions_total";
/// Gauge, labels {tenant}: bytes the cache currently holds.
inline constexpr char kMetricServeCacheBytes[] = "dwqa_serve_cache_bytes";
/// Gauge, labels {tenant}: entries the cache currently holds.
inline constexpr char kMetricServeCacheEntries[] =
    "dwqa_serve_cache_entries";
/// Counter, labels {tenant}: stale cached answers served because the live
/// path had already degraded past them (stale-while-degraded).
inline constexpr char kMetricServeStaleServed[] =
    "dwqa_serve_stale_served_total";
/// @}

/// \name Write-ahead log (dw/wal.h)
/// @{
/// Counter: records successfully appended (and, with sync_each_append,
/// fsynced) to the WAL — i.e. facts that became committed.
inline constexpr char kMetricWalAppends[] = "dwqa_wal_appends_total";
/// Counter: payload bytes appended (framing overhead excluded).
inline constexpr char kMetricWalAppendBytes[] =
    "dwqa_wal_append_bytes_total";
/// Counter: appends that failed (serialization, I/O, injected crash).
inline constexpr char kMetricWalAppendFailures[] =
    "dwqa_wal_append_failures_total";
/// Counter: fsync barriers issued against the current segment.
inline constexpr char kMetricWalSyncs[] = "dwqa_wal_syncs_total";
/// Counter: segment rotations (size-triggered and explicit alike).
inline constexpr char kMetricWalRotations[] = "dwqa_wal_rotations_total";
/// Gauge: highest LSN the writer has committed (0 = empty log).
inline constexpr char kMetricWalLastLsn[] = "dwqa_wal_last_lsn";
/// Gauge: live segment files (after covered-segment retention drops).
inline constexpr char kMetricWalSegments[] = "dwqa_wal_segments";
/// @}

/// \name Recovery / fsck (dw/recovery.h)
/// @{
/// Counter, labels {outcome}: Recovery::Open calls ("ok" | "error").
inline constexpr char kMetricRecoveryOpens[] = "dwqa_recovery_opens_total";
/// Counter: WAL records replayed into the warehouse (post-snapshot tail).
inline constexpr char kMetricRecoveryReplayed[] =
    "dwqa_recovery_replayed_records_total";
/// Counter: replayed records diverted to quarantine (CRC mismatch,
/// validator reject, ETL refusal).
inline constexpr char kMetricRecoveryQuarantined[] =
    "dwqa_recovery_quarantined_total";
/// Counter: torn-tail bytes truncated from the log during open.
inline constexpr char kMetricRecoveryTornBytes[] =
    "dwqa_recovery_torn_bytes_total";
/// Counter: well-framed records whose payload failed its CRC (bit rot).
inline constexpr char kMetricRecoveryCorruptRecords[] =
    "dwqa_recovery_corrupt_records_total";
/// Gauge: covering LSN of the snapshot recovery loaded (0 = none).
inline constexpr char kMetricRecoverySnapshotLsn[] =
    "dwqa_recovery_snapshot_lsn";
/// Histogram: wall-clock latency of Recovery::Open.
inline constexpr char kMetricRecoveryOpenLatency[] =
    "dwqa_recovery_open_latency_ms";
/// @}

/// \name Materialized OLAP views (dw/materialized_view.h)
/// @{
/// Gauge: views currently bound in the catalog.
inline constexpr char kMetricViewCount[] = "dwqa_view_count";
/// Gauge: aggregate groups materialized across all views.
inline constexpr char kMetricViewGroups[] = "dwqa_view_groups";
/// Counter: per-view delta applications — one per view touched per
/// inserted fact (incremental maintenance volume).
inline constexpr char kMetricViewMaintenanceUpdates[] =
    "dwqa_view_maintenance_updates_total";
/// Histogram: per-fact incremental maintenance latency across all views.
inline constexpr char kMetricViewMaintainLatency[] =
    "dwqa_view_maintain_latency_ms";
/// Counter, labels {view}: queries answered from a matching view.
inline constexpr char kMetricViewReads[] = "dwqa_view_reads_total";
/// Counter: view lookups that missed — the recompute fallbacks.
inline constexpr char kMetricViewMisses[] = "dwqa_view_misses_total";
/// Counter: full rebuild scans of the catalog (Bind, recovery).
inline constexpr char kMetricViewRebuilds[] = "dwqa_view_rebuilds_total";
/// @}

/// \name Warehouse / ETL boundary (integration/pipeline.cc, dw/etl.h)
/// @{
/// Histogram: per-record ETL load latency (retries included).
inline constexpr char kMetricDwEtlLoadLatency[] =
    "dwqa_dw_etl_load_latency_ms";
/// Counter: rows that reached the warehouse.
inline constexpr char kMetricDwEtlRowsLoaded[] =
    "dwqa_dw_etl_rows_loaded_total";
/// Counter: rows the ETL boundary ultimately refused.
inline constexpr char kMetricDwEtlRowsRejected[] =
    "dwqa_dw_etl_rows_rejected_total";
/// Gauge: records currently parked in the dead-letter QuarantineStore.
inline constexpr char kMetricDwQuarantineRecords[] =
    "dwqa_dw_quarantine_records";
/// @}

/// \name Warehouse federation (dw/federation/federated_engine.h)
/// @{
/// Counter, labels {coverage}: federated queries by terminal coverage
/// ("full" | "partial" | "failed").
inline constexpr char kMetricFedQueries[] = "dwqa_fed_queries_total";
/// Counter, labels {warehouse, outcome}: per-warehouse sub-queries
/// (outcome = "ok" | "error" | "skipped").
inline constexpr char kMetricFedSubqueries[] = "dwqa_fed_subqueries_total";
/// Histogram, labels {warehouse}: wall-clock latency of one sub-query.
inline constexpr char kMetricFedSubqueryLatency[] =
    "dwqa_fed_subquery_latency_ms";
/// Counter: groups folded through AggState::Merge across all sub-results.
inline constexpr char kMetricFedGroupsMerged[] =
    "dwqa_fed_groups_merged_total";
/// Counter, labels {policy, resolution}: cross-warehouse fact-key
/// conflicts, by the policy that resolved them and the resolution taken
/// (resolution = "local" | "remote" | "quarantined" | "deduplicated").
inline constexpr char kMetricFedConflicts[] = "dwqa_fed_conflicts_total";
/// Histogram: wall-clock latency of the partial-aggregate merge phase.
inline constexpr char kMetricFedMergeLatency[] = "dwqa_fed_merge_latency_ms";
/// @}

}  // namespace dwqa

#endif  // DWQA_COMMON_METRIC_NAMES_H_
