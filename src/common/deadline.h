#ifndef DWQA_COMMON_DEADLINE_H_
#define DWQA_COMMON_DEADLINE_H_

#include <limits>
#include <map>
#include <string>

#include "common/metrics.h"
#include "common/status.h"

namespace dwqa {

/// \brief Budget of a Deadline, in abstract cost units.
///
/// The unit is "one attempted operation" (one retry attempt, one probed
/// stage) rather than milliseconds: wall clocks are banned from the test
/// suite, and an attempt-counted budget makes deadline behaviour exactly
/// reproducible. Callers that do want wall-clock semantics can install a
/// clock via Deadline::set_clock.
struct DeadlineConfig {
  /// Units the run may spend; infinity (the default) disables the deadline.
  double budget = std::numeric_limits<double>::infinity();

  /// InvalidArgument on a negative or NaN budget.
  Status Validate() const;
};

/// \brief Cooperative, injectable-clock cost budget shared across pipeline
/// stages.
///
/// One Deadline object is threaded through a whole run (AliQAn::Ask →
/// passage retrieval → answer extraction, the Step-5 feed loop, the retry
/// layer). Every stage charges the units it spends, so budget consumed by
/// an inner retry loop is immediately visible to the outer loop. Once the
/// budget is exhausted every further charge or check fails with
/// kDeadlineExceeded naming the stage that hit the wall.
class Deadline {
 public:
  /// Unlimited deadline: never exhausts, charges are still tallied.
  Deadline() = default;
  /// Deadline with the configured (possibly finite) budget.
  explicit Deadline(DeadlineConfig config) : config_(config) {}

  /// True for an infinite budget (the default).
  bool unlimited() const {
    return config_.budget == std::numeric_limits<double>::infinity();
  }
  /// The configured budget in cost units.
  double budget() const { return config_.budget; }
  /// Units charged so far.
  double spent() const { return spent_; }
  /// Units left before exhaustion (0 once exhausted).
  double remaining() const {
    return spent_ >= config_.budget ? 0.0 : config_.budget - spent_;
  }
  /// True once spent() has reached the budget.
  bool exhausted() const { return spent_ >= config_.budget; }

  /// Charges `cost` units attributed to `stage`. The charge that crosses
  /// the budget line still succeeds (the work was already under way); every
  /// subsequent charge fails with kDeadlineExceeded naming `stage`.
  Status Spend(const std::string& stage, double cost = 1.0);

  /// Non-charging probe: OK while budget remains, kDeadlineExceeded naming
  /// `stage` once it is gone.
  Status Check(const std::string& stage);

  /// Replays every charge tallied by `other` into this deadline, stage by
  /// stage, as if the work had been charged here directly. This is the
  /// merge half of speculative execution: a parallel worker runs against a
  /// private unlimited ledger, and the serial merge point absorbs that
  /// ledger so spent/spent_by_stage match the serial run exactly. Returns
  /// the first non-OK status a replayed charge produced (OK otherwise);
  /// later charges are still applied so accounting never diverges.
  Status Absorb(const Deadline& other);

  /// Stage that first observed exhaustion ("" while budget remains).
  const std::string& exhausted_stage() const { return exhausted_stage_; }

  /// Units charged per stage, for the PipelineHealth summary.
  const std::map<std::string, double>& spent_by_stage() const {
    return spent_by_stage_;
  }

  /// Attaches a metrics registry (owned by the caller, may be null): every
  /// subsequent Spend mirrors its charge into
  /// `dwqa_deadline_spent_units_total{stage}` and exhaustion flips the
  /// `dwqa_deadline_exhausted` gauge. Private speculation ledgers stay
  /// unattached, so Absorb-replayed charges are counted exactly once.
  void set_metrics(MetricRegistry* metrics);

 private:
  Status Exceeded(const std::string& stage);

  DeadlineConfig config_;
  double spent_ = 0.0;
  std::string exhausted_stage_;
  std::map<std::string, double> spent_by_stage_;
  MetricRegistry* metrics_ = nullptr;
};

/// Propagates kDeadlineExceeded out of the enclosing function when the
/// (possibly null) Deadline* is exhausted. Null means "no deadline".
#define DWQA_CHECK_DEADLINE(deadline, stage)                \
  do {                                                      \
    if ((deadline) != nullptr) {                            \
      ::dwqa::Status _dwqa_dl = (deadline)->Check(stage);   \
      if (!_dwqa_dl.ok()) return _dwqa_dl;                  \
    }                                                       \
  } while (false)

}  // namespace dwqa

#endif  // DWQA_COMMON_DEADLINE_H_
