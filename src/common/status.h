#ifndef DWQA_COMMON_STATUS_H_
#define DWQA_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace dwqa {

/// \brief Machine-readable category of a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kIOError,
  kUnimplemented,
  kInternal,
  /// The operation failed for a reason expected to clear on its own (flaky
  /// network fetch, busy backend). Safe to retry — see common/retry.h.
  kUnavailable,
  /// The operation ran out of time. Retryable like kUnavailable.
  kDeadlineExceeded,
  /// The server refused new work because an admission budget (queue depth,
  /// queued cost, rate limit, per-tenant concurrency) is exceeded. NOT
  /// IsTransient: an in-process retry loop hammering an overloaded server
  /// makes the overload worse — clients must back off instead.
  kOverloaded,
  /// Durable data failed an integrity check: a WAL record or snapshot file
  /// whose checksum, framing or manifest does not verify. Never transient —
  /// the bytes on disk are wrong and will stay wrong.
  kCorruption,
};

/// \brief Outcome of a fallible operation (Arrow/RocksDB idiom).
///
/// The library does not throw across its public API: every operation that can
/// fail returns a Status (or a Result<T>, see result.h). A Status is cheap to
/// copy in the OK case and carries a code plus a human-readable message
/// otherwise.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// \name Factory helpers, one per non-OK code.
  /// @{
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  /// @}

  /// True for the OK status.
  bool ok() const { return code_ == StatusCode::kOk; }
  /// The status code.
  StatusCode code() const { return code_; }
  /// The human-readable detail ("" for OK).
  const std::string& message() const { return message_; }

  /// \name Per-code predicates
  /// @{
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsUnimplemented() const { return code_ == StatusCode::kUnimplemented; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsOverloaded() const { return code_ == StatusCode::kOverloaded; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  /// @}

  /// Renders e.g. "NotFound: concept 'airport' is not in the ontology".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Human-readable name of a StatusCode ("OK", "NotFound", ...).
const char* StatusCodeToString(StatusCode code);

/// True for failure categories that a retry can plausibly clear
/// (kUnavailable, kDeadlineExceeded). Permanent errors — bad input, missing
/// schema objects — must fail fast instead of burning retry budget.
bool IsTransient(const Status& status);

/// Propagates a non-OK Status to the caller.
#define DWQA_RETURN_NOT_OK(expr)                  \
  do {                                            \
    ::dwqa::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                    \
  } while (false)

/// Evaluates a Result<T> expression, propagating failure, else binding the
/// moved value to `lhs`.
#define DWQA_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).ValueOrDie()

#define DWQA_ASSIGN_OR_RETURN(lhs, expr) \
  DWQA_ASSIGN_OR_RETURN_IMPL(            \
      DWQA_CONCAT_NAME(_result_, __COUNTER__), lhs, expr)

#define DWQA_CONCAT_NAME_INNER(x, y) x##y
#define DWQA_CONCAT_NAME(x, y) DWQA_CONCAT_NAME_INNER(x, y)

}  // namespace dwqa

#endif  // DWQA_COMMON_STATUS_H_
