#ifndef DWQA_COMMON_IO_H_
#define DWQA_COMMON_IO_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/fault.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"

namespace dwqa {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) of `data`. The per-record
/// checksum of the write-ahead log and the per-file checksum of snapshot
/// manifests (dw/wal.h, dw/snapshot.h).
uint32_t Crc32(std::string_view data);

/// Crc32 rendered as 8 lowercase hex digits ("414fa339").
std::string Crc32Hex(std::string_view data);

/// \brief The file-system seam of the durability layer.
///
/// Every byte the WAL, snapshot, recovery and persistence code moves goes
/// through one of these virtual calls, so tests can substitute a FaultFs
/// that crashes, tears or bit-flips at an exact operation — the same
/// substitution trick the FaultInjector plays on the synthetic web's
/// unreliability, applied to the disk. Production code passes nullptr and
/// gets RealFilesystem().
class Fs {
 public:
  virtual ~Fs() = default;

  /// Whole-file read.
  virtual Result<std::string> ReadFile(const std::string& path) = 0;
  /// Create-or-truncate write of the whole file (flushed, not fsynced).
  virtual Status WriteFile(const std::string& path,
                           const std::string& data) = 0;
  /// Appends `data` to `path`, creating it if absent.
  virtual Status AppendFile(const std::string& path,
                            const std::string& data) = 0;
  /// fsync(2) of an existing file: the durability barrier. Data written
  /// before a successful SyncFile must survive a crash after it.
  virtual Status SyncFile(const std::string& path) = 0;
  /// Atomic replace (rename(2) semantics on POSIX).
  virtual Status Rename(const std::string& from, const std::string& to) = 0;
  virtual Status RemoveFile(const std::string& path) = 0;
  /// Recursive removal of a file or directory tree (missing target is OK).
  virtual Status RemoveAll(const std::string& path) = 0;
  virtual Status CreateDirs(const std::string& path) = 0;
  virtual bool Exists(const std::string& path) = 0;
  /// Entry names (not full paths) of a directory, sorted.
  virtual Result<std::vector<std::string>> ListDir(const std::string& dir) = 0;
  virtual Result<uint64_t> FileSize(const std::string& path) = 0;
  /// Truncates `path` to `size` bytes (torn-tail removal).
  virtual Status TruncateFile(const std::string& path, uint64_t size) = 0;
};

/// The process-wide real filesystem (std::filesystem + POSIX fsync).
Fs* RealFilesystem();

/// `fs` if non-null, else RealFilesystem() — the convention every
/// durability entry point uses for its optional Fs parameter.
inline Fs* FsOrReal(Fs* fs) { return fs != nullptr ? fs : RealFilesystem(); }

/// Atomic whole-file replace: write `path`.tmp, fsync it, rename onto
/// `path`. After a crash at any point the previous content of `path` is
/// intact or the new content is fully visible — never a torn mix.
Status WriteFileAtomic(Fs* fs, const std::string& path,
                       const std::string& data);

/// \brief How an injected crash manifests at the crash-point operation.
enum class CrashMode {
  /// The operation does not happen at all (power loss before the write
  /// reached the disk): cleanest crash, nothing torn.
  kStop,
  /// The crashing write lands as a prefix of its data (a torn write: the
  /// kernel flushed part of the buffer before power died).
  kTornWrite,
  /// The crashing write "succeeds" but one byte is flipped (silent media
  /// corruption), and the crash follows immediately — checksums, not
  /// the writer, must catch this.
  kBitFlip,
};

const char* CrashModeName(CrashMode mode);

/// \brief One planned crash: at mutating operation number `crash_at_op`
/// (0-based, in FaultFs's op counter), manifest as `mode`.
struct CrashPlan {
  /// Op index at which to crash; SIZE_MAX (default) never crashes and
  /// turns the FaultFs into a pure recorder.
  size_t crash_at_op = static_cast<size_t>(-1);
  CrashMode mode = CrashMode::kStop;
  /// Seed of the torn-prefix / flipped-byte draws.
  uint64_t seed = 1;
};

/// \brief A crash-injecting, operation-recording Fs decorator.
///
/// Every *mutating* operation (write, append, sync, rename, remove,
/// create-dirs, truncate) increments an op counter and appends an
/// "op:path" line to the op log; reads pass through untouched. When the
/// counter reaches CrashPlan::crash_at_op the planned crash fires: the
/// op is dropped, torn or bit-flipped per the mode, and every later
/// mutating op fails with kIOError("injected crash") — the moral
/// equivalent of kill -9 for code that cannot actually die mid-test.
/// The crash-point sweep (tests/dw/crash_sweep_test.cc) first runs a
/// workload with a recorder plan to enumerate ops, then replays it once
/// per op index and asserts recovery restores the committed state.
///
/// An optional FaultInjector adds *probabilistic* transient IO failures
/// at the kFaultPointIoWrite point, for chaos runs where the disk is
/// flaky rather than dead.
class FaultFs : public Fs {
 public:
  /// Decorates `base` (not owned; nullptr = RealFilesystem()).
  explicit FaultFs(Fs* base = nullptr, CrashPlan plan = {});

  /// Re-arms the plan and resets the op counter, log and crashed flag.
  void Arm(CrashPlan plan);

  /// True once the planned crash has fired.
  bool crashed() const { return crashed_; }
  /// Mutating operations attempted so far (the crash op included).
  size_t op_count() const { return op_count_; }
  /// "append:wal-000...1.log"-style trace of every mutating op attempted.
  const std::vector<std::string>& op_log() const { return op_log_; }

  /// Arms probabilistic transient faults at kFaultPointIoWrite (chaos
  /// flavour; independent of the crash plan). Not owned.
  void set_injector(FaultInjector* injector) { injector_ = injector; }

  Result<std::string> ReadFile(const std::string& path) override;
  Status WriteFile(const std::string& path, const std::string& data) override;
  Status AppendFile(const std::string& path,
                    const std::string& data) override;
  Status SyncFile(const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;
  Status RemoveAll(const std::string& path) override;
  Status CreateDirs(const std::string& path) override;
  bool Exists(const std::string& path) override;
  Result<std::vector<std::string>> ListDir(const std::string& dir) override;
  Result<uint64_t> FileSize(const std::string& path) override;
  Status TruncateFile(const std::string& path, uint64_t size) override;

 private:
  /// Books one mutating op named `op` on `path`. Returns, in order of
  /// precedence: the dead-after-crash error, the injected transient fault,
  /// the crash verdict (kCrashNow), or OK.
  enum class OpVerdict { kProceed, kCrashNow, kFail };
  OpVerdict BookOp(const std::string& op, const std::string& path,
                   Status* failure);
  /// Applies the crash mode to a data-carrying op. Returns the bytes that
  /// should still reach the base Fs ("" for kStop).
  std::string MangleData(const std::string& data);

  Fs* base_;
  CrashPlan plan_;
  FaultInjector* injector_ = nullptr;
  Rng rng_{1};
  bool crashed_ = false;
  size_t op_count_ = 0;
  std::vector<std::string> op_log_;
};

}  // namespace dwqa

#endif  // DWQA_COMMON_IO_H_
