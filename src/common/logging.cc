#include "common/logging.h"

namespace dwqa {

namespace {
LogLevel g_threshold = LogLevel::kWarning;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel Logger::threshold() { return g_threshold; }

void Logger::set_threshold(LogLevel level) { g_threshold = level; }

void Logger::Log(LogLevel level, const std::string& message) {
  if (!Enabled(level)) return;
  std::cerr << "[" << LevelName(level) << "] " << message << std::endl;
}

}  // namespace dwqa
