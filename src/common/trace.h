#ifndef DWQA_COMMON_TRACE_H_
#define DWQA_COMMON_TRACE_H_

#include <chrono>
#include <cstddef>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace dwqa {

class TraceRecorder;

/// \brief One recorded span of a question trace.
struct SpanRecord {
  /// Index of this span in TraceRecorder::spans().
  size_t id = 0;
  /// Index of the parent span, or kNoParent for a root.
  size_t parent = kNoParent;
  /// Nesting depth (0 for roots) — precomputed for the renderer.
  size_t depth = 0;
  /// Stage name, dotted by layer: "qa.analysis", "dw.etl.load", ...
  std::string name;
  /// Wall-clock duration; 0 while the span is still open.
  double duration_ms = 0.0;
  /// Key/value notes attached via Span::Annotate, in call order.
  std::vector<std::pair<std::string, std::string>> annotations;

  /// Sentinel parent id of root spans.
  static constexpr size_t kNoParent = static_cast<size_t>(-1);
};

/// \brief RAII span handle: records a span on construction, closes it (and
/// stamps the duration) on destruction or an explicit End().
///
/// A null recorder makes every operation a no-op, so instrumented code can
/// unconditionally create spans and pass `nullptr` when tracing is off —
/// the same convention the metrics layer uses for `MetricRegistry*`.
class Span {
 public:
  /// Opens a span named `name` under the recorder's current innermost open
  /// span (no-op when `recorder` is null).
  Span(TraceRecorder* recorder, const std::string& name);
  /// Closes the span if still open.
  ~Span();

  Span(const Span&) = delete;             ///< Non-copyable.
  Span& operator=(const Span&) = delete;  ///< Non-copyable.
  /// Moved-from spans become inert no-ops.
  Span(Span&& other) noexcept;
  /// Closes the current span (if open) and takes over `other`'s.
  Span& operator=(Span&& other) noexcept;

  /// Attaches a key/value note rendered as `key=value` in the trace tree.
  void Annotate(const std::string& key, const std::string& value);
  /// Numeric convenience overload (integers render without decimals).
  void Annotate(const std::string& key, double value);

  /// Closes the span now (idempotent). Use when sibling spans must start
  /// after this one inside the same scope.
  void End();

 private:
  TraceRecorder* recorder_ = nullptr;
  size_t id_ = 0;
  std::chrono::steady_clock::time_point start_;
  bool open_ = false;
};

/// \brief Lightweight per-question span recorder: spans form a tree via the
/// natural nesting of Span scopes (question → ask → analysis/retrieval/
/// extraction → validation → ETL), rendered as a flame-style text tree.
///
/// Parenting uses an open-span stack, so spans recorded through one
/// recorder must nest properly on one logical flow of control — the serial
/// Step-5 loop and the live Ask path. Speculative pool workers are not
/// traced (they pass a null recorder); their consumed answers surface as a
/// `speculative=true` annotation on the serial `qa.ask` span instead.
/// Internals are mutex-guarded anyway so a misuse cannot corrupt memory.
class TraceRecorder {
 public:
  /// Empty recorder.
  TraceRecorder() = default;
  TraceRecorder(const TraceRecorder&) = delete;             ///< Non-copyable.
  TraceRecorder& operator=(const TraceRecorder&) = delete;  ///< Non-copyable.

  /// All spans recorded so far, in start order (parents before children).
  std::vector<SpanRecord> spans() const;

  /// True when no span was ever recorded.
  bool empty() const;

  /// Renders the trace as an indented flame-style tree:
  /// ```
  /// step5.question (3.21 ms) [question=...]
  /// ├─ qa.ask (2.10 ms) [level=IrOnly answers=1]
  /// │  ├─ qa.analysis (0.40 ms)
  /// │  ...
  /// ```
  std::string Render() const;

 private:
  friend class Span;

  /// Opens a span under the innermost open span; returns its id.
  size_t StartSpan(const std::string& name);
  /// Closes span `id`, stamping `duration_ms`.
  void EndSpan(size_t id, double duration_ms);
  /// Appends an annotation to span `id`.
  void Annotate(size_t id, const std::string& key, const std::string& value);

  mutable std::mutex mu_;
  std::vector<SpanRecord> spans_;
  /// Ids of currently open spans, innermost last.
  std::vector<size_t> open_stack_;
};

}  // namespace dwqa

#endif  // DWQA_COMMON_TRACE_H_
