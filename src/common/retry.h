#ifndef DWQA_COMMON_RETRY_H_
#define DWQA_COMMON_RETRY_H_

#include <cstdint>
#include <string>
#include <utility>

#include "common/deadline.h"
#include "common/metrics.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"

namespace dwqa {

/// \brief Exponential backoff with seeded jitter.
///
/// Delays grow geometrically from `base_delay_ms`, capped at `max_delay_ms`,
/// and are spread by up to `jitter` of themselves so that retrying callers
/// do not stampede in lockstep. The jitter draws come from a seeded Rng, so
/// a fixed seed reproduces the exact retry schedule.
struct RetryPolicy {
  /// Total tries, including the first one. 1 = no retries.
  int max_attempts = 5;
  double base_delay_ms = 0.5;    ///< Delay before the second attempt.
  double max_delay_ms = 8.0;     ///< Backoff cap.
  double backoff_factor = 2.0;   ///< Multiplier between attempts.
  /// Fraction of the delay randomized away: delay *= 1 - U(0, jitter).
  double jitter = 0.5;
  uint64_t jitter_seed = 42;  ///< Seed of the jitter draw stream.
  /// When false, delays are computed (and reported) but not slept —
  /// deterministic-schedule tests do not want wall-clock in the loop.
  bool sleep = true;

  /// InvalidArgument on a policy that would loop zero times or backward:
  /// `max_attempts < 1`, negative delays, non-positive backoff factor, or
  /// jitter outside [0, 1].
  Status Validate() const;
};

/// \brief What one RetryCall did, for reports and diagnostics.
struct RetryStats {
  /// Tries made (>= 1 once the call ran).
  int attempts = 0;
  /// Transient failures seen (== attempts - 1 on eventual success).
  int transient_failures = 0;
  double total_delay_ms = 0.0;  ///< Backoff delay computed (slept or not).

  /// Folds another call's stats into this one (batch reporting).
  void Accumulate(const RetryStats& other) {
    attempts += other.attempts;
    transient_failures += other.transient_failures;
    total_delay_ms += other.total_delay_ms;
  }
};

/// Backoff delay before retry number `retry` (1-based), jittered via `rng`.
double BackoffDelayMs(const RetryPolicy& policy, int retry, Rng* rng);

/// Mirrors one RetryCall's stats into the registry (null = observability
/// off): attempts and transient failures go to
/// `dwqa_retry_attempts_total{stage}` /
/// `dwqa_retry_transient_failures_total{stage}`, and `gave_up` increments
/// `dwqa_retry_giveups_total{stage}` — the per-stage retry pressure the
/// Prometheus export shows for a served request. Call it once per settled
/// operation, after the final attempt.
void MirrorRetryStats(MetricRegistry* metrics, const std::string& stage,
                      const RetryStats& stats, bool gave_up);

namespace internal {
void SleepForMs(double ms);
}  // namespace internal

/// Runs `fn` (returning Status) up to `policy.max_attempts` times. Only
/// transient failures (IsTransient) are retried; permanent errors and
/// success return immediately. The last transient Status is returned when
/// the budget runs out. `stats`, when given, is overwritten.
///
/// A non-null `deadline` is charged one unit per attempt (under `stage`);
/// once the shared budget is exhausted the loop stops before the next
/// attempt and returns kDeadlineExceeded. Because every nesting level
/// charges the same Deadline object, budget spent by an inner RetryCall is
/// immediately visible to the enclosing loop.
template <typename Fn>
Status RetryCall(const RetryPolicy& policy, Fn&& fn,
                 RetryStats* stats = nullptr, Deadline* deadline = nullptr,
                 const std::string& stage = "retry") {
  Rng rng(policy.jitter_seed);
  RetryStats local;
  Status last = Status::OK();
  int max_attempts = policy.max_attempts < 1 ? 1 : policy.max_attempts;
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    if (deadline != nullptr) {
      Status spend = deadline->Spend(stage);
      if (!spend.ok()) {
        last = spend;
        break;
      }
    }
    ++local.attempts;
    last = fn();
    if (!IsTransient(last)) break;  // Success or permanent failure.
    ++local.transient_failures;
    if (attempt == max_attempts) break;
    double delay = BackoffDelayMs(policy, attempt, &rng);
    local.total_delay_ms += delay;
    if (policy.sleep && delay > 0.0) internal::SleepForMs(delay);
  }
  if (stats != nullptr) *stats = local;
  return last;
}

/// Result<T> flavour of RetryCall: `fn` returns Result<T>.
template <typename T, typename Fn>
Result<T> RetryResultCall(const RetryPolicy& policy, Fn&& fn,
                          RetryStats* stats = nullptr,
                          Deadline* deadline = nullptr,
                          const std::string& stage = "retry") {
  Result<T> last = Status::Unavailable("retry loop never ran");
  Status st = RetryCall(
      policy,
      [&]() -> Status {
        last = fn();
        return last.status();
      },
      stats, deadline, stage);
  // On a deadline trip the loop never re-ran `fn`, so `last` still holds an
  // older status — surface the deadline error instead.
  if (st.IsDeadlineExceeded()) return st;
  return last;
}

}  // namespace dwqa

#endif  // DWQA_COMMON_RETRY_H_
