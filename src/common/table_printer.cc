#include "common/table_printer.h"

#include <algorithm>

namespace dwqa {

void TablePrinter::AddRow(std::vector<std::string> row) {
  row.resize(headers_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::Render() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t i = 0; i < row.size(); ++i) {
      line += "| ";
      line += row[i];
      line.append(widths[i] - row[i].size() + 1, ' ');
    }
    line += "|\n";
    return line;
  };
  std::string out = render_row(headers_);
  std::string sep;
  for (size_t w : widths) {
    sep += "|";
    sep.append(w + 2, '-');
  }
  sep += "|\n";
  out += sep;
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TablePrinter::Print(std::ostream& os) const { os << Render(); }

void PrintBanner(std::ostream& os, const std::string& title) {
  os << "\n=== " << title << " ===\n";
}

}  // namespace dwqa
