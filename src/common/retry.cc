#include "common/retry.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "common/metric_names.h"

namespace dwqa {

Status RetryPolicy::Validate() const {
  if (max_attempts < 1) {
    return Status::InvalidArgument(
        "retry max_attempts must be >= 1, got " +
        std::to_string(max_attempts));
  }
  if (base_delay_ms < 0.0 || max_delay_ms < 0.0) {
    return Status::InvalidArgument("retry delays must be >= 0 ms");
  }
  if (!(backoff_factor > 0.0)) {
    return Status::InvalidArgument("retry backoff_factor must be > 0, got " +
                                   std::to_string(backoff_factor));
  }
  if (jitter < 0.0 || jitter > 1.0) {
    return Status::InvalidArgument("retry jitter must be in [0, 1], got " +
                                   std::to_string(jitter));
  }
  return Status::OK();
}

double BackoffDelayMs(const RetryPolicy& policy, int retry, Rng* rng) {
  if (retry < 1) retry = 1;
  double delay =
      policy.base_delay_ms * std::pow(policy.backoff_factor, retry - 1);
  delay = std::min(delay, policy.max_delay_ms);
  if (policy.jitter > 0.0 && rng != nullptr) {
    delay *= 1.0 - rng->NextDouble() * policy.jitter;
  }
  return std::max(delay, 0.0);
}

void MirrorRetryStats(MetricRegistry* metrics, const std::string& stage,
                      const RetryStats& stats, bool gave_up) {
  if (metrics == nullptr || stats.attempts <= 0) return;
  metrics
      ->GetCounter(kMetricRetryAttempts, {{"stage", stage}},
                   "Attempts RetryCall made, per guarded stage")
      ->Increment(static_cast<double>(stats.attempts));
  if (stats.transient_failures > 0) {
    metrics
        ->GetCounter(kMetricRetryTransientFailures, {{"stage", stage}},
                     "Transient failures RetryCall observed, per stage")
        ->Increment(static_cast<double>(stats.transient_failures));
  }
  if (gave_up) {
    metrics
        ->GetCounter(kMetricRetryGiveups, {{"stage", stage}},
                     "RetryCalls that exhausted their attempt budget")
        ->Increment();
  }
}

namespace internal {

void SleepForMs(double ms) {
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

}  // namespace internal

}  // namespace dwqa
