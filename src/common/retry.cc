#include "common/retry.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

namespace dwqa {

double BackoffDelayMs(const RetryPolicy& policy, int retry, Rng* rng) {
  if (retry < 1) retry = 1;
  double delay =
      policy.base_delay_ms * std::pow(policy.backoff_factor, retry - 1);
  delay = std::min(delay, policy.max_delay_ms);
  if (policy.jitter > 0.0 && rng != nullptr) {
    delay *= 1.0 - rng->NextDouble() * policy.jitter;
  }
  return std::max(delay, 0.0);
}

namespace internal {

void SleepForMs(double ms) {
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

}  // namespace internal

}  // namespace dwqa
