#ifndef DWQA_COMMON_LOGGING_H_
#define DWQA_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace dwqa {

/// Severity order for the logger: messages below the global threshold are
/// dropped.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// \brief Minimal leveled logger writing to stderr.
///
/// Global level defaults to kWarning so that library code stays quiet in
/// tests and benches; examples raise it to kInfo to narrate the pipeline.
class Logger {
 public:
  /// The global emission threshold.
  static LogLevel threshold();
  /// Replaces the global emission threshold.
  static void set_threshold(LogLevel level);

  /// True if a message at `level` would be emitted.
  static bool Enabled(LogLevel level) { return level >= threshold(); }

  /// Writes `message` to stderr when `level` clears the threshold.
  static void Log(LogLevel level, const std::string& message);
};

namespace internal {

/// Stream-style message collector; emits on destruction.
class LogMessage {
 public:
  /// Starts collecting a message at `level`.
  explicit LogMessage(LogLevel level) : level_(level) {}
  /// Hands the collected message to the Logger.
  ~LogMessage() { Logger::Log(level_, stream_.str()); }

  /// Appends `value` via operator<< into the pending message.
  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define DWQA_LOG(level)                                       \
  if (!::dwqa::Logger::Enabled(::dwqa::LogLevel::k##level)) { \
  } else                                                      \
    ::dwqa::internal::LogMessage(::dwqa::LogLevel::k##level)

/// Fatal invariant check: prints and aborts. Used for programmer errors only;
/// recoverable conditions go through Status.
#define DWQA_CHECK(condition)                                          \
  do {                                                                 \
    if (!(condition)) {                                                \
      std::cerr << "DWQA_CHECK failed at " << __FILE__ << ":"          \
                << __LINE__ << ": " #condition << std::endl;           \
      std::abort();                                                    \
    }                                                                  \
  } while (false)

}  // namespace dwqa

#endif  // DWQA_COMMON_LOGGING_H_
