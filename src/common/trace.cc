#include "common/trace.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace dwqa {

Span::Span(TraceRecorder* recorder, const std::string& name)
    : recorder_(recorder) {
  if (recorder_ == nullptr) return;
  id_ = recorder_->StartSpan(name);
  start_ = std::chrono::steady_clock::now();
  open_ = true;
}

Span::~Span() { End(); }

Span::Span(Span&& other) noexcept
    : recorder_(other.recorder_),
      id_(other.id_),
      start_(other.start_),
      open_(other.open_) {
  other.recorder_ = nullptr;
  other.open_ = false;
}

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    End();
    recorder_ = other.recorder_;
    id_ = other.id_;
    start_ = other.start_;
    open_ = other.open_;
    other.recorder_ = nullptr;
    other.open_ = false;
  }
  return *this;
}

void Span::Annotate(const std::string& key, const std::string& value) {
  if (recorder_ == nullptr) return;
  recorder_->Annotate(id_, key, value);
}

void Span::Annotate(const std::string& key, double value) {
  char buf[64];
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  } else {
    std::snprintf(buf, sizeof(buf), "%.6g", value);
  }
  Annotate(key, std::string(buf));
}

void Span::End() {
  if (recorder_ == nullptr || !open_) return;
  open_ = false;
  double ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - start_)
                  .count();
  recorder_->EndSpan(id_, ms);
}

size_t TraceRecorder::StartSpan(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  SpanRecord span;
  span.id = spans_.size();
  span.name = name;
  if (!open_stack_.empty()) {
    span.parent = open_stack_.back();
    span.depth = spans_[span.parent].depth + 1;
  }
  open_stack_.push_back(span.id);
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

void TraceRecorder::EndSpan(size_t id, double duration_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= spans_.size()) return;
  spans_[id].duration_ms = duration_ms;
  // Spans close in reverse start order under RAII; tolerate (and unwind
  // past) an out-of-order close instead of corrupting the stack.
  auto it = std::find(open_stack_.begin(), open_stack_.end(), id);
  if (it != open_stack_.end()) open_stack_.erase(it, open_stack_.end());
}

void TraceRecorder::Annotate(size_t id, const std::string& key,
                             const std::string& value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= spans_.size()) return;
  spans_[id].annotations.emplace_back(key, value);
}

std::vector<SpanRecord> TraceRecorder::spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

bool TraceRecorder::empty() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.empty();
}

std::string TraceRecorder::Render() const {
  std::vector<SpanRecord> spans = this->spans();
  // children[i] = ids of i's children, in start order; roots under kNoParent.
  std::vector<std::vector<size_t>> children(spans.size());
  std::vector<size_t> roots;
  for (const SpanRecord& span : spans) {
    if (span.parent == SpanRecord::kNoParent) {
      roots.push_back(span.id);
    } else {
      children[span.parent].push_back(span.id);
    }
  }
  std::ostringstream out;
  // Depth-first render with box-drawing guides. `prefix` carries the
  // vertical guides of the ancestors; `last` marks the final sibling.
  struct Frame {
    size_t id;
    std::string prefix;
    bool last;
    bool root;
  };
  std::vector<Frame> stack;
  for (size_t r = roots.size(); r-- > 0;) {
    stack.push_back({roots[r], "", r + 1 == roots.size(), true});
  }
  while (!stack.empty()) {
    Frame frame = stack.back();
    stack.pop_back();
    const SpanRecord& span = spans[frame.id];
    std::string line = frame.prefix;
    if (!frame.root) line += frame.last ? "└─ " : "├─ ";
    line += span.name;
    char ms[32];
    std::snprintf(ms, sizeof(ms), " (%.2f ms)", span.duration_ms);
    line += ms;
    if (!span.annotations.empty()) {
      line += " [";
      for (size_t a = 0; a < span.annotations.size(); ++a) {
        if (a > 0) line += " ";
        line += span.annotations[a].first + "=" + span.annotations[a].second;
      }
      line += "]";
    }
    out << line << "\n";
    std::string child_prefix =
        frame.root ? frame.prefix
                   : frame.prefix + (frame.last ? "   " : "│  ");
    const std::vector<size_t>& kids = children[frame.id];
    for (size_t k = kids.size(); k-- > 0;) {
      stack.push_back({kids[k], child_prefix, k + 1 == kids.size(), false});
    }
  }
  return out.str();
}

}  // namespace dwqa
