#ifndef DWQA_COMMON_TABLE_PRINTER_H_
#define DWQA_COMMON_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace dwqa {

/// \brief Column-aligned plain-text tables for the bench harnesses.
///
/// Every bench binary prints the rows/series the paper reports through this
/// printer so that bench_output.txt is uniform and diffable.
class TablePrinter {
 public:
  /// A table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  /// Appends a row; the row is padded/truncated to the header width.
  void AddRow(std::vector<std::string> row);

  /// Renders the table with a header separator.
  std::string Render() const;

  /// Convenience: renders to `os`.
  void Print(std::ostream& os) const;

  /// Rows added so far (headers excluded).
  size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a section banner ("== title ==") used by bench binaries to mark
/// each paper table/figure they regenerate.
void PrintBanner(std::ostream& os, const std::string& title);

}  // namespace dwqa

#endif  // DWQA_COMMON_TABLE_PRINTER_H_
