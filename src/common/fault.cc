#include "common/fault.h"

#include <algorithm>
#include <cctype>

namespace dwqa {

const char* FaultModeName(FaultMode mode) {
  switch (mode) {
    case FaultMode::kTransient:
      return "Transient";
    case FaultMode::kTruncatePayload:
      return "TruncatePayload";
    case FaultMode::kSwapDigits:
      return "SwapDigits";
    case FaultMode::kBreakUnits:
      return "BreakUnits";
  }
  return "Unknown";
}

FaultConfig FaultConfig::TransientEverywhere(double rate, uint64_t seed) {
  FaultConfig config;
  config.seed = seed;
  for (const char* point : {kFaultPointFetch, kFaultPointParse,
                            kFaultPointIndex, kFaultPointEtlLoad}) {
    config.rules.push_back({point, rate, FaultMode::kTransient,
                            StatusCode::kUnavailable});
  }
  return config;
}

FaultInjector::FaultInjector(FaultConfig config)
    : config_(std::move(config)), rng_(config_.seed) {}

Status FaultInjector::Hit(const std::string& point) {
  for (const FaultRule& rule : config_.rules) {
    if (rule.point != point || rule.mode != FaultMode::kTransient) continue;
    // Draw even when probability is 0 so that adding/removing a 0-rate rule
    // does not shift the schedule of the other rules at this point.
    if (rng_.NextBool(rule.probability)) {
      ++fires_[point];
      return Status(rule.code, "injected fault at '" + point + "'");
    }
  }
  return Status::OK();
}

bool FaultInjector::ShouldCorrupt(const std::string& point, FaultMode* mode) {
  for (const FaultRule& rule : config_.rules) {
    if (rule.point != point || rule.mode == FaultMode::kTransient) continue;
    if (rng_.NextBool(rule.probability)) {
      ++fires_[point];
      *mode = rule.mode;
      return true;
    }
  }
  return false;
}

std::string FaultInjector::Corrupt(std::string payload, FaultMode mode) {
  switch (mode) {
    case FaultMode::kTransient:
      return payload;  // Transient faults do not touch payloads.
    case FaultMode::kTruncatePayload:
      return TruncatePayload(std::move(payload), &rng_);
    case FaultMode::kSwapDigits:
      return SwapDigits(std::move(payload), &rng_);
    case FaultMode::kBreakUnits:
      return BreakUnits(std::move(payload), &rng_);
  }
  return payload;
}

std::string FaultInjector::TruncatePayload(std::string payload, Rng* rng) {
  if (payload.size() < 2) return payload;
  // Cut somewhere in the second half — the fetch started fine and died
  // mid-stream, frequently inside a tag or a sentence.
  size_t keep = payload.size() / 2 +
                rng->NextIndex(payload.size() - payload.size() / 2);
  payload.resize(keep);
  return payload;
}

std::string FaultInjector::SwapDigits(std::string payload, Rng* rng) {
  // Garble roughly one digit in four: duplicate it (8 -> 88, pushing the
  // magnitude out of any plausible interval) or replace it with 9.
  std::string out;
  out.reserve(payload.size() + payload.size() / 8);
  for (char c : payload) {
    if (std::isdigit(static_cast<unsigned char>(c)) && rng->NextBool(0.25)) {
      if (rng->NextBool(0.5)) {
        out += c;
        out += c;  // "8" -> "88"
      } else {
        out += '9';
      }
    } else {
      out += c;
    }
  }
  return out;
}

std::string FaultInjector::BreakUnits(std::string payload, Rng* rng) {
  // Destroy the measure-unit association: degree signs vanish and the
  // Fahrenheit marker turns into a meaningless letter.
  auto replace_some = [&](const std::string& from, const std::string& to) {
    size_t pos = 0;
    while ((pos = payload.find(from, pos)) != std::string::npos) {
      if (rng->NextBool(0.75)) {
        payload.replace(pos, from.size(), to);
        pos += to.size();
      } else {
        pos += from.size();
      }
    }
  };
  replace_some("\xC2\xBA C", " K");  // "8º C" -> "8 K"
  replace_some("\xC2\xBA", "");      // bare degree signs vanish
  replace_some(" F ", " Q ");
  return payload;
}

size_t FaultInjector::fires(const std::string& point) const {
  auto it = fires_.find(point);
  return it == fires_.end() ? 0 : it->second;
}

size_t FaultInjector::total_fires() const {
  size_t total = 0;
  for (const auto& [point, count] : fires_) total += count;
  return total;
}

}  // namespace dwqa
