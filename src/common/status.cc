#include "common/status.h"

namespace dwqa {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kOverloaded:
      return "Overloaded";
    case StatusCode::kCorruption:
      return "Corruption";
  }
  return "Unknown";
}

bool IsTransient(const Status& status) {
  return status.code() == StatusCode::kUnavailable ||
         status.code() == StatusCode::kDeadlineExceeded;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace dwqa
