#ifndef DWQA_COMMON_FAULT_H_
#define DWQA_COMMON_FAULT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace dwqa {

/// \name Named fault points
///
/// Well-known injection sites of the QA→DW feed path. A FaultInjector rule
/// names the point it arms; callers probe the injector at these sites.
/// @{
/// Fetching one page / asking one question against the (synthetic) web.
inline constexpr char kFaultPointFetch[] = "web.fetch";
/// Normalizing a raw page (HTML stripping) before indexation.
inline constexpr char kFaultPointParse[] = "ir.parse";
/// The off-line corpus indexation pass.
inline constexpr char kFaultPointIndex[] = "ir.index";
/// Loading one fact record through the ETL boundary.
inline constexpr char kFaultPointEtlLoad[] = "dw.etl.load";
/// Writing the Step-5 feed checkpoint file. Deliberately NOT part of
/// FaultConfig::TransientEverywhere — arming it must not shift the draw
/// schedule of existing blanket-fault tests.
inline constexpr char kFaultPointCheckpoint[] = "integration.checkpoint";
/// A mutating operation of a FaultFs (common/io.h): WAL appends, snapshot
/// writes, renames. Like the checkpoint point, NOT part of
/// TransientEverywhere — durability chaos is armed explicitly so the draw
/// schedule of existing blanket-fault tests stays frozen.
inline constexpr char kFaultPointIoWrite[] = "io.write";
/// Dispatching one federated sub-query to a member warehouse
/// (dw/federation/federated_engine.h). NOT part of TransientEverywhere —
/// federation chaos is armed per member warehouse so partial-coverage
/// degradation can be exercised without perturbing feed-path schedules.
inline constexpr char kFaultPointFedSubquery[] = "fed.subquery";
/// @}
///
/// A rule may also scope a point to one source by suffixing the source URL,
/// e.g. "dw.etl.load:http://weather.example/barcelona" — probes at the
/// scoped point only match rules armed with that exact name, so a poisoned
/// source never perturbs the draw schedule of healthy ones.

/// How an armed fault manifests.
enum class FaultMode {
  /// A retryable error (kUnavailable by default): the operation fails this
  /// time but would succeed if repeated — a flaky fetch, a busy backend.
  kTransient,
  /// The payload is cut short mid-stream (a dropped connection leaving a
  /// half-downloaded, possibly mid-tag HTML page).
  kTruncatePayload,
  /// Digits in the payload are garbled (OCR-style corruption, encoding
  /// bugs): temperatures become implausible magnitudes.
  kSwapDigits,
  /// Unit markers (º C, F, EUR) are destroyed, producing the paper's
  /// Figure-5 failure mode — a value whose scale cannot be trusted.
  kBreakUnits,
};

const char* FaultModeName(FaultMode mode);

/// One armed fault: at `point`, with probability `probability` per hit,
/// manifest as `mode`. Transient rules fail with `code`.
struct FaultRule {
  std::string point;                        ///< Fault-point name to arm.
  double probability = 0.0;                 ///< Per-hit firing probability.
  FaultMode mode = FaultMode::kTransient;   ///< How the fault manifests.
  StatusCode code = StatusCode::kUnavailable;  ///< Transient failure code.
};

/// \brief Configuration of a FaultInjector. No rules = injector disabled.
struct FaultConfig {
  uint64_t seed = 1;             ///< Seed of the injector's RNG stream.
  std::vector<FaultRule> rules;  ///< Armed rules; empty = disabled.

  /// Arms a transient rule of probability `rate` at every known fault point
  /// — the blanket "flaky world" used by the resilience bench.
  static FaultConfig TransientEverywhere(double rate, uint64_t seed = 1);
};

/// \brief Seeded, deterministic fault injector.
///
/// The synthetic web substitutes the live Web so extraction can be measured
/// exactly; the injector substitutes the live Web's *unreliability* so the
/// feed's resilience can be measured exactly. All draws come from one
/// SplitMix64 stream: a fixed seed reproduces the exact same fault schedule
/// across runs, which is what lets tests assert "retries mask every
/// transient failure" byte-for-byte.
class FaultInjector {
 public:
  /// Disabled injector: never fires, never draws.
  FaultInjector() = default;

  /// Injector armed with `config`'s rules, drawing from its seeded stream.
  explicit FaultInjector(FaultConfig config);

  /// True when at least one rule is armed.
  bool enabled() const { return !config_.rules.empty(); }

  /// Probes `point`: returns a non-OK transient Status when a transient
  /// rule fires, OK otherwise. Corruption rules never fire here.
  Status Hit(const std::string& point);

  /// Probes `point` for corruption rules: true when one fires, with the
  /// rule's mode in `*mode` (untouched otherwise).
  bool ShouldCorrupt(const std::string& point, FaultMode* mode);

  /// Applies `mode` to `payload` using the injector's own RNG stream.
  std::string Corrupt(std::string payload, FaultMode mode);

  /// \name Stateless corruption primitives (deterministic given the Rng)
  /// @{
  /// Cuts the payload at a random point.
  static std::string TruncatePayload(std::string payload, Rng* rng);
  /// Transposes adjacent digit pairs.
  static std::string SwapDigits(std::string payload, Rng* rng);
  /// Deletes unit markers (ºC / F) so extraction loses the scale.
  static std::string BreakUnits(std::string payload, Rng* rng);
  /// @}

  /// Times a rule fired at `point` (transient and corruption alike).
  size_t fires(const std::string& point) const;
  /// Total rule firings across all points.
  size_t total_fires() const;
  /// The armed configuration.
  const FaultConfig& config() const { return config_; }

 private:
  FaultConfig config_;
  Rng rng_{0};
  std::map<std::string, size_t> fires_;
};

}  // namespace dwqa

#endif  // DWQA_COMMON_FAULT_H_
