#include "common/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/logging.h"

namespace dwqa {

namespace {

/// Prometheus/JSON-safe number rendering: integers without a decimal point
/// (counters are almost always whole), everything else with up to six
/// significant digits. Deterministic, locale-independent.
std::string FormatMetricValue(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(value));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

/// Escapes a Prometheus label value (backslash, quote, newline).
std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// Escapes a JSON string.
std::string EscapeJson(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// `{k="v",k2="v2"}` or "" for an empty label set.
std::string PrometheusLabels(const MetricLabels& labels,
                             const std::string& extra_key = "",
                             const std::string& extra_value = "") {
  if (labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += key + "=\"" + EscapeLabelValue(value) + "\"";
  }
  if (!extra_key.empty()) {
    if (!first) out += ",";
    out += extra_key + "=\"" + EscapeLabelValue(extra_value) + "\"";
  }
  return out + "}";
}

}  // namespace

double HistogramQuantile(const MetricSnapshot& snapshot, double q) {
  if (snapshot.type != MetricType::kHistogram || snapshot.count == 0) {
    return 0.0;
  }
  q = std::min(std::max(q, 0.0), 1.0);
  const double rank = q * static_cast<double>(snapshot.count);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < snapshot.bucket_counts.size(); ++i) {
    uint64_t in_bucket = snapshot.bucket_counts[i];
    if (static_cast<double>(cumulative + in_bucket) >= rank &&
        in_bucket > 0) {
      // The +Inf bucket has no upper bound to interpolate toward — clamp
      // to the largest finite bound, as Prometheus does.
      if (i >= snapshot.bounds.size()) {
        return snapshot.bounds.empty() ? 0.0 : snapshot.bounds.back();
      }
      double lower = i == 0 ? 0.0 : snapshot.bounds[i - 1];
      double upper = snapshot.bounds[i];
      double into = rank - static_cast<double>(cumulative);
      return lower +
             (upper - lower) * (into / static_cast<double>(in_bucket));
    }
    cumulative += in_bucket;
  }
  return snapshot.bounds.empty() ? 0.0 : snapshot.bounds.back();
}

const char* MetricTypeName(MetricType type) {
  switch (type) {
    case MetricType::kCounter: return "counter";
    case MetricType::kGauge: return "gauge";
    case MetricType::kHistogram: return "histogram";
  }
  return "unknown";
}

void Counter::Increment(double delta) {
  if (delta < 0.0 || std::isnan(delta)) {
    DWQA_LOG(Debug) << "counter increment of " << delta << " dropped";
    return;
  }
  value_.fetch_add(delta, std::memory_order_relaxed);
}

void Gauge::Add(double delta) {
  value_.fetch_add(delta, std::memory_order_relaxed);
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(new std::atomic<uint64_t>[bounds_.size() + 1]) {
  DWQA_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()));
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Observe(double value) {
  // First bucket whose upper bound admits the value; the +Inf overflow
  // bucket (index bounds_.size()) catches the rest.
  size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin();
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

std::vector<uint64_t> Histogram::bucket_counts() const {
  std::vector<uint64_t> counts(bounds_.size() + 1);
  for (size_t i = 0; i < counts.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

const std::vector<double>& MetricRegistry::LatencyBucketsMs() {
  static const std::vector<double> kBuckets = {
      0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0,
      250.0, 1000.0};
  return kBuckets;
}

MetricRegistry::Series* MetricRegistry::GetSeries(
    const std::string& name, const MetricLabels& labels, MetricType type,
    const std::string& help, const std::vector<double>& bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [family_it, family_created] = families_.try_emplace(name);
  Family& family = family_it->second;
  if (family_created) {
    family.type = type;
  } else {
    // Same name, different type would split one exposition family across
    // incompatible kinds — a bug at the call site, not a runtime condition.
    DWQA_CHECK(family.type == type);
  }
  if (family.help.empty() && !help.empty()) family.help = help;
  auto [series_it, series_created] =
      series_.try_emplace({name, labels});
  Series& series = series_it->second;
  if (series_created) {
    switch (type) {
      case MetricType::kCounter:
        series.counter = std::make_unique<Counter>();
        break;
      case MetricType::kGauge:
        series.gauge = std::make_unique<Gauge>();
        break;
      case MetricType::kHistogram:
        series.histogram = std::make_unique<Histogram>(
            bounds.empty() ? LatencyBucketsMs() : bounds);
        break;
    }
  }
  return &series;
}

Counter* MetricRegistry::GetCounter(const std::string& name,
                                    const MetricLabels& labels,
                                    const std::string& help) {
  return GetSeries(name, labels, MetricType::kCounter, help, {})
      ->counter.get();
}

Gauge* MetricRegistry::GetGauge(const std::string& name,
                                const MetricLabels& labels,
                                const std::string& help) {
  return GetSeries(name, labels, MetricType::kGauge, help, {})->gauge.get();
}

Histogram* MetricRegistry::GetHistogram(const std::string& name,
                                        const MetricLabels& labels,
                                        const std::vector<double>& bounds,
                                        const std::string& help) {
  return GetSeries(name, labels, MetricType::kHistogram, help, bounds)
      ->histogram.get();
}

std::vector<MetricSnapshot> MetricRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSnapshot> out;
  out.reserve(series_.size());
  for (const auto& [key, series] : series_) {
    MetricSnapshot snap;
    snap.name = key.first;
    snap.labels = key.second;
    const Family& family = families_.at(key.first);
    snap.type = family.type;
    snap.help = family.help;
    switch (family.type) {
      case MetricType::kCounter:
        snap.value = series.counter->value();
        break;
      case MetricType::kGauge:
        snap.value = series.gauge->value();
        break;
      case MetricType::kHistogram:
        snap.bounds = series.histogram->bounds();
        snap.bucket_counts = series.histogram->bucket_counts();
        snap.count = series.histogram->count();
        snap.sum = series.histogram->sum();
        snap.value = snap.sum;
        break;
    }
    out.push_back(std::move(snap));
  }
  return out;
}

std::vector<MetricSnapshot> MetricRegistry::SnapshotFamily(
    const std::string& name) const {
  std::vector<MetricSnapshot> out;
  for (MetricSnapshot& snap : Snapshot()) {
    if (snap.name == name) out.push_back(std::move(snap));
  }
  return out;
}

double MetricRegistry::Value(const std::string& name,
                             const MetricLabels& labels) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = series_.find({name, labels});
  if (it == series_.end()) return 0.0;
  if (it->second.counter != nullptr) return it->second.counter->value();
  if (it->second.gauge != nullptr) return it->second.gauge->value();
  if (it->second.histogram != nullptr) return it->second.histogram->sum();
  return 0.0;
}

double MetricRegistry::FamilySum(const std::string& name) const {
  double sum = 0.0;
  for (const MetricSnapshot& snap : SnapshotFamily(name)) {
    sum += snap.value;
  }
  return sum;
}

size_t MetricRegistry::series_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return series_.size();
}

std::string MetricRegistry::ExportPrometheus() const {
  std::ostringstream out;
  std::string current_family;
  for (const MetricSnapshot& snap : Snapshot()) {
    if (snap.name != current_family) {
      current_family = snap.name;
      if (!snap.help.empty()) {
        out << "# HELP " << snap.name << " " << snap.help << "\n";
      }
      out << "# TYPE " << snap.name << " " << MetricTypeName(snap.type)
          << "\n";
    }
    if (snap.type == MetricType::kHistogram) {
      uint64_t cumulative = 0;
      for (size_t i = 0; i < snap.bucket_counts.size(); ++i) {
        cumulative += snap.bucket_counts[i];
        std::string le = i < snap.bounds.size()
                             ? FormatMetricValue(snap.bounds[i])
                             : std::string("+Inf");
        out << snap.name << "_bucket"
            << PrometheusLabels(snap.labels, "le", le) << " " << cumulative
            << "\n";
      }
      out << snap.name << "_sum" << PrometheusLabels(snap.labels) << " "
          << FormatMetricValue(snap.sum) << "\n";
      out << snap.name << "_count" << PrometheusLabels(snap.labels) << " "
          << snap.count << "\n";
    } else {
      out << snap.name << PrometheusLabels(snap.labels) << " "
          << FormatMetricValue(snap.value) << "\n";
    }
  }
  return out.str();
}

std::string MetricRegistry::ExportJson() const {
  std::ostringstream out;
  out << "{\n  \"schema\": \"dwqa-metrics-v1\",\n  \"metrics\": [\n";
  std::vector<MetricSnapshot> snaps = Snapshot();
  for (size_t i = 0; i < snaps.size(); ++i) {
    const MetricSnapshot& snap = snaps[i];
    out << "    {\"name\": \"" << EscapeJson(snap.name) << "\", \"type\": \""
        << MetricTypeName(snap.type) << "\", \"labels\": {";
    bool first = true;
    for (const auto& [key, value] : snap.labels) {
      if (!first) out << ", ";
      first = false;
      out << "\"" << EscapeJson(key) << "\": \"" << EscapeJson(value)
          << "\"";
    }
    out << "}";
    if (snap.type == MetricType::kHistogram) {
      out << ", \"count\": " << snap.count
          << ", \"sum\": " << FormatMetricValue(snap.sum)
          << ", \"buckets\": [";
      for (size_t b = 0; b < snap.bucket_counts.size(); ++b) {
        if (b > 0) out << ", ";
        out << "{\"le\": ";
        if (b < snap.bounds.size()) {
          out << FormatMetricValue(snap.bounds[b]);
        } else {
          out << "\"+Inf\"";
        }
        out << ", \"count\": " << snap.bucket_counts[b] << "}";
      }
      out << "]";
    } else {
      out << ", \"value\": " << FormatMetricValue(snap.value);
    }
    out << "}" << (i + 1 < snaps.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.str();
}

}  // namespace dwqa
