#include "common/deadline.h"

#include <cmath>

namespace dwqa {

Status DeadlineConfig::Validate() const {
  if (std::isnan(budget)) {
    return Status::InvalidArgument("deadline budget must not be NaN");
  }
  if (budget < 0.0) {
    return Status::InvalidArgument("deadline budget must be >= 0, got " +
                                   std::to_string(budget));
  }
  return Status::OK();
}

Status Deadline::Exceeded(const std::string& stage) {
  if (exhausted_stage_.empty()) exhausted_stage_ = stage;
  return Status::DeadlineExceeded(
      "budget of " + std::to_string(config_.budget) +
      " units exhausted at stage '" + stage + "' (spent " +
      std::to_string(spent_) + ")");
}

Status Deadline::Spend(const std::string& stage, double cost) {
  if (exhausted()) return Exceeded(stage);
  spent_ += cost;
  spent_by_stage_[stage] += cost;
  return Status::OK();
}

Status Deadline::Check(const std::string& stage) {
  if (exhausted()) return Exceeded(stage);
  return Status::OK();
}

Status Deadline::Absorb(const Deadline& other) {
  Status first = Status::OK();
  for (const auto& [stage, units] : other.spent_by_stage()) {
    Status st = Spend(stage, units);
    if (first.ok() && !st.ok()) first = st;
  }
  return first;
}

}  // namespace dwqa
