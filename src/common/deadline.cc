#include "common/deadline.h"

#include <cmath>

#include "common/metric_names.h"

namespace dwqa {

Status DeadlineConfig::Validate() const {
  if (std::isnan(budget)) {
    return Status::InvalidArgument("deadline budget must not be NaN");
  }
  if (budget < 0.0) {
    return Status::InvalidArgument("deadline budget must be >= 0, got " +
                                   std::to_string(budget));
  }
  return Status::OK();
}

void Deadline::set_metrics(MetricRegistry* metrics) {
  metrics_ = metrics;
  if (metrics_ != nullptr) {
    // Register the gauge at 0 so an unexhausted run still exports it.
    metrics_->GetGauge(kMetricDeadlineExhausted, {},
                      "1 once the shared deadline budget is exhausted")
        ->Set(exhausted() ? 1.0 : 0.0);
  }
}

Status Deadline::Exceeded(const std::string& stage) {
  if (exhausted_stage_.empty()) exhausted_stage_ = stage;
  if (metrics_ != nullptr) {
    metrics_->GetGauge(kMetricDeadlineExhausted)->Set(1.0);
  }
  return Status::DeadlineExceeded(
      "budget of " + std::to_string(config_.budget) +
      " units exhausted at stage '" + stage + "' (spent " +
      std::to_string(spent_) + ")");
}

Status Deadline::Spend(const std::string& stage, double cost) {
  if (exhausted()) return Exceeded(stage);
  spent_ += cost;
  spent_by_stage_[stage] += cost;
  if (metrics_ != nullptr) {
    metrics_
        ->GetCounter(kMetricDeadlineSpentUnits, {{"stage", stage}},
                     "Deadline budget units charged per stage")
        ->Increment(cost);
    if (exhausted()) {
      metrics_->GetGauge(kMetricDeadlineExhausted)->Set(1.0);
    }
  }
  return Status::OK();
}

Status Deadline::Check(const std::string& stage) {
  if (exhausted()) return Exceeded(stage);
  return Status::OK();
}

Status Deadline::Absorb(const Deadline& other) {
  Status first = Status::OK();
  for (const auto& [stage, units] : other.spent_by_stage()) {
    Status st = Spend(stage, units);
    if (first.ok() && !st.ok()) first = st;
  }
  return first;
}

}  // namespace dwqa
