#ifndef DWQA_COMMON_THREAD_POOL_H_
#define DWQA_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace dwqa {

/// \brief Fixed-size, work-stealing-free thread pool with deterministic
/// output ordering.
///
/// This is the one threading primitive of the codebase (a lint rejects raw
/// `std::thread` elsewhere in src/). Design constraints, in order:
///
///  1. **Determinism.** Results are identified by their index, never by
///     completion order: `ParallelFor(n, fn)` promises that `fn(i)` ran
///     exactly once for every `i` and that the caller observes all writes
///     after the join — so a caller filling `out[i]` gets the same output
///     vector for any worker count, including zero. There is no work
///     stealing and no reordering layer; tasks are dispensed from a single
///     FIFO counter.
///  2. **Degenerate case == serial code.** A pool built with `threads <= 1`
///     starts no workers at all: Submit and ParallelFor run inline on the
///     caller's thread, in index order. `threads = 1` configs therefore
///     exercise the exact pre-parallelism code path.
///  3. **Exception transparency.** A task exception is never swallowed:
///     Submit surfaces it through the returned future, ParallelFor rethrows
///     the lowest-index exception after all indices ran to completion.
class ThreadPool {
 public:
  /// Starts `threads` workers; `0` and `1` start none (inline execution).
  explicit ThreadPool(size_t threads);
  /// Drains the queue and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;             ///< Non-copyable.
  ThreadPool& operator=(const ThreadPool&) = delete;  ///< Non-copyable.

  /// Workers running tasks (0 in the inline degenerate case).
  size_t worker_count() const { return workers_.size(); }

  /// Schedules `fn` and returns its future. Inline pools run `fn` before
  /// returning (the future is already ready); errors still travel through
  /// the future in both modes.
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    if (workers_.empty()) {
      (*task)();
    } else {
      Enqueue([task]() { (*task)(); });
    }
    return future;
  }

  /// Runs `fn(i)` for every `i` in `[0, n)` and blocks until all indices
  /// completed. The calling thread participates, so a pool that is busy (or
  /// inline) still makes progress. Indices are dispensed in increasing
  /// order from a shared counter; when a task throws, the remaining indices
  /// still run and the lowest-index exception is rethrown after the join.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void Enqueue(std::function<void()> task);
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> queue_;
  bool stop_ = false;
};

}  // namespace dwqa

#endif  // DWQA_COMMON_THREAD_POOL_H_
