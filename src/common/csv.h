#ifndef DWQA_COMMON_CSV_H_
#define DWQA_COMMON_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace dwqa {

/// \brief RFC-4180-ish CSV reading/writing.
///
/// Supports quoted fields containing commas, quotes (doubled) and newlines.
/// Used for the ETL boundary: Step 5 of the integration pipeline emits the
/// generated database both in memory and as CSV for downstream BI tools.
class Csv {
 public:
  /// Parses one CSV document into rows of fields.
  static Result<std::vector<std::vector<std::string>>> Parse(
      std::string_view text);

  /// Renders rows as CSV, quoting fields when needed.
  static std::string Render(
      const std::vector<std::vector<std::string>>& rows);

  /// Quotes a single field if it contains a comma, quote or newline.
  static std::string EscapeField(std::string_view field);
};

}  // namespace dwqa

#endif  // DWQA_COMMON_CSV_H_
