#include "common/date.h"

#include <array>

#include "common/string_util.h"

namespace dwqa {

namespace {
constexpr std::array<const char*, 12> kMonthNames = {
    "January", "February", "March",     "April",   "May",      "June",
    "July",    "August",   "September", "October", "November", "December"};

constexpr std::array<const char*, 7> kDayNames = {
    "Sunday", "Monday", "Tuesday", "Wednesday", "Thursday", "Friday",
    "Saturday"};
}  // namespace

bool Date::IsLeapYear(int year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

int Date::DaysInMonth(int year, int month) {
  static constexpr std::array<int, 12> kDays = {31, 28, 31, 30, 31, 30,
                                                31, 31, 30, 31, 30, 31};
  if (month < 1 || month > 12) return 0;
  if (month == 2 && IsLeapYear(year)) return 29;
  return kDays[static_cast<size_t>(month - 1)];
}

bool Date::IsValid() const {
  return month_ >= 1 && month_ <= 12 && day_ >= 1 &&
         day_ <= DaysInMonth(year_, month_);
}

Result<Date> Date::Make(int year, int month, int day) {
  Date d(year, month, day);
  if (!d.IsValid()) {
    return Status::InvalidArgument("invalid date " + std::to_string(year) +
                                   "-" + std::to_string(month) + "-" +
                                   std::to_string(day));
  }
  return d;
}

int Date::DayOfWeek() const {
  // Zeller's congruence adapted to return 0=Sunday.
  int y = year_;
  int m = month_;
  if (m < 3) {
    m += 12;
    --y;
  }
  int k = y % 100;
  int j = y / 100;
  int h = (day_ + 13 * (m + 1) / 5 + k + k / 4 + j / 4 + 5 * j) % 7;
  // h: 0=Saturday, 1=Sunday, ...
  return (h + 6) % 7;
}

std::string Date::DayOfWeekName() const {
  return kDayNames[static_cast<size_t>(DayOfWeek())];
}

std::string Date::MonthName() const {
  if (month_ < 1 || month_ > 12) return "?";
  return kMonthNames[static_cast<size_t>(month_ - 1)];
}

int64_t Date::ToEpochDays() const {
  // Howard Hinnant's days_from_civil algorithm.
  int y = year_;
  int m = month_;
  int d = day_;
  y -= m <= 2;
  const int era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy =
      static_cast<unsigned>((153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1);
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097LL + static_cast<int64_t>(doe) - 719468LL;
}

Date Date::FromEpochDays(int64_t z) {
  // Howard Hinnant's civil_from_days algorithm.
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t y = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;
  const unsigned m = mp + (mp < 10 ? 3 : -9);
  return Date(static_cast<int>(y + (m <= 2)), static_cast<int>(m),
              static_cast<int>(d));
}

Date Date::NextDay() const { return FromEpochDays(ToEpochDays() + 1); }

std::string Date::ToIsoString() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", year_, month_, day_);
  return buf;
}

Result<Date> Date::FromIsoString(const std::string& iso) {
  std::vector<std::string> parts = Split(iso, '-');
  if (parts.size() != 3 || parts[0].size() != 4 || !IsDigits(parts[0]) ||
      parts[1].size() != 2 || !IsDigits(parts[1]) || parts[2].size() != 2 ||
      !IsDigits(parts[2])) {
    return Status::InvalidArgument("not an ISO date (YYYY-MM-DD): '" + iso +
                                   "'");
  }
  return Make(std::stoi(parts[0]), std::stoi(parts[1]), std::stoi(parts[2]));
}

std::string Date::ToLongString() const {
  return DayOfWeekName() + ", " + MonthName() + " " + std::to_string(day_) +
         ", " + std::to_string(year_);
}

int Date::MonthFromName(const std::string& name) {
  std::string lower = ToLower(name);
  for (size_t i = 0; i < kMonthNames.size(); ++i) {
    if (lower == ToLower(kMonthNames[i])) return static_cast<int>(i + 1);
  }
  return 0;
}

}  // namespace dwqa
