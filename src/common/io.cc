#include "common/io.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace dwqa {

namespace {

namespace fs = std::filesystem;

std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32(std::string_view data) {
  static const std::array<uint32_t, 256> kTable = BuildCrcTable();
  uint32_t crc = 0xFFFFFFFFu;
  for (char ch : data) {
    crc = kTable[(crc ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::string Crc32Hex(std::string_view data) {
  char buf[9];
  std::snprintf(buf, sizeof(buf), "%08x", Crc32(data));
  return buf;
}

namespace {

/// \brief Fs implementation over std::filesystem + POSIX fsync.
class RealFs : public Fs {
 public:
  Result<std::string> ReadFile(const std::string& path) override {
    std::ifstream in(path, std::ios::binary);
    if (!in) return Status::IOError("cannot open '" + path + "'");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (in.bad()) return Status::IOError("read failed: " + path);
    return buffer.str();
  }

  Status WriteFile(const std::string& path,
                   const std::string& data) override {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IOError("cannot open '" + path + "'");
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
    out.flush();
    return out.good() ? Status::OK()
                      : Status::IOError("write failed: " + path);
  }

  Status AppendFile(const std::string& path,
                    const std::string& data) override {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    if (!out) return Status::IOError("cannot open '" + path + "'");
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
    out.flush();
    return out.good() ? Status::OK()
                      : Status::IOError("append failed: " + path);
  }

  Status SyncFile(const std::string& path) override {
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return Status::IOError("cannot open for fsync: " + path);
    int rc = ::fsync(fd);
    ::close(fd);
    if (rc != 0) return Status::IOError("fsync failed: " + path);
    return Status::OK();
  }

  Status Rename(const std::string& from, const std::string& to) override {
    std::error_code ec;
    fs::rename(from, to, ec);
    if (ec) {
      return Status::IOError("cannot rename '" + from + "' to '" + to +
                             "': " + ec.message());
    }
    return Status::OK();
  }

  Status RemoveFile(const std::string& path) override {
    std::error_code ec;
    if (!fs::remove(path, ec) || ec) {
      return Status::IOError("cannot remove '" + path + "'" +
                             (ec ? ": " + ec.message() : ""));
    }
    return Status::OK();
  }

  Status RemoveAll(const std::string& path) override {
    std::error_code ec;
    fs::remove_all(path, ec);
    if (ec) {
      return Status::IOError("cannot remove '" + path +
                             "': " + ec.message());
    }
    return Status::OK();
  }

  Status CreateDirs(const std::string& path) override {
    std::error_code ec;
    fs::create_directories(path, ec);
    if (ec) {
      return Status::IOError("cannot create directory '" + path +
                             "': " + ec.message());
    }
    return Status::OK();
  }

  bool Exists(const std::string& path) override {
    std::error_code ec;
    return fs::exists(path, ec);
  }

  Result<std::vector<std::string>> ListDir(const std::string& dir) override {
    std::error_code ec;
    std::vector<std::string> names;
    for (const auto& entry : fs::directory_iterator(dir, ec)) {
      names.push_back(entry.path().filename().string());
    }
    if (ec) {
      return Status::IOError("cannot list '" + dir + "': " + ec.message());
    }
    std::sort(names.begin(), names.end());
    return names;
  }

  Result<uint64_t> FileSize(const std::string& path) override {
    std::error_code ec;
    uint64_t size = fs::file_size(path, ec);
    if (ec) {
      return Status::IOError("cannot stat '" + path + "': " + ec.message());
    }
    return size;
  }

  Status TruncateFile(const std::string& path, uint64_t size) override {
    std::error_code ec;
    fs::resize_file(path, size, ec);
    if (ec) {
      return Status::IOError("cannot truncate '" + path +
                             "': " + ec.message());
    }
    return Status::OK();
  }
};

}  // namespace

Fs* RealFilesystem() {
  static RealFs real;
  return &real;
}

Status WriteFileAtomic(Fs* fs, const std::string& path,
                       const std::string& data) {
  fs = FsOrReal(fs);
  const std::string tmp = path + ".tmp";
  DWQA_RETURN_NOT_OK(fs->WriteFile(tmp, data));
  DWQA_RETURN_NOT_OK(fs->SyncFile(tmp));
  return fs->Rename(tmp, path);
}

const char* CrashModeName(CrashMode mode) {
  switch (mode) {
    case CrashMode::kStop: return "Stop";
    case CrashMode::kTornWrite: return "TornWrite";
    case CrashMode::kBitFlip: return "BitFlip";
  }
  return "?";
}

FaultFs::FaultFs(Fs* base, CrashPlan plan)
    : base_(FsOrReal(base)), plan_(plan), rng_(plan.seed) {}

void FaultFs::Arm(CrashPlan plan) {
  plan_ = plan;
  rng_ = Rng(plan.seed);
  crashed_ = false;
  op_count_ = 0;
  op_log_.clear();
}

FaultFs::OpVerdict FaultFs::BookOp(const std::string& op,
                                   const std::string& path,
                                   Status* failure) {
  op_log_.push_back(op + ":" + path);
  size_t index = op_count_++;
  if (crashed_) {
    *failure = Status::IOError("injected crash: filesystem is dead (" + op +
                               " '" + path + "')");
    return OpVerdict::kFail;
  }
  if (injector_ != nullptr) {
    Status injected = injector_->Hit(kFaultPointIoWrite);
    if (!injected.ok()) {
      *failure = injected;
      return OpVerdict::kFail;
    }
  }
  if (index == plan_.crash_at_op) {
    crashed_ = true;
    return OpVerdict::kCrashNow;
  }
  return OpVerdict::kProceed;
}

std::string FaultFs::MangleData(const std::string& data) {
  switch (plan_.mode) {
    case CrashMode::kStop:
      return "";
    case CrashMode::kTornWrite:
      // A strict prefix: at least 0, at most size-1 bytes survive (a torn
      // write that lands fully is indistinguishable from no crash).
      if (data.empty()) return "";
      return data.substr(0, rng_.Next() % data.size());
    case CrashMode::kBitFlip: {
      if (data.empty()) return data;
      std::string flipped = data;
      size_t at = rng_.Next() % flipped.size();
      flipped[at] = static_cast<char>(
          flipped[at] ^ static_cast<char>(1u << (rng_.Next() % 8)));
      return flipped;
    }
  }
  return "";
}

Result<std::string> FaultFs::ReadFile(const std::string& path) {
  return base_->ReadFile(path);
}

Status FaultFs::WriteFile(const std::string& path, const std::string& data) {
  Status failure;
  switch (BookOp("write", path, &failure)) {
    case OpVerdict::kFail: return failure;
    case OpVerdict::kCrashNow: {
      std::string mangled = MangleData(data);
      if (!mangled.empty()) base_->WriteFile(path, mangled);
      return Status::IOError("injected crash during write '" + path + "'");
    }
    case OpVerdict::kProceed: break;
  }
  return base_->WriteFile(path, data);
}

Status FaultFs::AppendFile(const std::string& path,
                           const std::string& data) {
  Status failure;
  switch (BookOp("append", path, &failure)) {
    case OpVerdict::kFail: return failure;
    case OpVerdict::kCrashNow: {
      std::string mangled = MangleData(data);
      if (!mangled.empty()) base_->AppendFile(path, mangled);
      return Status::IOError("injected crash during append '" + path + "'");
    }
    case OpVerdict::kProceed: break;
  }
  return base_->AppendFile(path, data);
}

Status FaultFs::SyncFile(const std::string& path) {
  Status failure;
  switch (BookOp("sync", path, &failure)) {
    case OpVerdict::kFail: return failure;
    case OpVerdict::kCrashNow:
      // A sync carries no data: every crash mode degrades to kStop (the
      // barrier simply never happened).
      return Status::IOError("injected crash during sync '" + path + "'");
    case OpVerdict::kProceed: break;
  }
  return base_->SyncFile(path);
}

Status FaultFs::Rename(const std::string& from, const std::string& to) {
  Status failure;
  switch (BookOp("rename", from, &failure)) {
    case OpVerdict::kFail: return failure;
    case OpVerdict::kCrashNow:
      // rename(2) is atomic: it either fully happened before the crash or
      // not at all. kStop semantics — the rename never lands.
      return Status::IOError("injected crash during rename '" + from + "'");
    case OpVerdict::kProceed: break;
  }
  return base_->Rename(from, to);
}

Status FaultFs::RemoveFile(const std::string& path) {
  Status failure;
  switch (BookOp("remove", path, &failure)) {
    case OpVerdict::kFail: return failure;
    case OpVerdict::kCrashNow:
      return Status::IOError("injected crash during remove '" + path + "'");
    case OpVerdict::kProceed: break;
  }
  return base_->RemoveFile(path);
}

Status FaultFs::RemoveAll(const std::string& path) {
  Status failure;
  switch (BookOp("remove_all", path, &failure)) {
    case OpVerdict::kFail: return failure;
    case OpVerdict::kCrashNow:
      return Status::IOError("injected crash during remove_all '" + path +
                             "'");
    case OpVerdict::kProceed: break;
  }
  return base_->RemoveAll(path);
}

Status FaultFs::CreateDirs(const std::string& path) {
  Status failure;
  switch (BookOp("mkdir", path, &failure)) {
    case OpVerdict::kFail: return failure;
    case OpVerdict::kCrashNow:
      return Status::IOError("injected crash during mkdir '" + path + "'");
    case OpVerdict::kProceed: break;
  }
  return base_->CreateDirs(path);
}

bool FaultFs::Exists(const std::string& path) { return base_->Exists(path); }

Result<std::vector<std::string>> FaultFs::ListDir(const std::string& dir) {
  return base_->ListDir(dir);
}

Result<uint64_t> FaultFs::FileSize(const std::string& path) {
  return base_->FileSize(path);
}

Status FaultFs::TruncateFile(const std::string& path, uint64_t size) {
  Status failure;
  switch (BookOp("truncate", path, &failure)) {
    case OpVerdict::kFail: return failure;
    case OpVerdict::kCrashNow:
      return Status::IOError("injected crash during truncate '" + path +
                             "'");
    case OpVerdict::kProceed: break;
  }
  return base_->TruncateFile(path, size);
}

}  // namespace dwqa
