#ifndef DWQA_COMMON_INTERNER_H_
#define DWQA_COMMON_INTERNER_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace dwqa {

/// Identifier of an interned term. Postings lists, lemma sets and cached
/// sentence analyses all speak TermId so that a corpus term is lowercased,
/// stopword-checked and hashed exactly once — at indexation time.
using TermId = uint32_t;

/// Sentinel returned by TermDictionary::Find for unknown terms.
inline constexpr TermId kInvalidTermId = 0xFFFFFFFFu;

/// \brief Corpus-wide string interner.
///
/// One dictionary is owned by the AnalyzedCorpus and shared (by pointer)
/// with every consumer built over the same corpus — the inverted index, the
/// passage index, the multidimensional document warehouse — so a TermId is
/// comparable across all of them. Ids are dense, assigned in first-seen
/// order, and never invalidated; term strings live as the map keys and stay
/// at a stable address for the dictionary's lifetime.
class TermDictionary {
 public:
  TermDictionary() = default;

  /// The id of `term`, interning it first if unseen.
  TermId Intern(const std::string& term) {
    auto it = ids_.find(term);
    if (it != ids_.end()) return it->second;
    TermId id = static_cast<TermId>(terms_.size());
    auto inserted = ids_.emplace(term, id).first;
    terms_.push_back(&inserted->first);
    return id;
  }

  /// The id of `term`, or kInvalidTermId when it was never interned. Query
  /// paths use this so lookups never grow the dictionary.
  TermId Find(const std::string& term) const {
    auto it = ids_.find(term);
    return it == ids_.end() ? kInvalidTermId : it->second;
  }

  /// The string of a valid id (undefined for kInvalidTermId or ids from a
  /// different dictionary).
  const std::string& Term(TermId id) const { return *terms_[id]; }

  size_t size() const { return terms_.size(); }

 private:
  std::unordered_map<std::string, TermId> ids_;
  /// id → key in ids_ (node addresses are stable under rehash).
  std::vector<const std::string*> terms_;
};

}  // namespace dwqa

#endif  // DWQA_COMMON_INTERNER_H_
