#ifndef DWQA_COMMON_INTERNER_H_
#define DWQA_COMMON_INTERNER_H_

#include <algorithm>
#include <array>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace dwqa {

/// Identifier of an interned term. Postings lists, lemma sets and cached
/// sentence analyses all speak TermId so that a corpus term is lowercased,
/// stopword-checked and hashed exactly once — at indexation time.
using TermId = uint32_t;

/// Sentinel returned by TermDictionary::Find for unknown terms.
inline constexpr TermId kInvalidTermId = 0xFFFFFFFFu;

/// \brief Corpus-wide string interner.
///
/// One dictionary is owned by the AnalyzedCorpus and shared (by pointer)
/// with every consumer built over the same corpus — the inverted index, the
/// passage index, the multidimensional document warehouse — so a TermId is
/// comparable across all of them. Ids are dense, assigned in first-seen
/// order, and never invalidated; term strings live as the map keys and stay
/// at a stable address for the dictionary's lifetime.
class TermDictionary {
 public:
  /// Empty dictionary.
  TermDictionary() = default;

  /// The id of `term`, interning it first if unseen.
  TermId Intern(const std::string& term) {
    auto it = ids_.find(term);
    if (it != ids_.end()) return it->second;
    TermId id = static_cast<TermId>(terms_.size());
    auto inserted = ids_.emplace(term, id).first;
    terms_.push_back(&inserted->first);
    return id;
  }

  /// The id of `term`, or kInvalidTermId when it was never interned. Query
  /// paths use this so lookups never grow the dictionary.
  TermId Find(const std::string& term) const {
    auto it = ids_.find(term);
    return it == ids_.end() ? kInvalidTermId : it->second;
  }

  /// The string of a valid id (undefined for kInvalidTermId or ids from a
  /// different dictionary).
  const std::string& Term(TermId id) const { return *terms_[id]; }

  /// Distinct terms interned so far.
  size_t size() const { return terms_.size(); }

 private:
  std::unordered_map<std::string, TermId> ids_;
  /// id → key in ids_ (node addresses are stable under rehash).
  std::vector<const std::string*> terms_;
};

/// \brief Thread-safe interning front-end for the parallel indexation path.
///
/// Concurrent CorpusAnalyzer workers intern into this instead of the
/// corpus's TermDictionary: terms are partitioned into `kShards` buckets by
/// hash, each guarded by its own mutex, so workers interning disjoint
/// vocabulary never contend and a shared term is still stored exactly once.
///
/// The ids it hands out are **provisional**: unique, stable for the
/// interner's lifetime, and round-trippable through Term(), but their
/// numbering depends on thread interleaving. They must never escape into
/// postings or cached analyses — AnalyzedCorpus::AddBatch remaps them into
/// the owned TermDictionary's dense first-seen-in-document-order ids at its
/// serial merge point, which is what keeps a parallel build byte-identical
/// to the serial one.
class ShardedTermInterner {
 public:
  /// Mutex stripes; provisional ids are packed `local * kShards + shard`.
  static constexpr size_t kShards = 16;

  /// Empty interner.
  ShardedTermInterner() = default;
  ShardedTermInterner(const ShardedTermInterner&) = delete;  ///< Non-copyable.
  /// Non-copyable.
  ShardedTermInterner& operator=(const ShardedTermInterner&) = delete;

  /// The provisional id of `term`, interning it first if unseen. Safe to
  /// call from any number of threads concurrently.
  TermId Intern(const std::string& term) {
    const size_t s = std::hash<std::string>{}(term) % kShards;
    Shard& shard = shards_[s];
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.ids.find(term);
    if (it != shard.ids.end()) return it->second;
    // Ids interleave across shards (local index ∗ kShards + shard), so the
    // id space stays dense enough for a flat remap table.
    TermId id = static_cast<TermId>(shard.terms.size() * kShards + s);
    auto inserted = shard.ids.emplace(term, id).first;
    shard.terms.push_back(&inserted->first);
    return id;
  }

  /// The string of a valid provisional id.
  const std::string& Term(TermId id) const {
    const Shard& shard = shards_[id % kShards];
    std::lock_guard<std::mutex> lock(shard.mu);
    return *shard.terms[id / kShards];
  }

  /// Exclusive upper bound on every id issued so far — the size a flat
  /// id-indexed remap table needs.
  size_t IdBound() const {
    size_t longest = 0;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      longest = std::max(longest, shard.terms.size());
    }
    return longest * kShards;
  }

  /// Distinct terms interned.
  size_t size() const {
    size_t total = 0;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      total += shard.terms.size();
    }
    return total;
  }

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, TermId> ids;
    /// local index → key in ids (node addresses survive rehash).
    std::vector<const std::string*> terms;
  };
  std::array<Shard, kShards> shards_;
};

}  // namespace dwqa

#endif  // DWQA_COMMON_INTERNER_H_
