#include "common/csv.h"

namespace dwqa {

Result<std::vector<std::vector<std::string>>> Csv::Parse(
    std::string_view text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;
  size_t i = 0;
  auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_row = [&] {
    end_field();
    rows.push_back(std::move(row));
    row.clear();
  };
  while (i < text.size()) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          i += 2;
        } else {
          in_quotes = false;
          ++i;
        }
      } else {
        field += c;
        ++i;
      }
    } else {
      if (c == '"' && !field_started && field.empty()) {
        in_quotes = true;
        field_started = true;
        ++i;
      } else if (c == ',') {
        end_field();
        ++i;
      } else if (c == '\r') {
        ++i;  // Tolerate CRLF.
      } else if (c == '\n') {
        end_row();
        ++i;
      } else {
        field += c;
        field_started = true;
        ++i;
      }
    }
  }
  if (in_quotes) {
    return Status::InvalidArgument("unterminated quoted CSV field");
  }
  if (field_started || !field.empty() || !row.empty()) end_row();
  return rows;
}

std::string Csv::EscapeField(std::string_view field) {
  bool needs_quotes = field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

std::string Csv::Render(const std::vector<std::vector<std::string>>& rows) {
  std::string out;
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += ',';
      out += EscapeField(row[i]);
    }
    out += '\n';
  }
  return out;
}

}  // namespace dwqa
