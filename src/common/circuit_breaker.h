#ifndef DWQA_COMMON_CIRCUIT_BREAKER_H_
#define DWQA_COMMON_CIRCUIT_BREAKER_H_

#include <cstddef>
#include <map>
#include <string>

#include "common/metrics.h"
#include "common/status.h"

namespace dwqa {

/// \brief State of a CircuitBreaker (the classic closed → open → half-open
/// machine of Nygard's "Release It!" stability pattern).
enum class BreakerState {
  /// Calls flow; consecutive failures are counted.
  kClosed,
  /// Calls are rejected outright; each rejection advances the cool-down.
  kOpen,
  /// One probe call is admitted to test whether the dependency recovered.
  kHalfOpen,
};

/// "Closed", "Open", "HalfOpen" — stable names for reports and tests.
const char* BreakerStateName(BreakerState state);

/// \brief Tuning of a CircuitBreaker.
///
/// The cool-down is measured in *rejected admission attempts*, not wall
/// clock — tests and benches run with sleeping disabled, so an
/// attempt-counted cool-down keeps the state machine fully deterministic.
struct BreakerConfig {
  /// Master switch: a disabled breaker admits every call and never trips.
  bool enabled = false;
  /// Consecutive whole-operation failures (retry budget already exhausted)
  /// that trip the breaker from closed to open.
  size_t failure_threshold = 3;
  /// Rejected admissions an open breaker sits out before granting the
  /// half-open probe.
  size_t cooldown_attempts = 5;

  /// InvalidArgument on a zero failure threshold — a breaker that trips on
  /// "zero consecutive failures" would reject everything forever.
  Status Validate() const;
};

/// \brief Deterministic, attempt-counted circuit breaker.
///
/// Guards one dependency (a fault point, a source URL). Callers ask
/// `Allow()` before the operation and report the outcome with
/// `RecordSuccess()`/`RecordFailure()`. After `failure_threshold`
/// consecutive failures the breaker opens and rejects calls for
/// `cooldown_attempts` admissions; the next admission after the cool-down
/// is the half-open probe — its success closes the breaker, its failure
/// re-opens it and restarts the cool-down from zero.
class CircuitBreaker {
 public:
  /// Disabled breaker (default config): every call admitted.
  CircuitBreaker() = default;
  /// Breaker governed by `config` (thresholds, cool-down, enable flag).
  explicit CircuitBreaker(BreakerConfig config) : config_(config) {}

  /// Non-mutating admission test: would `Allow()` return true right now?
  /// Lets a caller consult several breakers before committing the
  /// admission on any of them.
  bool WouldAllow() const;

  /// Admission decision. While open, each rejected call advances the
  /// cool-down; once `cooldown_attempts` rejections have passed, the next
  /// call is admitted as the half-open probe.
  bool Allow();

  /// The guarded operation (including its retries) ultimately succeeded.
  void RecordSuccess();

  /// The guarded operation ultimately failed (retry budget exhausted or
  /// permanent error).
  void RecordFailure();

  /// Current position of the closed → open → half-open machine.
  BreakerState state() const { return state_; }
  /// False means the breaker is a pass-through (the default).
  bool enabled() const { return config_.enabled; }
  /// The governing configuration.
  const BreakerConfig& config() const { return config_; }

  /// \name Counters for reports and the PipelineHealth summary
  /// @{
  /// Failures since the last success (or since the breaker closed).
  size_t consecutive_failures() const { return consecutive_failures_; }
  /// Admissions refused while open.
  size_t rejected() const { return rejected_; }
  /// Times the breaker tripped (closed/half-open → open).
  size_t opens() const { return opens_; }
  /// Failures recorded over the breaker's lifetime.
  size_t total_failures() const { return total_failures_; }
  /// @}

  /// Attaches a metrics registry (may be null): state transitions,
  /// rejections and failures are mirrored into the
  /// `dwqa_breaker_*` families labeled `{breaker=name}`.
  void set_metrics(MetricRegistry* metrics, const std::string& name);

 private:
  /// Mirrors a state transition into the registry.
  void RecordTransition(const char* to);
  /// Mirrors a refused admission into the registry.
  void RecordRejection();

  BreakerConfig config_;
  BreakerState state_ = BreakerState::kClosed;
  size_t consecutive_failures_ = 0;
  /// Rejections counted toward the current cool-down while open.
  size_t cooldown_progress_ = 0;
  /// True while the single half-open probe is in flight.
  bool probe_outstanding_ = false;
  size_t rejected_ = 0;
  size_t opens_ = 0;
  size_t total_failures_ = 0;
  /// Metrics sink (null = observability off) and this breaker's label.
  MetricRegistry* metrics_ = nullptr;
  std::string metrics_name_;
};

/// \brief Lazily-populated map of breakers, one per guarded dependency.
///
/// The pipeline instantiates one breaker per fault point ("ir.index",
/// "web.fetch") and one per source URL at the ETL boundary, all sharing the
/// registry's BreakerConfig.
class CircuitBreakerRegistry {
 public:
  /// Registry handing out disabled pass-through breakers.
  CircuitBreakerRegistry() = default;
  /// Registry whose breakers all share `config`.
  explicit CircuitBreakerRegistry(BreakerConfig config) : config_(config) {}

  /// The breaker named `name`, created on first use.
  CircuitBreaker* Get(const std::string& name);

  /// False means every breaker handed out is a pass-through.
  bool enabled() const { return config_.enabled; }
  /// All breakers created so far, keyed by name.
  const std::map<std::string, CircuitBreaker>& breakers() const {
    return breakers_;
  }

  /// Breakers currently not closed — the isolated dependencies.
  size_t open_count() const;

  /// Attaches a metrics registry: existing and future breakers mirror their
  /// transitions/rejections/failures into it, labeled by breaker name.
  void set_metrics(MetricRegistry* metrics);

 private:
  BreakerConfig config_;
  std::map<std::string, CircuitBreaker> breakers_;
  MetricRegistry* metrics_ = nullptr;
};

}  // namespace dwqa

#endif  // DWQA_COMMON_CIRCUIT_BREAKER_H_
