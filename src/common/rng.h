#ifndef DWQA_COMMON_RNG_H_
#define DWQA_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dwqa {

/// \brief Deterministic SplitMix64 pseudo-random generator.
///
/// Every stochastic component of the project (synthetic web, workload
/// generators, noise injection) draws from an explicitly seeded Rng so that
/// tests and benches are byte-for-byte reproducible across runs and
/// platforms. Header-only on purpose: it is hot in the generators.
class Rng {
 public:
  /// Seeded stream; equal seeds give equal sequences on every platform.
  explicit Rng(uint64_t seed) : state_(seed + 0x9E3779B97F4A7C15ULL) {}

  /// Next raw 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextBelow(uint64_t bound) { return Next() % bound; }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    NextBelow(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform double in [lo, hi).
  double NextDoubleInRange(double lo, double hi) {
    return lo + NextDouble() * (hi - lo);
  }

  /// Bernoulli draw with probability `p` of true.
  bool NextBool(double p) { return NextDouble() < p; }

  /// Approximately normal draw (sum of 4 uniforms, variance-corrected) —
  /// plenty for synthetic weather noise, cheap and fully deterministic.
  double NextGaussian(double mean, double stddev) {
    double sum = 0.0;
    for (int i = 0; i < 4; ++i) sum += NextDouble();
    // Sum of 4 U(0,1): mean 2, variance 4/12 -> stddev sqrt(1/3).
    return mean + stddev * (sum - 2.0) * 1.7320508075688772;
  }

  /// Picks a uniformly random element index of a non-empty container size.
  size_t NextIndex(size_t size) { return static_cast<size_t>(NextBelow(size)); }

  /// In-place Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = NextIndex(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  uint64_t state_;
};

}  // namespace dwqa

#endif  // DWQA_COMMON_RNG_H_
