#ifndef DWQA_COMMON_DATE_H_
#define DWQA_COMMON_DATE_H_

#include <compare>
#include <cstdint>
#include <string>

#include "common/result.h"

namespace dwqa {

/// \brief Calendar date (proleptic Gregorian).
///
/// Shared by the Date dimension of the warehouse, the temporal entity
/// recognizers of the NLP substrate, and the synthetic weather model.
class Date {
 public:
  /// All-zero sentinel date; IsValid() is false.
  Date() = default;
  /// Unvalidated construction; use Make() for checked input.
  Date(int year, int month, int day) : year_(year), month_(month), day_(day) {}

  /// Validating factory. Fails on out-of-range month/day (leap years
  /// respected).
  static Result<Date> Make(int year, int month, int day);

  int year() const { return year_; }    ///< Calendar year.
  int month() const { return month_; }  ///< 1..12.
  int day() const { return day_; }      ///< 1..31.

  /// True if the fields form a real calendar date.
  bool IsValid() const;

  /// 0 = Sunday ... 6 = Saturday (Zeller's congruence).
  int DayOfWeek() const;

  /// "Monday", "Tuesday", ...
  std::string DayOfWeekName() const;

  /// "January", "February", ...
  std::string MonthName() const;

  /// Day count since 1970-01-01 (may be negative).
  int64_t ToEpochDays() const;

  /// Inverse of ToEpochDays().
  static Date FromEpochDays(int64_t days);

  /// Next calendar day.
  Date NextDay() const;

  /// "2004-01-31".
  std::string ToIsoString() const;

  /// Inverse of ToIsoString(): parses "YYYY-MM-DD" (validated via Make).
  static Result<Date> FromIsoString(const std::string& iso);

  /// Paper style: "Monday, January 31, 2004".
  std::string ToLongString() const;

  /// 28..31; leap Februaries respected.
  static int DaysInMonth(int year, int month);
  /// Gregorian leap-year rule.
  static bool IsLeapYear(int year);

  /// Month name (full, case-insensitive) -> 1..12; 0 if unknown.
  static int MonthFromName(const std::string& name);

  /// Lexicographic (year, month, day) ordering.
  auto operator<=>(const Date&) const = default;

 private:
  int year_ = 1970;
  int month_ = 1;
  int day_ = 1;
};

}  // namespace dwqa

#endif  // DWQA_COMMON_DATE_H_
