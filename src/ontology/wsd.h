#ifndef DWQA_ONTOLOGY_WSD_H_
#define DWQA_ONTOLOGY_WSD_H_

#include <string>
#include <vector>

#include "ontology/ontology.h"

namespace dwqa {
namespace ontology {

/// Outcome of disambiguating one mention.
struct WsdChoice {
  ConceptId sense = kInvalidConcept;
  double score = 0.0;
  /// Other candidate senses considered (including the winner).
  size_t candidate_count = 0;
};

/// \brief Simplified-Lesk word sense disambiguation over the ontology.
///
/// Substitutes the WSD algorithm of the paper's reference [4] in AliQAn's
/// indexation and question-analysis phases. A mention's candidate senses
/// are the concepts indexed under its lemma; each candidate is scored by
/// the overlap between the context lemmas and the candidate's signature
/// (gloss words + names of related concepts). Instance senses additionally
/// earn a bonus per context word naming one of their ancestors — this is
/// what lets "El Prat" resolve to the *airport* sense in a weather question
/// mentioning temperatures and cities once Step 2/3 have added that sense.
class Wsd {
 public:
  explicit Wsd(const Ontology* onto) : onto_(onto) {}

  /// Picks the best sense of `lemma` given `context` lemmas. NotFound when
  /// the lemma is not in the ontology at all.
  Result<WsdChoice> Disambiguate(const std::string& lemma,
                                 const std::vector<std::string>& context)
      const;

  /// Signature lemmas of a concept (gloss words minus stopwords, plus
  /// related concept names). Exposed for tests.
  std::vector<std::string> Signature(ConceptId id) const;

 private:
  const Ontology* onto_;
};

}  // namespace ontology
}  // namespace dwqa

#endif  // DWQA_ONTOLOGY_WSD_H_
