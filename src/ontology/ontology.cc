#include "ontology/ontology.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

#include "common/string_util.h"

namespace dwqa {
namespace ontology {

RelationKind InverseRelation(RelationKind kind) {
  switch (kind) {
    case RelationKind::kHypernym:
      return RelationKind::kHyponym;
    case RelationKind::kHyponym:
      return RelationKind::kHypernym;
    case RelationKind::kSynonymOf:
      return RelationKind::kSynonymOf;
    case RelationKind::kPartOf:
      return RelationKind::kHasPart;
    case RelationKind::kHasPart:
      return RelationKind::kPartOf;
    case RelationKind::kAntonym:
      return RelationKind::kAntonym;
    case RelationKind::kInstanceOf:
      return RelationKind::kHasInstance;
    case RelationKind::kHasInstance:
      return RelationKind::kInstanceOf;
    case RelationKind::kHasProperty:
      return RelationKind::kPropertyOf;
    case RelationKind::kPropertyOf:
      return RelationKind::kHasProperty;
    case RelationKind::kAssociated:
      return RelationKind::kAssociated;
  }
  return RelationKind::kAssociated;
}

const char* RelationKindName(RelationKind kind) {
  switch (kind) {
    case RelationKind::kHypernym:
      return "hypernym";
    case RelationKind::kHyponym:
      return "hyponym";
    case RelationKind::kSynonymOf:
      return "synonym";
    case RelationKind::kPartOf:
      return "partOf";
    case RelationKind::kHasPart:
      return "hasPart";
    case RelationKind::kAntonym:
      return "antonym";
    case RelationKind::kInstanceOf:
      return "instanceOf";
    case RelationKind::kHasInstance:
      return "hasInstance";
    case RelationKind::kHasProperty:
      return "hasProperty";
    case RelationKind::kPropertyOf:
      return "propertyOf";
    case RelationKind::kAssociated:
      return "associated";
  }
  return "?";
}

Result<ConceptId> Ontology::AddNode(std::string_view name,
                                    std::string_view gloss,
                                    std::string_view source,
                                    bool is_instance) {
  if (name.empty()) {
    return Status::InvalidArgument("concept name must not be empty");
  }
  std::string lemma = ToLower(name);
  Concept c;
  c.id = static_cast<ConceptId>(concepts_.size());
  c.name = std::string(name);
  c.lemma = std::move(lemma);
  c.gloss = std::string(gloss);
  c.source = std::string(source);
  c.is_instance = is_instance;
  lemma_index_.emplace(c.lemma, c.id);
  concepts_.push_back(std::move(c));
  edges_.emplace_back();
  return concepts_.back().id;
}

Result<ConceptId> Ontology::AddConcept(std::string_view name,
                                       std::string_view gloss,
                                       std::string_view source) {
  return AddNode(name, gloss, source, /*is_instance=*/false);
}

Result<ConceptId> Ontology::AddInstance(std::string_view name,
                                        std::string_view gloss,
                                        std::string_view source) {
  return AddNode(name, gloss, source, /*is_instance=*/true);
}

Status Ontology::AddRelation(ConceptId from, RelationKind kind, ConceptId to) {
  if (!IsValidId(from) || !IsValidId(to)) {
    return Status::InvalidArgument("relation endpoint id out of range");
  }
  if (from == to) {
    return Status::InvalidArgument("self-loop relation on concept '" +
                                   concepts_[size_t(from)].name + "'");
  }
  auto& fwd = edges_[size_t(from)][static_cast<int>(kind)];
  if (std::find(fwd.begin(), fwd.end(), to) != fwd.end()) {
    return Status::OK();  // Idempotent.
  }
  fwd.push_back(to);
  edges_[size_t(to)][static_cast<int>(InverseRelation(kind))].push_back(from);
  ++relation_count_;
  return Status::OK();
}

Status Ontology::AddAlias(ConceptId id, std::string_view alias) {
  if (!IsValidId(id)) {
    return Status::InvalidArgument("alias target id out of range");
  }
  std::string lemma = ToLower(alias);
  if (lemma.empty()) return Status::InvalidArgument("empty alias");
  Concept& c = concepts_[size_t(id)];
  if (lemma == c.lemma) return Status::OK();
  if (std::find(c.aliases.begin(), c.aliases.end(), lemma) !=
      c.aliases.end()) {
    return Status::OK();
  }
  c.aliases.push_back(lemma);
  lemma_index_.emplace(lemma, id);
  return Status::OK();
}

Status Ontology::SetAxiom(ConceptId id, std::string_view key,
                          std::string_view value) {
  if (!IsValidId(id)) {
    return Status::InvalidArgument("axiom target id out of range");
  }
  for (Axiom& a : concepts_[size_t(id)].axioms) {
    if (a.key == key) {
      a.value = std::string(value);
      return Status::OK();
    }
  }
  concepts_[size_t(id)].axioms.push_back(
      Axiom{std::string(key), std::string(value)});
  return Status::OK();
}

Result<std::string> Ontology::GetAxiom(ConceptId id,
                                       std::string_view key) const {
  if (!IsValidId(id)) {
    return Status::InvalidArgument("axiom target id out of range");
  }
  for (const Axiom& a : concepts_[size_t(id)].axioms) {
    if (a.key == key) return a.value;
  }
  return Status::NotFound("no axiom '" + std::string(key) + "' on concept '" +
                          concepts_[size_t(id)].name + "'");
}

std::vector<ConceptId> Ontology::Find(std::string_view lemma) const {
  std::vector<ConceptId> out;
  auto range = lemma_index_.equal_range(ToLower(lemma));
  for (auto it = range.first; it != range.second; ++it) {
    out.push_back(it->second);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

Result<ConceptId> Ontology::FindClass(std::string_view lemma) const {
  // Find() returns ids sorted ascending, i.e. in insertion order — the
  // first-sense heuristic of WordNet: when a lemma has several class senses
  // the earliest (most salient) one wins.
  for (ConceptId id : Find(lemma)) {
    if (!concepts_[size_t(id)].is_instance) return id;
  }
  return Status::NotFound("no class concept for lemma '" +
                          std::string(lemma) + "'");
}

std::vector<ConceptId> Ontology::Related(ConceptId id,
                                         RelationKind kind) const {
  if (!IsValidId(id)) return {};
  auto it = edges_[size_t(id)].find(static_cast<int>(kind));
  if (it == edges_[size_t(id)].end()) return {};
  return it->second;
}

bool Ontology::IsA(ConceptId a, ConceptId b) const {
  if (!IsValidId(a) || !IsValidId(b)) return false;
  std::unordered_set<ConceptId> visited;
  std::deque<ConceptId> queue{a};
  while (!queue.empty()) {
    ConceptId cur = queue.front();
    queue.pop_front();
    if (cur == b) return true;
    if (!visited.insert(cur).second) continue;
    for (RelationKind k : {RelationKind::kInstanceOf, RelationKind::kHypernym,
                           RelationKind::kSynonymOf}) {
      for (ConceptId next : Related(cur, k)) {
        // Synonym edges may be followed only once to avoid sideways drift;
        // keeping it simple: allow, visited-set bounds the walk.
        queue.push_back(next);
      }
      // Synonym traversal from the start node only would be stricter; the
      // small ontologies here do not create problematic synonym chains.
    }
  }
  return false;
}

std::vector<ConceptId> Ontology::HypernymPath(ConceptId id) const {
  std::vector<ConceptId> path;
  std::unordered_set<ConceptId> seen;
  ConceptId cur = id;
  while (IsValidId(cur) && seen.insert(cur).second) {
    path.push_back(cur);
    std::vector<ConceptId> up = Related(cur, RelationKind::kInstanceOf);
    if (up.empty()) up = Related(cur, RelationKind::kHypernym);
    if (up.empty()) break;
    cur = up.front();
  }
  return path;
}

std::vector<ConceptId> Ontology::SubtreeOf(ConceptId id, size_t limit) const {
  std::vector<ConceptId> out;
  if (!IsValidId(id)) return out;
  std::unordered_set<ConceptId> visited{id};
  std::deque<ConceptId> queue{id};
  while (!queue.empty() && out.size() < limit) {
    ConceptId cur = queue.front();
    queue.pop_front();
    for (RelationKind k :
         {RelationKind::kHyponym, RelationKind::kHasInstance}) {
      for (ConceptId next : Related(cur, k)) {
        if (visited.insert(next).second) {
          out.push_back(next);
          queue.push_back(next);
        }
      }
    }
  }
  return out;
}

std::vector<ConceptId> Ontology::AllConcepts() const {
  std::vector<ConceptId> out(concepts_.size());
  for (size_t i = 0; i < concepts_.size(); ++i) {
    out[i] = static_cast<ConceptId>(i);
  }
  return out;
}

}  // namespace ontology
}  // namespace dwqa
