#ifndef DWQA_ONTOLOGY_ENRICHMENT_H_
#define DWQA_ONTOLOGY_ENRICHMENT_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "ontology/ontology.h"

namespace dwqa {
namespace ontology {

/// \brief One dimension member exported from the DW, destined to become an
/// ontology instance (Step 2).
struct InstanceSeed {
  /// Member name, e.g. "El Prat".
  std::string name;
  /// Alternative names ("Kennedy International Airport" for "JFK").
  std::vector<std::string> aliases;
  /// Name of the containing member along the hierarchy ("Barcelona" for
  /// "El Prat"); empty if none. Becomes a kPartOf relation.
  std::string located_in;
  /// Optional gloss.
  std::string gloss;
};

/// \brief Result counters of one enrichment run.
struct EnrichmentReport {
  size_t instances_added = 0;
  size_t aliases_added = 0;
  size_t part_of_links = 0;
  size_t skipped_existing = 0;
};

/// \brief Step 2 of the paper's approach: feed the (domain) ontology with
/// the contents of the DW so that "JFK", "John Wayne" or "La Guardia" are
/// known to be airports.
///
/// `concept_lemma` names the class the seeds instantiate ("airport").
/// Seeds whose lemma is already an instance of that class are skipped;
/// their aliases are still merged in.
class Enricher {
 public:
  static Result<EnrichmentReport> Enrich(
      Ontology* onto, const std::string& concept_lemma,
      const std::vector<InstanceSeed>& seeds);
};

}  // namespace ontology
}  // namespace dwqa

#endif  // DWQA_ONTOLOGY_ENRICHMENT_H_
