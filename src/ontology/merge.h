#ifndef DWQA_ONTOLOGY_MERGE_H_
#define DWQA_ONTOLOGY_MERGE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "ontology/ontology.h"

namespace dwqa {
namespace ontology {

/// How one domain concept was placed into the upper ontology.
enum class MergeDecision {
  kExactMatch,    ///< lemma found in the upper ontology ("City" → city).
  kPartialMatch,  ///< high string similarity → linked as synonym.
  kHeadHyponym,   ///< head word found → added as its hyponym
                  ///< ("Last Minute Sales" under "sale").
  kNewTree,       ///< nothing similar → new ontological tree (paper §3.3).
  kNewInstance,   ///< a domain instance attached under its class's image.
};

const char* MergeDecisionName(MergeDecision d);

struct MergeRecord {
  std::string domain_concept;
  MergeDecision decision = MergeDecision::kNewTree;
  /// Name of the upper-ontology anchor concept ("" for kNewTree).
  std::string target;
  bool is_instance = false;
};

struct MergeReport {
  std::vector<MergeRecord> records;
  size_t exact = 0;
  size_t partial = 0;
  size_t head = 0;
  size_t new_tree = 0;
  size_t new_instances = 0;
  size_t instances_merged = 0;
  size_t synonyms_added = 0;
};

struct MergeOptions {
  /// Similarity (string_util::StringSimilarity on lemmas) at or above which
  /// a partial match links domain concept and upper concept as synonyms.
  double partial_threshold = 0.85;
  bool enable_partial = true;
  /// Enable the head-word fallback ("Last Minute Sales" → hyponym of
  /// "sale"). Disabling it is the ablation of bench_micro_ontology.
  bool enable_head = true;
};

/// \brief Step 3 of the paper's approach: merge the (enriched) domain
/// ontology into the upper ontology of the QA system.
///
/// Follows the matching algorithm the paper adopts from PROMPT [5] and
/// Chimaera [12]:
///   1. look the domain concept's lemma up in the upper ontology — on a hit,
///      domain instances are re-attached under the found concept, and any
///      domain instance whose alias already names an upper instance enriches
///      that instance with new synonyms ("Kennedy International Airport"
///      gains the alias "JFK");
///   2. otherwise look for a *similar* concept (partial string match) and
///      link as synonym;
///   3. otherwise look the head word up ("Sale" for "Last Minute Sales") and
///      add the domain concept as a new hyponym;
///   4. otherwise add the concept with no hypernym — a new ontological tree.
class OntologyMerger {
 public:
  /// Merges `domain` into `upper` (modified in place); returns the decision
  /// log. Relations among domain concepts (partOf, hasProperty, associated)
  /// are carried over between the images of their endpoints.
  static Result<MergeReport> Merge(Ontology* upper, const Ontology& domain,
                                   const MergeOptions& options = {});

  /// Head word of a multiword concept name: the last token ("Sales" in
  /// "Last Minute Sales"), singularized ("sale").
  static std::string HeadWord(const std::string& name);
};

}  // namespace ontology
}  // namespace dwqa

#endif  // DWQA_ONTOLOGY_MERGE_H_
