#include "ontology/uml_model.h"

#include <unordered_map>
#include <unordered_set>

#include "common/string_util.h"

namespace dwqa {
namespace ontology {

const char* ClassStereotypeName(ClassStereotype s) {
  switch (s) {
    case ClassStereotype::kFact:
      return "Fact";
    case ClassStereotype::kDimension:
      return "Dimension";
    case ClassStereotype::kBase:
      return "Base";
  }
  return "?";
}

const char* AttrStereotypeName(AttrStereotype s) {
  switch (s) {
    case AttrStereotype::kOID:
      return "OID";
    case AttrStereotype::kFactAttribute:
      return "FactAttribute";
    case AttrStereotype::kDimensionAttribute:
      return "DimensionAttribute";
    case AttrStereotype::kDescriptor:
      return "Descriptor";
  }
  return "?";
}

Status UmlModel::AddClass(UmlClass klass) {
  if (klass.name.empty()) {
    return Status::InvalidArgument("UML class name must not be empty");
  }
  if (FindClass(klass.name).ok()) {
    return Status::AlreadyExists("UML class '" + klass.name +
                                 "' already exists");
  }
  classes_.push_back(std::move(klass));
  return Status::OK();
}

Status UmlModel::AddAssociation(UmlAssociation assoc) {
  if (assoc.from.empty() || assoc.to.empty()) {
    return Status::InvalidArgument("association endpoints must be named");
  }
  assocs_.push_back(std::move(assoc));
  return Status::OK();
}

Result<const UmlClass*> UmlModel::FindClass(std::string_view name) const {
  std::string lower = ToLower(name);
  for (const UmlClass& c : classes_) {
    if (ToLower(c.name) == lower) return &c;
  }
  return Status::NotFound("no UML class named '" + std::string(name) + "'");
}

std::vector<const UmlClass*> UmlModel::ClassesWithStereotype(
    ClassStereotype s) const {
  std::vector<const UmlClass*> out;
  for (const UmlClass& c : classes_) {
    if (c.stereotype == s) out.push_back(&c);
  }
  return out;
}

std::vector<std::string> UmlModel::HierarchyFrom(
    std::string_view base_name) const {
  std::vector<std::string> chain;
  std::string current = std::string(base_name);
  std::unordered_set<std::string> seen;
  while (seen.insert(ToLower(current)).second) {
    chain.push_back(current);
    bool advanced = false;
    for (const UmlAssociation& a : assocs_) {
      if (a.kind == AssocKind::kRollsUpTo &&
          ToLower(a.from) == ToLower(current)) {
        current = a.to;
        advanced = true;
        break;
      }
    }
    if (!advanced) break;
  }
  return chain;
}

Status UmlModel::Validate() const {
  for (const UmlAssociation& a : assocs_) {
    if (!FindClass(a.from).ok()) {
      return Status::NotFound("association endpoint '" + a.from +
                              "' is not a class of the model");
    }
    if (!FindClass(a.to).ok()) {
      return Status::NotFound("association endpoint '" + a.to +
                              "' is not a class of the model");
    }
    if (a.kind == AssocKind::kRollsUpTo) {
      const UmlClass* from = FindClass(a.from).ValueOrDie();
      const UmlClass* to = FindClass(a.to).ValueOrDie();
      if (from->stereotype != ClassStereotype::kBase ||
          to->stereotype != ClassStereotype::kBase) {
        return Status::InvalidArgument(
            "rolls-up-to must connect Base classes: " + a.from + " -> " +
            a.to);
      }
    }
  }
  // Every fact must reach at least one dimension.
  for (const UmlClass* fact : ClassesWithStereotype(ClassStereotype::kFact)) {
    bool has_dim = false;
    for (const UmlAssociation& a : assocs_) {
      if (a.kind != AssocKind::kAssociation) continue;
      if (ToLower(a.from) != ToLower(fact->name)) continue;
      auto target = FindClass(a.to);
      if (target.ok() &&
          (*target)->stereotype == ClassStereotype::kDimension) {
        has_dim = true;
        break;
      }
    }
    if (!has_dim) {
      return Status::InvalidArgument("fact class '" + fact->name +
                                     "' is not associated to any dimension");
    }
  }
  // Hierarchies must be acyclic: walk each base; HierarchyFrom stops on
  // revisit, so a cycle shows as a chain whose tail rolls up to its head.
  for (const UmlClass* base : ClassesWithStereotype(ClassStereotype::kBase)) {
    std::vector<std::string> chain = HierarchyFrom(base->name);
    std::unordered_set<std::string> seen;
    for (const std::string& level : chain) seen.insert(ToLower(level));
    // If the last level rolls up to a level already in the chain -> cycle.
    const std::string& last = chain.back();
    for (const UmlAssociation& a : assocs_) {
      if (a.kind == AssocKind::kRollsUpTo &&
          ToLower(a.from) == ToLower(last) && seen.count(ToLower(a.to))) {
        return Status::InvalidArgument("hierarchy cycle through '" +
                                       a.to + "'");
      }
    }
  }
  return Status::OK();
}

}  // namespace ontology
}  // namespace dwqa
