#include "ontology/owl_writer.h"

#include <cctype>
#include <fstream>

#include "common/string_util.h"

namespace dwqa {
namespace ontology {

namespace {

std::string XmlEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

/// IRI fragment from a concept name: spaces/punctuation to underscores,
/// disambiguated with the concept id (lemmas repeat across senses).
std::string Fragment(const Concept& c) {
  std::string frag;
  for (char ch : c.name) {
    if (std::isalnum(static_cast<unsigned char>(ch))) {
      frag += ch;
    } else {
      frag += '_';
    }
  }
  return frag + "_" + std::to_string(c.id);
}

}  // namespace

std::string OwlWriter::ToOwlXml(const Ontology& onto,
                                const std::string& iri) {
  std::string out;
  out += "<?xml version=\"1.0\"?>\n";
  out += "<rdf:RDF xmlns:rdf=\"http://www.w3.org/1999/02/22-rdf-syntax-ns#\"\n";
  out += "         xmlns:rdfs=\"http://www.w3.org/2000/01/rdf-schema#\"\n";
  out += "         xmlns:owl=\"http://www.w3.org/2002/07/owl#\"\n";
  out += "         xmlns:dwqa=\"" + XmlEscape(iri) + "#\">\n";
  out += "  <owl:Ontology rdf:about=\"" + XmlEscape(iri) + "\"/>\n";

  auto ref = [&](ConceptId id) {
    return XmlEscape(iri) + "#" + Fragment(onto.GetConcept(id));
  };

  for (ConceptId id : onto.AllConcepts()) {
    const Concept& c = onto.GetConcept(id);
    if (c.is_instance) {
      out += "  <owl:NamedIndividual rdf:about=\"" + ref(id) + "\">\n";
      for (ConceptId k : onto.Related(id, RelationKind::kInstanceOf)) {
        out += "    <rdf:type rdf:resource=\"" + ref(k) + "\"/>\n";
      }
    } else {
      out += "  <owl:Class rdf:about=\"" + ref(id) + "\">\n";
      for (ConceptId k : onto.Related(id, RelationKind::kHypernym)) {
        out += "    <rdfs:subClassOf rdf:resource=\"" + ref(k) + "\"/>\n";
      }
    }
    out += "    <rdfs:label>" + XmlEscape(c.name) + "</rdfs:label>\n";
    if (!c.gloss.empty()) {
      out += "    <rdfs:comment>" + XmlEscape(c.gloss) + "</rdfs:comment>\n";
    }
    for (const std::string& alias : c.aliases) {
      out += "    <dwqa:altLabel>" + XmlEscape(alias) + "</dwqa:altLabel>\n";
    }
    for (RelationKind kind :
         {RelationKind::kPartOf, RelationKind::kHasProperty,
          RelationKind::kSynonymOf, RelationKind::kAntonym,
          RelationKind::kAssociated}) {
      for (ConceptId k : onto.Related(id, kind)) {
        out += std::string("    <dwqa:") + RelationKindName(kind) +
               " rdf:resource=\"" + ref(k) + "\"/>\n";
      }
    }
    for (const Axiom& ax : c.axioms) {
      out += "    <dwqa:axiom_" + XmlEscape(ax.key) + ">" +
             XmlEscape(ax.value) + "</dwqa:axiom_" + XmlEscape(ax.key) +
             ">\n";
    }
    out += c.is_instance ? "  </owl:NamedIndividual>\n" : "  </owl:Class>\n";
  }
  out += "</rdf:RDF>\n";
  return out;
}

Status OwlWriter::WriteFile(const Ontology& onto, const std::string& path) {
  std::ofstream file(path);
  if (!file) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  file << ToOwlXml(onto);
  if (!file.good()) {
    return Status::IOError("write to '" + path + "' failed");
  }
  return Status::OK();
}

}  // namespace ontology
}  // namespace dwqa
