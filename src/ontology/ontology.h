#ifndef DWQA_ONTOLOGY_ONTOLOGY_H_
#define DWQA_ONTOLOGY_ONTOLOGY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace dwqa {
namespace ontology {

/// Identifier of a concept within one Ontology.
using ConceptId = int32_t;
constexpr ConceptId kInvalidConcept = -1;

/// \brief Directed semantic relations. Every kind has an inverse that the
/// store maintains automatically (AddRelation inserts both directions).
enum class RelationKind {
  kHypernym,     ///< from IS-A to ("airport" → "facility").
  kHyponym,      ///< inverse of kHypernym.
  kSynonymOf,    ///< symmetric near-synonymy across synsets.
  kPartOf,       ///< meronymy ("El Prat" → "Barcelona").
  kHasPart,      ///< inverse holonymy.
  kAntonym,      ///< symmetric.
  kInstanceOf,   ///< instance → class ("Barcelona" → "city").
  kHasInstance,  ///< inverse.
  kHasProperty,  ///< class → property concept ("sale" → "price").
  kPropertyOf,   ///< inverse.
  kAssociated,   ///< symmetric catch-all for UML associations.
};

/// Inverse of a relation kind (symmetric kinds are their own inverse).
RelationKind InverseRelation(RelationKind kind);

/// Human-readable name ("hypernym", ...).
const char* RelationKindName(RelationKind kind);

/// \brief Free-form axiom attached to a concept: the Step-4 "axiomatic
/// information" (e.g. temperature: unit = ºC|F, min = -90, max = 60,
/// conversion formula).
struct Axiom {
  std::string key;
  std::string value;
};

/// \brief A node of the ontology: a class concept or an instance.
struct Concept {
  ConceptId id = kInvalidConcept;
  /// Display name, e.g. "Last Minute Sales".
  std::string name;
  /// Lowercase lookup key, e.g. "last minute sales".
  std::string lemma;
  /// Short definition used by the Lesk disambiguator.
  std::string gloss;
  /// True for individuals ("Barcelona"), false for classes ("city").
  bool is_instance = false;
  /// Provenance: "wordnet", "uml", "dw", "merge".
  std::string source;
  std::vector<Axiom> axioms;
  /// Alternative lemmas ("jfk" for "Kennedy International Airport").
  std::vector<std::string> aliases;
};

/// \brief In-memory ontology store with lemma index and typed relations.
///
/// Used for three roles in the reproduction: the WordNet-like upper ontology
/// of the QA system, the domain ontology derived from the DW's UML model
/// (Step 1), and the merged ontology (Step 3).
class Ontology {
 public:
  Ontology() = default;

  /// Adds a class concept. A lemma may map to several class concepts
  /// (WordNet-style senses); earlier insertions rank as more salient senses.
  Result<ConceptId> AddConcept(std::string_view name, std::string_view gloss,
                               std::string_view source);

  /// Adds an instance concept. Instances may share a lemma with a class and
  /// with other instances (that ambiguity is what WSD resolves).
  Result<ConceptId> AddInstance(std::string_view name, std::string_view gloss,
                                std::string_view source);

  /// Adds `relation` and its inverse. Fails on unknown ids or self-loops.
  Status AddRelation(ConceptId from, RelationKind kind, ConceptId to);

  /// Registers an extra lookup lemma for `id` ("jfk").
  Status AddAlias(ConceptId id, std::string_view alias);

  /// Attaches or overwrites an axiom on `id`.
  Status SetAxiom(ConceptId id, std::string_view key, std::string_view value);

  /// Axiom value, or NotFound.
  Result<std::string> GetAxiom(ConceptId id, std::string_view key) const;

  const Concept& GetConcept(ConceptId id) const { return concepts_[size_t(id)]; }
  bool IsValidId(ConceptId id) const {
    return id >= 0 && static_cast<size_t>(id) < concepts_.size();
  }

  /// All concepts whose lemma or alias equals `lemma` (case-insensitive).
  std::vector<ConceptId> Find(std::string_view lemma) const;

  /// The most salient class concept for `lemma` (WordNet first-sense
  /// heuristic: lowest id wins); instances are ignored. NotFound if none.
  Result<ConceptId> FindClass(std::string_view lemma) const;

  /// Neighbors of `id` under `kind`.
  std::vector<ConceptId> Related(ConceptId id, RelationKind kind) const;

  /// True if `a` reaches `b` via kInstanceOf/kHypernym edges (reflexive).
  bool IsA(ConceptId a, ConceptId b) const;

  /// Hypernym chain from `id` upward (id first). Follows the first hypernym
  /// at each step; instances start through kInstanceOf.
  std::vector<ConceptId> HypernymPath(ConceptId id) const;

  /// All hyponyms + instances below `id`, breadth-first, up to `limit`.
  std::vector<ConceptId> SubtreeOf(ConceptId id, size_t limit = 10000) const;

  size_t concept_count() const { return concepts_.size(); }
  size_t relation_count() const { return relation_count_; }

  /// Ids of all concepts (0..n-1); convenience for iteration.
  std::vector<ConceptId> AllConcepts() const;

 private:
  Result<ConceptId> AddNode(std::string_view name, std::string_view gloss,
                            std::string_view source, bool is_instance);

  std::vector<Concept> concepts_;
  /// lemma -> concept ids (includes aliases).
  std::unordered_multimap<std::string, ConceptId> lemma_index_;
  /// (concept, kind) -> neighbor list.
  std::vector<std::unordered_map<int, std::vector<ConceptId>>> edges_;
  size_t relation_count_ = 0;
};

}  // namespace ontology
}  // namespace dwqa

#endif  // DWQA_ONTOLOGY_ONTOLOGY_H_
