#include "ontology/uml_to_ontology.h"

#include <string>
#include <unordered_map>

#include "common/string_util.h"

namespace dwqa {
namespace ontology {

Result<Ontology> UmlToOntology::Transform(const UmlModel& model) {
  DWQA_RETURN_NOT_OK(model.Validate());
  Ontology onto;
  std::unordered_map<std::string, ConceptId> by_name;

  for (const UmlClass& klass : model.classes()) {
    std::string gloss = std::string(ClassStereotypeName(klass.stereotype)) +
                        " class of the multidimensional model";
    DWQA_ASSIGN_OR_RETURN(ConceptId cid,
                          onto.AddConcept(klass.name, gloss, "uml"));
    by_name[ToLower(klass.name)] = cid;
    for (const UmlAttribute& attr : klass.attributes) {
      if (attr.stereotype == AttrStereotype::kOID) continue;  // surrogate
      // Property concepts may repeat across classes ("Name" on City and
      // Country); reuse an existing property concept of the same lemma.
      ConceptId pid = kInvalidConcept;
      auto it = by_name.find(ToLower(attr.name));
      if (it != by_name.end()) {
        pid = it->second;
      } else {
        DWQA_ASSIGN_OR_RETURN(
            pid, onto.AddConcept(attr.name,
                                 std::string(AttrStereotypeName(
                                     attr.stereotype)) +
                                     " of " + klass.name,
                                 "uml"));
        by_name[ToLower(attr.name)] = pid;
      }
      DWQA_RETURN_NOT_OK(
          onto.AddRelation(cid, RelationKind::kHasProperty, pid));
    }
  }

  for (const UmlAssociation& assoc : model.associations()) {
    ConceptId from = by_name.at(ToLower(assoc.from));
    ConceptId to = by_name.at(ToLower(assoc.to));
    switch (assoc.kind) {
      case AssocKind::kRollsUpTo:
        DWQA_RETURN_NOT_OK(onto.AddRelation(from, RelationKind::kPartOf, to));
        break;
      case AssocKind::kGeneralization:
        DWQA_RETURN_NOT_OK(
            onto.AddRelation(from, RelationKind::kHypernym, to));
        break;
      case AssocKind::kAssociation:
      case AssocKind::kAggregation:
        DWQA_RETURN_NOT_OK(
            onto.AddRelation(from, RelationKind::kAssociated, to));
        break;
    }
  }
  return onto;
}

}  // namespace ontology
}  // namespace dwqa
