#ifndef DWQA_ONTOLOGY_UML_TO_ONTOLOGY_H_
#define DWQA_ONTOLOGY_UML_TO_ONTOLOGY_H_

#include "common/result.h"
#include "ontology/ontology.h"
#include "ontology/uml_model.h"

namespace dwqa {
namespace ontology {

/// \brief Step 1 of the paper's approach: derive the domain ontology from
/// the UML multidimensional model of the DW.
///
/// Implements the "ad-hoc method" the paper selects over XMI/XSLT
/// (§3, Step 1): classes become ontological concepts and relations become
/// relations between concepts —
///   - every UML class → a class concept (source "uml");
///   - every attribute → a property concept linked with kHasProperty;
///   - kRollsUpTo (Airport → City) → kPartOf (an airport is located in a
///     city, the containment the paper's ontology in Figure 2 shows);
///   - kGeneralization → kHypernym;
///   - plain associations / aggregations → kAssociated.
class UmlToOntology {
 public:
  /// Transforms `model` into a fresh domain ontology. The model is validated
  /// first; structural problems surface as InvalidArgument/NotFound.
  static Result<Ontology> Transform(const UmlModel& model);
};

}  // namespace ontology
}  // namespace dwqa

#endif  // DWQA_ONTOLOGY_UML_TO_ONTOLOGY_H_
