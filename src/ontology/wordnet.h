#ifndef DWQA_ONTOLOGY_WORDNET_H_
#define DWQA_ONTOLOGY_WORDNET_H_

#include "ontology/ontology.h"

namespace dwqa {
namespace ontology {

/// \brief Builds the mini-WordNet upper ontology used by the QA system.
///
/// Substitutes WordNet/EuroWordNet (paper §3, Step 3; DESIGN.md substitution
/// table). Contents:
///   - the standard 25 noun unique beginners under "entity"
///     (act, animal, artifact, attribute, ..., time);
///   - domain-relevant trees: location → region → {country, state, city}
///     with well-known instances; artifact → structure → facility → airport
///     (with "Kennedy International Airport", as in the paper); phenomenon →
///     atmospheric phenomenon → weather; attribute → temperature; time →
///     {date, day, month, year}; act → sale; possession → {price, money};
///     person / profession / group trees backing the answer-type taxonomy;
///   - the ambiguous celebrity senses the paper jokes about: "JFK" as a
///     person (John F. Kennedy), "John Wayne" as an actor, "La Guardia" as a
///     Spanish musical group — without Step-2/3 enrichment the QA system
///     resolves these mentions to non-airport senses.
class MiniWordNet {
 public:
  /// Constructs a fresh copy of the upper ontology (callers mutate it when
  /// merging, so no shared singleton).
  static Ontology Build();
};

}  // namespace ontology
}  // namespace dwqa

#endif  // DWQA_ONTOLOGY_WORDNET_H_
