#include "ontology/merge.h"

#include <unordered_map>

#include "common/string_util.h"
#include "text/lemmatizer.h"

namespace dwqa {
namespace ontology {

const char* MergeDecisionName(MergeDecision d) {
  switch (d) {
    case MergeDecision::kExactMatch:
      return "exact";
    case MergeDecision::kPartialMatch:
      return "partial";
    case MergeDecision::kHeadHyponym:
      return "head-hyponym";
    case MergeDecision::kNewTree:
      return "new-tree";
    case MergeDecision::kNewInstance:
      return "new-instance";
  }
  return "?";
}

std::string OntologyMerger::HeadWord(const std::string& name) {
  std::vector<std::string> words = SplitWhitespace(ToLower(name));
  if (words.empty()) return "";
  // The head of an English compound nominal is its final word; singularize
  // it so "Sales" finds the concept "sale".
  return text::Lemmatizer::Lemmatize(words.back(), "NNS");
}

namespace {

/// Best partial match of `lemma` among upper class concepts (similarity at
/// or above `threshold`; ties go to the earlier, more salient sense).
ConceptId BestPartialMatch(const Ontology& upper, const std::string& lemma,
                           double threshold) {
  ConceptId best = kInvalidConcept;
  double best_sim = threshold;
  for (ConceptId id : upper.AllConcepts()) {
    const Concept& c = upper.GetConcept(id);
    if (c.is_instance) continue;
    double sim = StringSimilarity(lemma, c.lemma);
    if (sim > best_sim) {
      best = id;
      best_sim = sim;
    }
  }
  return best;
}

}  // namespace

Result<MergeReport> OntologyMerger::Merge(Ontology* upper,
                                          const Ontology& domain,
                                          const MergeOptions& options) {
  if (upper == nullptr) {
    return Status::InvalidArgument("upper ontology must not be null");
  }
  MergeReport report;
  // Image of every domain concept in the upper ontology.
  std::unordered_map<ConceptId, ConceptId> image;

  // ---- Pass 1: place class concepts ------------------------------------
  for (ConceptId did : domain.AllConcepts()) {
    const Concept& dc = domain.GetConcept(did);
    if (dc.is_instance) continue;
    MergeRecord record;
    record.domain_concept = dc.name;

    auto exact = upper->FindClass(dc.lemma);
    ConceptId partial = kInvalidConcept;
    if (!exact.ok() && options.enable_partial) {
      partial =
          BestPartialMatch(*upper, dc.lemma, options.partial_threshold);
    }
    if (exact.ok()) {
      image[did] = *exact;
      record.decision = MergeDecision::kExactMatch;
      record.target = upper->GetConcept(*exact).name;
      ++report.exact;
    } else if (partial != kInvalidConcept) {
      // Partial match: expose the domain name as a synonym of the match.
      image[did] = partial;
      record.decision = MergeDecision::kPartialMatch;
      record.target = upper->GetConcept(partial).name;
      DWQA_RETURN_NOT_OK(upper->AddAlias(partial, dc.lemma));
      ++report.partial;
      ++report.synonyms_added;
    } else {
      std::string head = HeadWord(dc.name);
      auto head_match = upper->FindClass(head);
      if (options.enable_head && head != dc.lemma && head_match.ok()) {
        // New hyponym of the head concept ("Last Minute Sales" under
        // "sale").
        DWQA_ASSIGN_OR_RETURN(
            ConceptId nid, upper->AddConcept(dc.name, dc.gloss, "merge"));
        DWQA_RETURN_NOT_OK(
            upper->AddRelation(nid, RelationKind::kHypernym, *head_match));
        image[did] = nid;
        record.decision = MergeDecision::kHeadHyponym;
        record.target = upper->GetConcept(*head_match).name;
        ++report.head;
      } else {
        // New ontological tree: concept with no hypernym.
        DWQA_ASSIGN_OR_RETURN(
            ConceptId nid, upper->AddConcept(dc.name, dc.gloss, "merge"));
        image[did] = nid;
        record.decision = MergeDecision::kNewTree;
        ++report.new_tree;
      }
    }
    report.records.push_back(std::move(record));
  }

  // ---- Pass 2: place instances under their class images ----------------
  for (ConceptId did : domain.AllConcepts()) {
    const Concept& dc = domain.GetConcept(did);
    if (!dc.is_instance) continue;
    MergeRecord record;
    record.domain_concept = dc.name;
    record.is_instance = true;

    // The class this instance belongs to, mapped into the upper ontology.
    ConceptId upper_class = kInvalidConcept;
    for (ConceptId k : domain.Related(did, RelationKind::kInstanceOf)) {
      auto it = image.find(k);
      if (it != image.end()) {
        upper_class = it->second;
        break;
      }
    }

    // Does the upper ontology already know this individual (by any of its
    // names) as an instance *of the same class*? Then enrich with aliases,
    // as the paper does for JFK / Kennedy International Airport.
    ConceptId existing = kInvalidConcept;
    std::vector<std::string> names{dc.lemma};
    names.insert(names.end(), dc.aliases.begin(), dc.aliases.end());
    for (const std::string& n : names) {
      for (ConceptId uid : upper->Find(n)) {
        if (!upper->GetConcept(uid).is_instance) continue;
        if (upper_class == kInvalidConcept ||
            upper->IsA(uid, upper_class)) {
          existing = uid;
          break;
        }
      }
      if (existing != kInvalidConcept) break;
    }

    ConceptId inst = existing;
    if (existing != kInvalidConcept) {
      record.decision = MergeDecision::kExactMatch;
      record.target = upper->GetConcept(existing).name;
      for (const std::string& n : names) {
        if (n != upper->GetConcept(existing).lemma) {
          DWQA_RETURN_NOT_OK(upper->AddAlias(existing, n));
          ++report.synonyms_added;
        }
      }
      ++report.exact;
    } else {
      DWQA_ASSIGN_OR_RETURN(
          inst, upper->AddInstance(dc.name, dc.gloss, "merge"));
      for (const std::string& alias : dc.aliases) {
        DWQA_RETURN_NOT_OK(upper->AddAlias(inst, alias));
      }
      if (upper_class != kInvalidConcept) {
        DWQA_RETURN_NOT_OK(
            upper->AddRelation(inst, RelationKind::kInstanceOf, upper_class));
        record.decision = MergeDecision::kNewInstance;
        record.target = upper->GetConcept(upper_class).name;
        ++report.new_instances;
      } else {
        record.decision = MergeDecision::kNewTree;
        ++report.new_tree;
      }
    }
    image[did] = inst;
    ++report.instances_merged;
    report.records.push_back(std::move(record));
  }

  // ---- Pass 3: carry the remaining domain relations over ----------------
  for (ConceptId did : domain.AllConcepts()) {
    auto it_from = image.find(did);
    if (it_from == image.end()) continue;
    for (RelationKind kind :
         {RelationKind::kPartOf, RelationKind::kHasProperty,
          RelationKind::kAssociated}) {
      for (ConceptId to : domain.Related(did, kind)) {
        auto it_to = image.find(to);
        if (it_to == image.end()) continue;
        if (it_from->second == it_to->second) continue;
        DWQA_RETURN_NOT_OK(
            upper->AddRelation(it_from->second, kind, it_to->second));
      }
    }
    // Axioms travel with the concept.
    for (const Axiom& ax : domain.GetConcept(did).axioms) {
      DWQA_RETURN_NOT_OK(
          upper->SetAxiom(it_from->second, ax.key, ax.value));
    }
  }
  return report;
}

}  // namespace ontology
}  // namespace dwqa
