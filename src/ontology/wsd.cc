#include "ontology/wsd.h"

#include <unordered_set>

#include "common/string_util.h"

namespace dwqa {
namespace ontology {

namespace {

const std::unordered_set<std::string>& SignatureStopwords() {
  static const auto* kSet = new std::unordered_set<std::string>{
      "a", "an", "the", "of", "in", "on", "at", "to", "and", "or",
      "that", "which", "with", "for", "by", "is", "are", "was", "be",
      "its", "it", "as", "from", "into", "under", "who", "all"};
  return *kSet;
}

}  // namespace

std::vector<std::string> Wsd::Signature(ConceptId id) const {
  std::vector<std::string> sig;
  if (!onto_->IsValidId(id)) return sig;
  const Concept& c = onto_->GetConcept(id);
  for (const std::string& w : SplitWhitespace(ToLower(c.gloss))) {
    if (!SignatureStopwords().count(w)) sig.push_back(w);
  }
  for (RelationKind kind :
       {RelationKind::kHypernym, RelationKind::kInstanceOf,
        RelationKind::kPartOf, RelationKind::kHasProperty,
        RelationKind::kSynonymOf, RelationKind::kHasPart}) {
    for (ConceptId k : onto_->Related(id, kind)) {
      for (const std::string& w :
           SplitWhitespace(onto_->GetConcept(k).lemma)) {
        sig.push_back(w);
      }
    }
  }
  return sig;
}

Result<WsdChoice> Wsd::Disambiguate(
    const std::string& lemma, const std::vector<std::string>& context) const {
  std::vector<ConceptId> candidates = onto_->Find(ToLower(lemma));
  if (candidates.empty()) {
    return Status::NotFound("lemma '" + lemma + "' has no sense in the "
                            "ontology");
  }
  std::unordered_set<std::string> ctx;
  for (const std::string& w : context) ctx.insert(ToLower(w));

  WsdChoice best;
  best.candidate_count = candidates.size();
  for (ConceptId id : candidates) {
    double score = 0.0;
    for (const std::string& w : Signature(id)) {
      if (ctx.count(w)) score += 1.0;
    }
    // Ancestor bonus: context words that name an ancestor concept are
    // strong evidence ("airport" in the question selects the airport sense
    // of "El Prat").
    for (ConceptId anc : onto_->HypernymPath(id)) {
      if (anc == id) continue;
      for (const std::string& w :
           SplitWhitespace(onto_->GetConcept(anc).lemma)) {
        if (ctx.count(w)) score += 2.0;
      }
    }
    if (best.sense == kInvalidConcept || score > best.score) {
      best.sense = id;
      best.score = score;
    }
  }
  return best;
}

}  // namespace ontology
}  // namespace dwqa
