#include "ontology/enrichment.h"

#include "common/string_util.h"

namespace dwqa {
namespace ontology {

Result<EnrichmentReport> Enricher::Enrich(
    Ontology* onto, const std::string& concept_lemma,
    const std::vector<InstanceSeed>& seeds) {
  if (onto == nullptr) {
    return Status::InvalidArgument("ontology must not be null");
  }
  DWQA_ASSIGN_OR_RETURN(ConceptId klass,
                        onto->FindClass(ToLower(concept_lemma)));
  EnrichmentReport report;
  for (const InstanceSeed& seed : seeds) {
    if (seed.name.empty()) {
      return Status::InvalidArgument("instance seed with empty name");
    }
    // Existing instance of this class (by lemma or alias)?
    ConceptId existing = kInvalidConcept;
    for (ConceptId id : onto->Find(ToLower(seed.name))) {
      if (onto->GetConcept(id).is_instance && onto->IsA(id, klass)) {
        existing = id;
        break;
      }
    }
    ConceptId inst = existing;
    if (existing == kInvalidConcept) {
      DWQA_ASSIGN_OR_RETURN(
          inst, onto->AddInstance(seed.name,
                                  seed.gloss.empty()
                                      ? concept_lemma + " from the DW"
                                      : seed.gloss,
                                  "dw"));
      DWQA_RETURN_NOT_OK(onto->AddRelation(inst, RelationKind::kInstanceOf,
                                           klass));
      ++report.instances_added;
    } else {
      ++report.skipped_existing;
    }
    for (const std::string& alias : seed.aliases) {
      DWQA_RETURN_NOT_OK(onto->AddAlias(inst, alias));
      ++report.aliases_added;
    }
    if (!seed.located_in.empty()) {
      // Link to a container concept/instance if one exists; prefer an
      // instance (the city "Barcelona") over a class.
      ConceptId container = kInvalidConcept;
      for (ConceptId id : onto->Find(ToLower(seed.located_in))) {
        if (onto->GetConcept(id).is_instance) {
          container = id;
          break;
        }
        if (container == kInvalidConcept) container = id;
      }
      if (container == kInvalidConcept) {
        // Container unknown: create it as an instance of unknown class so
        // the partOf link is preserved (the merge step may reparent it).
        DWQA_ASSIGN_OR_RETURN(
            container,
            onto->AddInstance(seed.located_in, "container from the DW",
                              "dw"));
      }
      if (container != inst) {
        DWQA_RETURN_NOT_OK(
            onto->AddRelation(inst, RelationKind::kPartOf, container));
        ++report.part_of_links;
      }
    }
  }
  return report;
}

}  // namespace ontology
}  // namespace dwqa
