#include "ontology/wordnet.h"

#include "common/logging.h"

namespace dwqa {
namespace ontology {

namespace {

/// Adds a class concept under `parent` (hypernym edge), aborting on the
/// programmer errors (duplicate seed entries) that would corrupt the seed.
ConceptId AddClass(Ontology* o, ConceptId parent, const char* name,
                   const char* gloss) {
  auto result = o->AddConcept(name, gloss, "wordnet");
  DWQA_CHECK(result.ok());
  ConceptId id = result.ValueOrDie();
  if (parent != kInvalidConcept) {
    DWQA_CHECK(o->AddRelation(id, RelationKind::kHypernym, parent).ok());
  }
  return id;
}

ConceptId AddInst(Ontology* o, ConceptId klass, const char* name,
                  const char* gloss) {
  auto result = o->AddInstance(name, gloss, "wordnet");
  DWQA_CHECK(result.ok());
  ConceptId id = result.ValueOrDie();
  DWQA_CHECK(o->AddRelation(id, RelationKind::kInstanceOf, klass).ok());
  return id;
}

}  // namespace

Ontology MiniWordNet::Build() {
  Ontology o;
  ConceptId entity = AddClass(&o, kInvalidConcept, "entity",
                              "that which is perceived to have existence");

  // ---- The 25 noun unique beginners -----------------------------------
  ConceptId act = AddClass(&o, entity, "act", "something done by an agent");
  ConceptId animal = AddClass(&o, entity, "animal", "a living organism");
  ConceptId artifact =
      AddClass(&o, entity, "artifact", "a man-made object");
  ConceptId attribute =
      AddClass(&o, entity, "attribute", "a quality belonging to an entity");
  AddClass(&o, entity, "body", "the physical structure of an organism");
  ConceptId cognition =
      AddClass(&o, entity, "cognition", "knowledge and mental content");
  ConceptId communication = AddClass(&o, entity, "communication",
                                     "something that is communicated");
  ConceptId event =
      AddClass(&o, entity, "event", "something that happens at a time");
  AddClass(&o, entity, "feeling", "an affective state");
  ConceptId food = AddClass(&o, entity, "food", "an edible substance");
  ConceptId group =
      AddClass(&o, entity, "group", "a collection of entities");
  ConceptId location =
      AddClass(&o, entity, "location", "a point or extent in space");
  AddClass(&o, entity, "motive", "a reason for action");
  ConceptId object =
      AddClass(&o, entity, "object", "a tangible thing");
  ConceptId person =
      AddClass(&o, entity, "person", "a human being");
  ConceptId phenomenon =
      AddClass(&o, entity, "phenomenon", "an observable occurrence");
  AddClass(&o, entity, "plant", "a living organism lacking locomotion");
  ConceptId possession =
      AddClass(&o, entity, "possession", "anything owned or possessed");
  ConceptId process =
      AddClass(&o, entity, "process", "a sustained phenomenon");
  ConceptId quantity =
      AddClass(&o, entity, "quantity", "how much there is of something");
  AddClass(&o, entity, "relation", "an abstraction of belonging together");
  AddClass(&o, entity, "shape", "the spatial arrangement of something");
  ConceptId state =
      AddClass(&o, entity, "state", "the way something is with respect "
                                    "to its attributes");
  AddClass(&o, entity, "substance", "the stuff of which an object consists");
  ConceptId time = AddClass(&o, entity, "time", "a temporal point or period");

  // ---- Geography --------------------------------------------------------
  ConceptId region =
      AddClass(&o, location, "region", "a large indefinite location");
  ConceptId country = AddClass(&o, region, "country",
                               "a politically organized body of people "
                               "under a single government");
  ConceptId city_state =
      AddClass(&o, region, "state", "an administrative district of a nation");
  (void)city_state;
  ConceptId city = AddClass(&o, region, "city",
                            "a large and densely populated urban area");
  ConceptId capital = AddClass(&o, city, "capital",
                               "a seat of government of a country");

  ConceptId spain = AddInst(&o, country, "Spain",
                            "a parliamentary monarchy in southwestern "
                            "Europe on the Iberian Peninsula");
  ConceptId france =
      AddInst(&o, country, "France", "a republic in western Europe");
  ConceptId usa = AddInst(&o, country, "United States",
                          "a North American republic of 50 states");
  DWQA_CHECK(o.AddAlias(usa, "USA").ok());
  DWQA_CHECK(o.AddAlias(usa, "America").ok());
  ConceptId iraq =
      AddInst(&o, country, "Iraq", "a republic in the Middle East");
  ConceptId kuwait = AddInst(&o, country, "Kuwait",
                             "an Arab kingdom on the Persian Gulf");
  (void)iraq;
  (void)kuwait;
  AddInst(&o, country, "Italy", "a republic in southern Europe");
  AddInst(&o, country, "United Kingdom", "a monarchy in northwestern Europe");

  ConceptId barcelona = AddInst(&o, city, "Barcelona",
                                "a city in northeastern Spain on the "
                                "Mediterranean");
  DWQA_CHECK(o.AddRelation(barcelona, RelationKind::kPartOf, spain).ok());
  ConceptId madrid =
      AddInst(&o, capital, "Madrid", "the capital and largest city of Spain");
  DWQA_CHECK(o.AddRelation(madrid, RelationKind::kPartOf, spain).ok());
  ConceptId paris =
      AddInst(&o, capital, "Paris", "the capital and largest city of France");
  DWQA_CHECK(o.AddRelation(paris, RelationKind::kPartOf, france).ok());
  ConceptId new_york = AddInst(&o, city, "New York",
                               "the largest city of the United States");
  DWQA_CHECK(o.AddRelation(new_york, RelationKind::kPartOf, usa).ok());
  AddInst(&o, city, "Valencia", "a city in eastern Spain on the "
                                "Mediterranean");
  AddInst(&o, city, "Seville", "a city in southwestern Spain");
  ConceptId london = AddInst(&o, capital, "London",
                             "the capital and largest city of the "
                             "United Kingdom");
  (void)london;
  ConceptId rome =
      AddInst(&o, capital, "Rome", "the capital and largest city of Italy");
  (void)rome;

  // ---- Artifacts: facilities, airports, vehicles, documents -------------
  ConceptId structure = AddClass(&o, artifact, "structure",
                                 "a thing constructed of parts");
  ConceptId facility = AddClass(&o, structure, "facility",
                                "a building or place that provides a "
                                "particular service");
  ConceptId airport = AddClass(&o, facility, "airport",
                               "an airfield equipped with control tower "
                               "and hangars and accommodations for "
                               "passengers and cargo");
  ConceptId kennedy = AddInst(&o, airport, "Kennedy International Airport",
                              "a large international airport on Long "
                              "Island to the east of New York City");
  DWQA_CHECK(o.AddRelation(kennedy, RelationKind::kPartOf, new_york).ok());
  ConceptId vehicle =
      AddClass(&o, artifact, "vehicle", "a conveyance that transports "
                                        "people or objects");
  ConceptId aircraft = AddClass(&o, vehicle, "aircraft",
                                "a vehicle that can fly");
  AddClass(&o, aircraft, "airplane", "a fixed-wing aircraft");
  ConceptId document = AddClass(&o, communication, "document",
                                "writing that provides information");
  AddClass(&o, document, "report", "a written document describing findings");
  AddClass(&o, document, "email", "a message sent electronically");
  ConceptId web_page = AddClass(&o, document, "web page",
                                "a document connected to the World Wide Web");
  (void)web_page;
  AddClass(&o, communication, "abbreviation",
           "a shortened form of a word or phrase");
  AddClass(&o, communication, "definition",
           "a concise explanation of the meaning of a word");
  ConceptId ticket = AddClass(&o, artifact, "ticket",
                              "a commercial document showing that the "
                              "holder is entitled to something");
  (void)ticket;

  // ---- Weather & measures ------------------------------------------------
  ConceptId natural_phenomenon =
      AddClass(&o, phenomenon, "natural phenomenon",
               "all phenomena that are not artificial");
  ConceptId atmospheric = AddClass(&o, natural_phenomenon,
                                   "atmospheric phenomenon",
                                   "a physical phenomenon associated with "
                                   "the atmosphere");
  ConceptId weather = AddClass(&o, atmospheric, "weather",
                               "the atmospheric conditions at a given "
                               "place and time: temperature, wind, clouds "
                               "and precipitation");
  AddClass(&o, atmospheric, "storm", "a violent weather condition");
  AddClass(&o, atmospheric, "wind", "air moving from high to low pressure");
  AddClass(&o, atmospheric, "rain", "water falling in drops from clouds");
  AddClass(&o, atmospheric, "snow", "precipitation of ice crystals");
  ConceptId temperature =
      AddClass(&o, attribute, "temperature",
               "the degree of hotness or coldness of a body or "
               "environment, measured in degrees Celsius or Fahrenheit");
  DWQA_CHECK(
      o.AddRelation(weather, RelationKind::kHasProperty, temperature).ok());
  AddClass(&o, attribute, "humidity", "the amount of water vapor in the air");
  ConceptId measure = AddClass(&o, quantity, "measure",
                               "how much there is of something "
                               "quantified against a unit");
  ConceptId unit = AddClass(&o, measure, "unit of measurement",
                            "a standard quantity used to express "
                            "a physical magnitude");
  AddInst(&o, unit, "Celsius", "a temperature scale with water freezing "
                               "at 0 degrees");
  AddInst(&o, unit, "Fahrenheit", "a temperature scale with water "
                                  "freezing at 32 degrees");
  AddClass(&o, measure, "distance", "the size of the gap between "
                                    "two places");
  ConceptId mile = AddClass(&o, measure, "mile",
                            "a unit of length equal to 1760 yards");
  (void)mile;
  AddClass(&o, measure, "percentage", "a proportion expressed in "
                                      "hundredths");
  AddClass(&o, measure, "age", "how long something has existed");
  ConceptId period = AddClass(&o, time, "period",
                              "an amount of time between two events");
  (void)period;

  // ---- Time --------------------------------------------------------------
  ConceptId date_c = AddClass(&o, time, "date",
                              "a particular day specified by month, day "
                              "and year");
  (void)date_c;
  AddClass(&o, time, "day", "a period of 24 hours");
  ConceptId month_c = AddClass(&o, time, "month",
                               "one of the twelve divisions of a "
                               "calendar year");
  AddClass(&o, time, "year", "a period of 365 or 366 days");
  AddClass(&o, time, "quarter", "a fourth part of a year");
  static const char* kMonths[] = {"January", "February", "March", "April",
                                  "May", "June", "July", "August",
                                  "September", "October", "November",
                                  "December"};
  for (const char* m : kMonths) {
    AddInst(&o, month_c, m, "a month of the Gregorian calendar");
  }

  // ---- Commerce ------------------------------------------------------------
  ConceptId transaction = AddClass(&o, act, "transaction",
                                   "the act of transacting business");
  ConceptId sale = AddClass(&o, transaction, "sale",
                            "the general activity of selling goods or "
                            "services in exchange for money");
  (void)sale;
  ConceptId travel = AddClass(&o, act, "travel",
                              "the act of going from one place to another");
  ConceptId flight = AddClass(&o, travel, "flight",
                              "a scheduled trip by plane between "
                              "designated airports");
  (void)flight;
  ConceptId price = AddClass(&o, possession, "price",
                             "the amount of money needed to purchase "
                             "something");
  AddClass(&o, price, "fare", "the price charged to transport a person");
  AddClass(&o, possession, "money", "the official currency issued by a "
                                    "government");
  ConceptId cost = AddClass(&o, possession, "cost",
                            "the total spent for goods or services");
  (void)cost;
  ConceptId company = AddClass(&o, group, "company",
                               "an institution created to conduct business");
  ConceptId airline = AddClass(&o, company, "airline",
                               "a commercial enterprise that provides "
                               "scheduled flights for passengers");
  (void)airline;
  ConceptId musical_group = AddClass(&o, group, "musical group",
                                     "an organization of musicians who "
                                     "perform together");

  // ---- People ---------------------------------------------------------------
  ConceptId profession = AddClass(&o, act, "profession",
                                  "an occupation requiring special "
                                  "education");
  AddClass(&o, profession, "pilot", "a professional who operates aircraft");
  AddClass(&o, profession, "actor", "a theatrical or film performer");
  AddClass(&o, profession, "president", "the chief executive of a republic");
  ConceptId leader = AddClass(&o, person, "leader",
                              "a person who rules or guides others");
  ConceptId actor_p = AddClass(&o, person, "performer",
                               "an entertainer who performs for an "
                               "audience");
  ConceptId traveler = AddClass(&o, person, "traveler",
                                "a person who changes location");
  AddClass(&o, traveler, "passenger", "a traveler riding in a vehicle "
                                      "without operating it");
  ConceptId customer = AddClass(&o, person, "customer",
                                "someone who pays for goods or services");
  (void)customer;

  // ---- The ambiguity distractors (paper §3, Step 2) -----------------------
  ConceptId jfk_person = AddInst(&o, leader, "John F. Kennedy",
                                 "35th President of the United States");
  DWQA_CHECK(o.AddAlias(jfk_person, "JFK").ok());
  ConceptId wayne_person = AddInst(&o, actor_p, "John Wayne",
                                   "United States film actor");
  (void)wayne_person;
  ConceptId laguardia_band = AddInst(&o, musical_group, "La Guardia",
                                     "a Spanish pop-rock musical group");
  (void)laguardia_band;
  ConceptId elprat_band = AddInst(&o, musical_group, "El Prat",
                                  "a Spanish musical group");
  (void)elprat_band;

  // ---- Celestial odds and ends used by the CLEF-style question factory ----
  ConceptId celestial = AddClass(&o, object, "celestial body",
                                 "a natural object visible in the sky");
  ConceptId star = AddClass(&o, celestial, "star",
                            "a celestial body of hot gases");
  ConceptId sirius = AddInst(&o, star, "Sirius",
                             "the brightest star visible in the night sky");
  (void)sirius;
  AddClass(&o, food, "meal", "the food served and eaten at one time");
  AddClass(&o, cognition, "knowledge", "the result of perception and "
                                       "learning");
  AddClass(&o, event, "competition", "an occasion on which a winner is "
                                     "selected");
  AddClass(&o, process, "increase", "a process of becoming larger");
  AddClass(&o, state, "crisis", "an unstable situation of extreme danger");
  (void)animal;

  return o;
}

}  // namespace ontology
}  // namespace dwqa
