#ifndef DWQA_ONTOLOGY_SIMILARITY_H_
#define DWQA_ONTOLOGY_SIMILARITY_H_

#include "common/result.h"
#include "ontology/ontology.h"

namespace dwqa {
namespace ontology {

/// \brief Taxonomy-based concept similarity measures over the hypernym
/// graph — the semantic-distance machinery WordNet-based QA systems use to
/// grade how well a candidate answer fits the expected type.
class Similarity {
 public:
  /// Wu–Palmer similarity: 2·depth(lcs) / (depth(a) + depth(b)), in (0, 1]
  /// when both concepts share an ancestor, 0 when they do not (disjoint
  /// trees). depth counts nodes on the primary hypernym path including the
  /// concept itself.
  static double WuPalmer(const Ontology& onto, ConceptId a, ConceptId b);

  /// The deepest shared ancestor on the primary hypernym paths of `a` and
  /// `b`; NotFound when the trees are disjoint.
  static Result<ConceptId> LeastCommonSubsumer(const Ontology& onto,
                                               ConceptId a, ConceptId b);

  /// Edge-counting path similarity: 1 / (1 + edges on the path through the
  /// LCS); 0 when disjoint.
  static double PathSimilarity(const Ontology& onto, ConceptId a,
                               ConceptId b);
};

}  // namespace ontology
}  // namespace dwqa

#endif  // DWQA_ONTOLOGY_SIMILARITY_H_
