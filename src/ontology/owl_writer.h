#ifndef DWQA_ONTOLOGY_OWL_WRITER_H_
#define DWQA_ONTOLOGY_OWL_WRITER_H_

#include <string>

#include "common/status.h"
#include "ontology/ontology.h"

namespace dwqa {
namespace ontology {

/// \brief Serializes an Ontology to OWL/XML.
///
/// Step 1(b) of the paper: "the generation of the ontology in some of the
/// ontology representation languages — for instance OWL". Classes become
/// owl:Class with rdfs:subClassOf for hypernymy; instances become
/// owl:NamedIndividual; the other relation kinds become object properties;
/// axioms become annotation properties.
class OwlWriter {
 public:
  /// Renders the whole ontology as an OWL/XML document.
  static std::string ToOwlXml(const Ontology& onto,
                              const std::string& ontology_iri =
                                  "http://dwqa.example.org/ontology");

  /// Writes ToOwlXml() to `path`.
  static Status WriteFile(const Ontology& onto, const std::string& path);
};

}  // namespace ontology
}  // namespace dwqa

#endif  // DWQA_ONTOLOGY_OWL_WRITER_H_
