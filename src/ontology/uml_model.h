#ifndef DWQA_ONTOLOGY_UML_MODEL_H_
#define DWQA_ONTOLOGY_UML_MODEL_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace dwqa {
namespace ontology {

/// \brief Class stereotypes of the UML profile for multidimensional
/// modeling of Luján-Mora, Trujillo & Song (paper ref. [10]): a Fact class,
/// a Dimension class, and Base classes forming each dimension's hierarchy
/// levels.
enum class ClassStereotype { kFact, kDimension, kBase };

/// \brief Attribute stereotypes of the same profile.
enum class AttrStereotype {
  kOID,                 ///< surrogate identifier
  kFactAttribute,       ///< a measure on a Fact class
  kDimensionAttribute,  ///< a level attribute
  kDescriptor,          ///< the default display attribute of a level
};

const char* ClassStereotypeName(ClassStereotype s);
const char* AttrStereotypeName(AttrStereotype s);

struct UmlAttribute {
  std::string name;
  std::string type;  ///< "int", "double", "string", "date".
  AttrStereotype stereotype = AttrStereotype::kDimensionAttribute;
};

struct UmlClass {
  std::string name;
  ClassStereotype stereotype = ClassStereotype::kBase;
  std::vector<UmlAttribute> attributes;
};

/// \brief Association kinds between model classes.
enum class AssocKind {
  kAssociation,     ///< plain UML association (fact → dimension)
  kAggregation,     ///< shared aggregation
  kRollsUpTo,       ///< hierarchy edge: level → coarser level
  kGeneralization,  ///< is-a
};

struct UmlAssociation {
  std::string from;
  std::string to;
  AssocKind kind = AssocKind::kAssociation;
  /// Role name, e.g. "origin" / "destination" for the two Airport
  /// associations of the Last Minute Sales fact.
  std::string role;
};

/// \brief A UML multidimensional model (the artifact of the paper's
/// Figure 1), input of the Step-1 ontology derivation.
class UmlModel {
 public:
  UmlModel() = default;

  Status AddClass(UmlClass klass);
  Status AddAssociation(UmlAssociation assoc);

  Result<const UmlClass*> FindClass(std::string_view name) const;

  const std::vector<UmlClass>& classes() const { return classes_; }
  const std::vector<UmlAssociation>& associations() const { return assocs_; }

  /// Structural validation: association endpoints exist; every Fact links to
  /// at least one Dimension; kRollsUpTo edges connect Base classes and form
  /// no cycle.
  Status Validate() const;

  /// All classes with the given stereotype.
  std::vector<const UmlClass*> ClassesWithStereotype(ClassStereotype s) const;

  /// The chain of Base classes starting at `base_name` following kRollsUpTo
  /// edges (finest level first).
  std::vector<std::string> HierarchyFrom(std::string_view base_name) const;

 private:
  std::vector<UmlClass> classes_;
  std::vector<UmlAssociation> assocs_;
};

}  // namespace ontology
}  // namespace dwqa

#endif  // DWQA_ONTOLOGY_UML_MODEL_H_
