#include "ontology/similarity.h"

#include <unordered_map>

namespace dwqa {
namespace ontology {

Result<ConceptId> Similarity::LeastCommonSubsumer(const Ontology& onto,
                                                  ConceptId a, ConceptId b) {
  if (!onto.IsValidId(a) || !onto.IsValidId(b)) {
    return Status::InvalidArgument("concept id out of range");
  }
  std::vector<ConceptId> path_a = onto.HypernymPath(a);
  std::vector<ConceptId> path_b = onto.HypernymPath(b);
  // Position of each ancestor of a (depth from a).
  std::unordered_map<ConceptId, size_t> pos_a;
  for (size_t i = 0; i < path_a.size(); ++i) pos_a[path_a[i]] = i;
  // The first ancestor of b that is also an ancestor of a is the deepest
  // shared one reachable on the primary paths.
  for (ConceptId anc : path_b) {
    if (pos_a.count(anc)) return anc;
  }
  return Status::NotFound("concepts share no ancestor");
}

double Similarity::WuPalmer(const Ontology& onto, ConceptId a, ConceptId b) {
  auto lcs = LeastCommonSubsumer(onto, a, b);
  if (!lcs.ok()) return 0.0;
  auto depth_of = [&](ConceptId id) {
    return static_cast<double>(onto.HypernymPath(id).size());
  };
  double depth_lcs = depth_of(*lcs);
  double denom = depth_of(a) + depth_of(b);
  if (denom == 0.0) return 0.0;
  return 2.0 * depth_lcs / denom;
}

double Similarity::PathSimilarity(const Ontology& onto, ConceptId a,
                                  ConceptId b) {
  auto lcs = LeastCommonSubsumer(onto, a, b);
  if (!lcs.ok()) return 0.0;
  std::vector<ConceptId> path_a = onto.HypernymPath(a);
  std::vector<ConceptId> path_b = onto.HypernymPath(b);
  size_t up_a = 0, up_b = 0;
  for (size_t i = 0; i < path_a.size(); ++i) {
    if (path_a[i] == *lcs) {
      up_a = i;
      break;
    }
  }
  for (size_t i = 0; i < path_b.size(); ++i) {
    if (path_b[i] == *lcs) {
      up_b = i;
      break;
    }
  }
  return 1.0 / (1.0 + static_cast<double>(up_a + up_b));
}

}  // namespace ontology
}  // namespace dwqa
