#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <future>
#include <istream>
#include <ostream>
#include <sstream>
#include <utility>

#include "common/metric_names.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "dw/cost_estimator.h"
#include "integration/bi_analysis.h"
#include "qa/degradation.h"

namespace dwqa {
namespace serve {

namespace {

/// The deterministic answer block of one AnswerSet — what the response
/// carries and the cache stores. Only the best candidate is serialized:
/// the serving layer answers questions, the feed endpoint is how a client
/// gets the full candidate list into the warehouse.
std::vector<std::pair<std::string, std::string>> AnswerFields(
    const qa::AnswerSet& set) {
  std::vector<std::pair<std::string, std::string>> fields;
  fields.emplace_back("degradation",
                      qa::DegradationLevelName(set.degradation));
  if (set.empty()) {
    fields.emplace_back("answered", "0");
    if (!set.unanswered_reason.empty()) {
      fields.emplace_back("unanswered_reason", set.unanswered_reason);
    }
    return fields;
  }
  const qa::AnswerCandidate& best = set.best();
  fields.emplace_back("answered", "1");
  fields.emplace_back("answer", best.answer_text);
  fields.emplace_back("score", FormatDouble(best.score, 4));
  if (best.has_value) {
    fields.emplace_back("value", FormatDouble(best.value, 2));
    if (!best.unit.empty()) fields.emplace_back("unit", best.unit);
  }
  if (!best.location.empty()) fields.emplace_back("location", best.location);
  if (best.date.has_value()) {
    fields.emplace_back("date", best.date->ToIsoString());
  }
  if (!best.url.empty()) fields.emplace_back("url", best.url);
  return fields;
}

/// Every shed-reason label the serving layer emits, for the health report.
constexpr const char* kShedReasons[] = {
    "queue_full",    "cost_budget",       "tenant_concurrency",
    "rate_limited",  "draining",          "circuit_open",
    "deadline_exceeded", "unknown_tenant", "bad_request",
};

}  // namespace

QaServer::QaServer(ServerConfig config)
    : config_(config), admission_(config.admission) {
  admission_.set_metrics(&metrics_);
  metrics_
      .GetGauge(kMetricServeDraining, {},
                "1 while the server is draining or drained, 0 while accepting")
      ->Set(0.0);
}

Status QaServer::AddTenant(const ServeTenantConfig& tenant) {
  DWQA_RETURN_NOT_OK(config_.admission.Validate());
  if (tenant.name.empty()) {
    return Status::InvalidArgument("tenant name must not be empty");
  }
  if (tenants_.count(tenant.name) > 0) {
    return Status::AlreadyExists("tenant '" + tenant.name +
                                 "' already registered");
  }
  if (tenant.warehouse == nullptr || tenant.uml == nullptr ||
      tenant.docs == nullptr) {
    return Status::InvalidArgument(
        "tenant '" + tenant.name +
        "' needs a warehouse, a UML model and a document corpus");
  }
  if (tenant.ingest_docs != nullptr && tenant.ingest_docs != tenant.docs) {
    return Status::InvalidArgument(
        "tenant '" + tenant.name +
        "': ingest_docs must alias docs — ingest appends to the same store "
        "the indexes were built from");
  }
  DWQA_RETURN_NOT_OK(tenant.cache.Validate());
  DWQA_RETURN_NOT_OK(tenant.retry.Validate());
  DWQA_RETURN_NOT_OK(tenant.breaker.Validate());
  auto state = std::make_unique<Tenant>(tenant.cache, tenant.breaker,
                                        tenant.fault);
  state->config = tenant;
  state->pipeline = std::make_unique<integration::IntegrationPipeline>(
      tenant.warehouse, tenant.uml, tenant.pipeline);
  DWQA_RETURN_NOT_OK(state->pipeline->RunAll(tenant.docs));
  if (tenant.federation != nullptr) {
    state->pipeline->AttachFederation(tenant.federation);
  }
  state->cache.set_metrics(&metrics_, tenant.name);
  // The serve-side ask breaker reports into the tenant's own registry, so
  // its `dwqa_breaker_*{breaker="serve.ask"}` series sit next to the
  // pipeline breakers it complements.
  state->breaker.set_metrics(state->pipeline->metrics(), "serve.ask");
  tenants_.emplace(tenant.name, std::move(state));
  return Status::OK();
}

QaServer::Tenant* QaServer::FindTenant(const std::string& name) {
  auto it = tenants_.find(name);
  return it == tenants_.end() ? nullptr : it->second.get();
}

integration::IntegrationPipeline* QaServer::tenant_pipeline(
    const std::string& name) {
  Tenant* tenant = FindTenant(name);
  return tenant == nullptr ? nullptr : tenant->pipeline.get();
}

AnswerCache* QaServer::tenant_cache(const std::string& name) {
  Tenant* tenant = FindTenant(name);
  return tenant == nullptr ? nullptr : &tenant->cache;
}

size_t QaServer::inflight() const {
  std::lock_guard<std::mutex> lock(drain_mu_);
  return inflight_;
}

double QaServer::CostOf(Tenant* tenant, const Request& request) {
  switch (request.endpoint) {
    case Endpoint::kFeed:
      return std::max<double>(1.0, config_.feed_cost_per_question *
                                       static_cast<double>(
                                           request.questions.size()));
    case Endpoint::kBi: {
      if (config_.bi_rows_per_cost_unit <= 0.0 || tenant == nullptr) {
        return std::max(1.0, config_.bi_cost);
      }
      // Rows-touched estimate from table/view cardinalities — a dashboard
      // a materialized view covers admits at its group count (cheap and
      // flat as facts stream in); a recompute admits at the full fact
      // scan, so it is the first thing the cost budget sheds.
      dw::CostEstimator estimator({config_.bi_rows_per_cost_unit, 1.0});
      std::lock_guard<std::mutex> lock(tenant->state_mu);
      auto estimate = integration::BiAnalysis::EstimateCost(
          tenant->pipeline->warehouse(), estimator);
      if (!estimate.ok()) return std::max(1.0, config_.bi_cost);
      // bi_cost stays the floor: a small warehouse admits at the flat
      // weight it always did; only genuinely expensive scans weigh more.
      return std::max(config_.bi_cost, estimate->cost_units);
    }
    case Endpoint::kIngest:
      return std::max(1.0, config_.ingest_cost);
    default:
      return 1.0;
  }
}

Response QaServer::MakeBase(const Request& request) const {
  Response response;
  response.id = request.id;
  response.endpoint = EndpointName(request.endpoint);
  response.status = "ok";
  response.code = "OK";
  return response;
}

Response QaServer::MakeReject(const Request& request, RejectKind kind,
                              const std::string& reason,
                              const std::string& detail) {
  metrics_
      .GetCounter(kMetricServeRejections, {{"reason", reason}},
                  "Admissions the server refused, by reason")
      ->Increment();
  Response response = MakeBase(request);
  response.status = "rejected";
  response.code = RejectKindName(kind);
  response.reason = reason;
  response.payload = detail;
  return response;
}

Response QaServer::MakeError(const Request& request,
                             const Status& status) const {
  Response response = MakeBase(request);
  response.status = "error";
  response.code = StatusCodeToString(status.code());
  response.payload = status.message();
  return response;
}

Response QaServer::MakeCached(const Request& request,
                              const CacheLookup& lookup, Tenant* tenant) {
  Response response = MakeBase(request);
  response.cached = true;
  response.stale = lookup.stale;
  response.answer = lookup.entry.answer;
  if (lookup.stale) {
    metrics_
        .GetCounter(kMetricServeStaleServed, {{"tenant", tenant->config.name}},
                    "Stale cached answers served because the live path had "
                    "already degraded past them")
        ->Increment();
  }
  return response;
}

void QaServer::CountOutcome(const Request& request,
                            const Response& response) {
  metrics_
      .GetCounter(kMetricServeRequests,
                  {{"endpoint", EndpointName(request.endpoint)},
                   {"outcome", response.status}},
                  "Requests the server saw, by endpoint and terminal outcome")
      ->Increment();
}

void QaServer::BeginRequest() {
  std::lock_guard<std::mutex> lock(drain_mu_);
  ++inflight_;
}

void QaServer::FinishRequest(const std::string& tenant, double cost) {
  admission_.Release(tenant, cost);
  {
    std::lock_guard<std::mutex> lock(drain_mu_);
    --inflight_;
  }
  drain_cv_.notify_all();
}

Response QaServer::Handle(const Request& request) {
  // One tick per request seen — the logical clock of cache TTLs and token
  // buckets (rejected requests advance it too: overload is traffic).
  uint64_t tick = tick_.fetch_add(1) + 1;
  Response response;
  if (request.endpoint == Endpoint::kHealth) {
    response = HandleHealth(request);
  } else if (request.endpoint == Endpoint::kMetrics) {
    response = HandleMetrics(request);
  } else if (draining()) {
    response = MakeReject(
        request, RejectKind::kDraining, "draining",
        "server is draining; finish in-flight work is guaranteed, new "
        "requests are not accepted");
  } else {
    Tenant* tenant = FindTenant(request.tenant);
    if (tenant == nullptr) {
      response = MakeReject(request, RejectKind::kUnknownTenant,
                            "unknown_tenant",
                            "no tenant '" + request.tenant + "' registered");
    } else if (request.endpoint == Endpoint::kAsk &&
               request.questions.size() != 1) {
      response = MakeReject(request, RejectKind::kBadRequest, "bad_request",
                            "ask takes exactly one question");
    } else if (request.endpoint == Endpoint::kFeed &&
               request.questions.empty()) {
      response = MakeReject(request, RejectKind::kBadRequest, "bad_request",
                            "feed needs at least one question");
    } else if (request.endpoint == Endpoint::kIngest &&
               request.doc_content.empty()) {
      response = MakeReject(request, RejectKind::kBadRequest, "bad_request",
                            "ingest needs document content in the payload "
                            "section (after the blank line)");
    } else {
      double cost = CostOf(tenant, request);
      AdmissionDecision admitted =
          admission_.Admit(request.tenant, cost, tick);
      if (!admitted.status.ok()) {
        // The controller already counted the shed under its reason; compose
        // the typed kOverloaded response without double counting.
        response = MakeBase(request);
        response.status = "rejected";
        response.code = RejectKindName(RejectKind::kOverloaded);
        response.reason = admitted.reason;
        response.payload = admitted.status.message();
      } else {
        BeginRequest();
        response = Execute(tenant, request, tick);
        FinishRequest(request.tenant, cost);
      }
    }
  }
  CountOutcome(request, response);
  return response;
}

Response QaServer::Execute(Tenant* tenant, const Request& request,
                           uint64_t tick) {
  Histogram* latency = metrics_.GetHistogram(
      kMetricServeRequestLatency,
      {{"endpoint", EndpointName(request.endpoint)}}, {},
      "Wall-clock latency of executed requests");
  ScopedLatencyTimer timer(latency);
  switch (request.endpoint) {
    case Endpoint::kAsk:
      return ExecuteAsk(tenant, request, tick);
    case Endpoint::kFeed:
      return ExecuteFeed(tenant, request);
    case Endpoint::kBi:
      return ExecuteBi(tenant, request);
    case Endpoint::kIngest:
      return ExecuteIngest(tenant, request);
    default:
      return MakeError(request,
                       Status::InvalidArgument(
                           "health/metrics bypass Execute by construction"));
  }
}

Response QaServer::ExecuteAsk(Tenant* tenant, const Request& request,
                              uint64_t tick) {
  const std::string& question = request.questions.front();
  const std::string key = NormalizeQuestion(question);

  CacheLookup lookup;
  if (!request.no_cache) lookup = tenant->cache.Get(key, tick);
  if (lookup.found && !lookup.stale) {
    return MakeCached(request, lookup, tenant);
  }

  // Breaker admission before any live work. A half-open probe gets exactly
  // one attempt (mirroring the feed path): hammering a recovering backend
  // with a full retry schedule is how half-open storms start.
  bool allowed = false;
  bool half_open_probe = false;
  {
    std::lock_guard<std::mutex> lock(tenant->breaker_mu);
    allowed = tenant->breaker.Allow();
    half_open_probe =
        allowed && tenant->breaker.state() == BreakerState::kHalfOpen;
  }
  if (!allowed) {
    // Fast-fail — but a cached answer, even a stale one, beats a refusal.
    if (lookup.found) return MakeCached(request, lookup, tenant);
    return MakeReject(request, RejectKind::kCircuitOpen, "circuit_open",
                      "tenant '" + request.tenant +
                          "' ask breaker is open (cool-down in progress)");
  }

  // The per-request deadline: the client's budget (or the tenant default)
  // threaded into the QA engine's ledger, so a slow request sheds via the
  // degradation ladder instead of stalling a worker.
  double budget = request.budget > 0.0 ? request.budget
                                       : tenant->config.default_ask_budget;
  DeadlineConfig deadline_config;
  if (budget > 0.0) deadline_config.budget = budget;
  Deadline deadline(deadline_config);

  RetryPolicy policy = tenant->config.retry;
  if (half_open_probe) policy.max_attempts = 1;

  RetryStats stats;
  // Shared corpus lock: concurrent asks proceed together, an in-flight
  // ingest's index append is never observed half-done.
  std::shared_lock<std::shared_mutex> corpus_lock(tenant->corpus_mu);
  Result<qa::AnswerSet> asked = RetryResultCall<qa::AnswerSet>(
      policy,
      [&]() -> Result<qa::AnswerSet> {
        {
          std::lock_guard<std::mutex> lock(tenant->chaos_mu);
          DWQA_RETURN_NOT_OK(tenant->fault.Hit(kFaultPointFetch));
        }
        return tenant->pipeline->aliqan()->AskWith(question, nullptr,
                                                   &deadline);
      },
      &stats, &deadline, kFaultPointFetch);
  corpus_lock.unlock();
  MirrorRetryStats(tenant->pipeline->metrics(), "serve.ask", stats,
                   !asked.ok());

  // Breaker outcome. Deadline exhaustion with no transient failure seen is
  // a client-sized budget, not backend sickness — recording it as a failure
  // would let one impatient client trip the breaker for everyone.
  bool backend_healthy =
      asked.ok() ||
      (asked.status().IsDeadlineExceeded() && stats.transient_failures == 0);
  {
    std::lock_guard<std::mutex> lock(tenant->breaker_mu);
    if (backend_healthy) {
      tenant->breaker.RecordSuccess();
    } else {
      tenant->breaker.RecordFailure();
    }
  }

  if (!asked.ok()) {
    // Stale-while-degraded: an expired answer beats both a deadline trip
    // and a transient-exhausted failure.
    if (lookup.found) return MakeCached(request, lookup, tenant);
    if (asked.status().IsDeadlineExceeded()) {
      return MakeReject(request, RejectKind::kDeadlineExceeded,
                        "deadline_exceeded", asked.status().message());
    }
    return MakeError(request, asked.status());
  }

  const qa::AnswerSet& set = *asked;
  Response response = MakeBase(request);
  response.answer = AnswerFields(set);
  if (!set.empty() &&
      set.degradation <= qa::DegradationLevel::kRelaxedPattern) {
    // Only the top two ladder rungs are worth caching: an IR-only pointer
    // or an unanswered set would poison later requests that could do
    // better.
    if (!request.no_cache) {
      CachedAnswer entry;
      entry.answer = response.answer;
      entry.level = set.degradation;
      tenant->cache.Put(key, std::move(entry), tick);
    }
  } else if (lookup.found && lookup.entry.level < set.degradation) {
    // The live ladder dropped below the cached rung — stale-while-degraded
    // serves the better (if older) answer.
    return MakeCached(request, lookup, tenant);
  }
  return response;
}

Response QaServer::ExecuteFeed(Tenant* tenant, const Request& request) {
  std::lock_guard<std::mutex> lock(tenant->state_mu);
  // Feed reads the QA indexes (Step-5 asks questions): shared corpus lock,
  // acquired after state_mu per the documented order.
  std::shared_lock<std::shared_mutex> corpus_lock(tenant->corpus_mu);
  Result<integration::FeedReport> fed = tenant->pipeline->RunStep5(
      request.questions, request.fact_name, request.attribute);
  if (!fed.ok()) return MakeError(request, fed.status());
  const integration::FeedReport& report = *fed;
  Response response = MakeBase(request);
  auto& fields = response.answer;
  fields.emplace_back("questions_asked",
                      std::to_string(report.questions_asked));
  fields.emplace_back("questions_answered",
                      std::to_string(report.questions_answered));
  fields.emplace_back("questions_failed",
                      std::to_string(report.questions_failed));
  fields.emplace_back("facts_extracted",
                      std::to_string(report.facts_extracted));
  fields.emplace_back("rows_loaded", std::to_string(report.rows_loaded));
  fields.emplace_back("rows_deduplicated",
                      std::to_string(report.rows_deduplicated));
  fields.emplace_back("rows_quarantined",
                      std::to_string(report.rows_quarantined));
  fields.emplace_back("retries", std::to_string(report.retries));
  fields.emplace_back("breaker_rejections",
                      std::to_string(report.breaker_rejections));
  fields.emplace_back("deadline_exhausted",
                      report.deadline_exhausted ? "1" : "0");
  for (const auto& [level, count] : report.questions_by_degradation) {
    fields.emplace_back(
        std::string("level_") + qa::DegradationLevelName(level),
        std::to_string(count));
  }
  return response;
}

Response QaServer::ExecuteBi(Tenant* tenant, const Request& request) {
  std::lock_guard<std::mutex> lock(tenant->state_mu);
  if (request.scope == "federated") return ExecuteBiFederated(tenant, request);
  const dw::Warehouse& wh = tenant->pipeline->warehouse();
  // Degradation ladder: estimate first. A request whose estimated cost
  // clears max_bi_cost drops one rung to view-only answering (precomputed
  // aggregates, never a base-fact scan); when the tenant's views cannot
  // cover the analysis either, it is shed with a typed rejection —
  // expensive queries go first, cheap view reads keep flowing.
  integration::BiMode mode = integration::BiMode::kViewFirst;
  dw::CostEstimate estimate;
  if (config_.bi_rows_per_cost_unit > 0.0) {
    dw::CostEstimator estimator({config_.bi_rows_per_cost_unit, 1.0});
    auto estimated = integration::BiAnalysis::EstimateCost(wh, estimator);
    if (estimated.ok()) {
      estimate = *estimated;
      if (config_.max_bi_cost > 0.0 &&
          estimate.cost_units > config_.max_bi_cost && !estimate.from_view) {
        mode = integration::BiMode::kViewOnly;
      }
    }
  }
  Result<integration::BiReport> analyzed =
      integration::BiAnalysis::SalesVsTemperature(
          wh, "LastMinuteSales", "Weather", 5.0, mode);
  if (!analyzed.ok()) {
    if (mode == integration::BiMode::kViewOnly &&
        analyzed.status().IsUnavailable()) {
      return MakeReject(
          request, RejectKind::kOverloaded, "bi_cost",
          "estimated cost " + FormatDouble(estimate.cost_units, 1) +
              " exceeds max_bi_cost " +
              FormatDouble(config_.max_bi_cost, 1) +
              " and no materialized view covers the analysis");
    }
    return MakeError(request, analyzed.status());
  }
  const integration::BiReport& report = *analyzed;
  Response response = MakeBase(request);
  auto& fields = response.answer;
  fields.emplace_back("bi_mode", integration::BiModeName(mode));
  fields.emplace_back("cost_estimate",
                      FormatDouble(estimate.cost_units, 1));
  fields.emplace_back("estimated_rows",
                      std::to_string(estimate.estimated_rows));
  fields.emplace_back("sales_from_view",
                      report.sales_from_view ? "1" : "0");
  fields.emplace_back("weather_from_view",
                      report.weather_from_view ? "1" : "0");
  fields.emplace_back("joined_days", std::to_string(report.joined_days));
  fields.emplace_back("correlation",
                      FormatDouble(report.pearson_temperature_tickets, 4));
  fields.emplace_back("best_low_c", FormatDouble(report.best.low_c, 1));
  fields.emplace_back("best_high_c", FormatDouble(report.best.high_c, 1));
  fields.emplace_back("best_avg_tickets",
                      FormatDouble(report.best.avg_tickets, 2));
  fields.emplace_back("best_observations",
                      std::to_string(report.best.observations));
  std::ostringstream ranges;
  for (const auto& range : report.ranges) {
    ranges << "[" << FormatDouble(range.low_c, 1) << ", "
           << FormatDouble(range.high_c, 1)
           << ") avg_tickets=" << FormatDouble(range.avg_tickets, 2)
           << " observations=" << range.observations << "\n";
  }
  response.payload = ranges.str();
  return response;
}

Response QaServer::ExecuteBiFederated(Tenant* tenant,
                                      const Request& request) {
  // Caller holds state_mu: federated analyses serialize with local bi/feed
  // requests of this tenant, which is also what makes the engine's trace
  // recorder (if the embedder set one) safe here.
  dw::fed::FederatedEngine* federation = tenant->pipeline->federation();
  if (federation == nullptr) {
    return MakeReject(request, RejectKind::kBadRequest, "bad_request",
                      "tenant '" + request.tenant +
                          "' has no federation attached; scope=federated "
                          "is unavailable");
  }
  Result<integration::FederatedBiReport> analyzed =
      integration::BiAnalysis::SalesVsTemperatureFederated(*federation);
  if (!analyzed.ok()) return MakeError(request, analyzed.status());
  const integration::FederatedBiReport& fed = *analyzed;
  Response response = MakeBase(request);
  auto& fields = response.answer;
  fields.emplace_back("bi_mode", "federated");
  fields.emplace_back("coverage", fed.full() ? "full" : "partial");
  fields.emplace_back(
      "fed_members",
      std::to_string(fed.sales_coverage.warehouses_total));
  fields.emplace_back("sales_coverage",
                      dw::fed::CoverageName(fed.sales_coverage));
  fields.emplace_back("weather_coverage",
                      dw::fed::CoverageName(fed.weather_coverage));
  // One typed line per member gap, so a partial answer always says whose
  // share is missing and why.
  for (const dw::fed::CoverageGap& gap : fed.sales_coverage.missing) {
    fields.emplace_back("fed_missing",
                        "sales/" + gap.warehouse + ": " + gap.reason);
  }
  for (const dw::fed::CoverageGap& gap : fed.weather_coverage.missing) {
    fields.emplace_back("fed_missing",
                        "weather/" + gap.warehouse + ": " + gap.reason);
  }
  const integration::BiReport& report = fed.report;
  fields.emplace_back("joined_days", std::to_string(report.joined_days));
  fields.emplace_back("correlation",
                      FormatDouble(report.pearson_temperature_tickets, 4));
  fields.emplace_back("best_low_c", FormatDouble(report.best.low_c, 1));
  fields.emplace_back("best_high_c", FormatDouble(report.best.high_c, 1));
  fields.emplace_back("best_avg_tickets",
                      FormatDouble(report.best.avg_tickets, 2));
  fields.emplace_back("best_observations",
                      std::to_string(report.best.observations));
  std::ostringstream ranges;
  for (const auto& range : report.ranges) {
    ranges << "[" << FormatDouble(range.low_c, 1) << ", "
           << FormatDouble(range.high_c, 1)
           << ") avg_tickets=" << FormatDouble(range.avg_tickets, 2)
           << " observations=" << range.observations << "\n";
  }
  response.payload = ranges.str();
  return response;
}

Response QaServer::ExecuteIngest(Tenant* tenant, const Request& request) {
  ir::DocumentStore* store = tenant->config.ingest_docs;
  if (store == nullptr) {
    return MakeReject(request, RejectKind::kBadRequest, "bad_request",
                      "tenant '" + request.tenant +
                          "' was registered without a mutable document "
                          "store; ingest is disabled");
  }
  ir::DocFormat format = ir::DocFormat::kPlainText;
  if (request.doc_format == "html") format = ir::DocFormat::kHtml;
  if (request.doc_format == "xml") format = ir::DocFormat::kXml;
  // Exclusive corpus lock: the append and its indexation are atomic with
  // respect to asks/feeds — either the document is fully searchable or not
  // yet visible. Cached answers are not invalidated; they age out via TTL
  // (or a client asks with nocache=1 for a live-fresh view).
  std::unique_lock<std::shared_mutex> corpus_lock(tenant->corpus_mu);
  store->Add(request.doc_url, request.doc_title, format,
             request.doc_content);
  Result<size_t> ingested = tenant->pipeline->IngestNewDocuments();
  if (!ingested.ok()) return MakeError(request, ingested.status());
  Response response = MakeBase(request);
  response.answer.emplace_back("ingested", std::to_string(*ingested));
  response.answer.emplace_back("documents", std::to_string(store->size()));
  return response;
}

Response QaServer::HandleHealth(const Request& request) {
  Response response = MakeBase(request);
  auto& fields = response.answer;
  fields.emplace_back("draining", draining() ? "1" : "0");
  fields.emplace_back("tick", std::to_string(tick_.load()));
  fields.emplace_back("queue_depth", std::to_string(admission_.depth()));
  fields.emplace_back("queued_cost",
                      FormatDouble(admission_.queued_cost(), 0));
  fields.emplace_back("tenants", std::to_string(tenants_.size()));
  std::ostringstream body;
  for (auto& [name, tenant] : tenants_) {
    if (!request.tenant.empty() && request.tenant != name) continue;
    std::string ask_breaker;
    {
      std::lock_guard<std::mutex> lock(tenant->breaker_mu);
      ask_breaker = BreakerStateName(tenant->breaker.state());
    }
    integration::PipelineHealth health;
    {
      std::lock_guard<std::mutex> lock(tenant->state_mu);
      health = tenant->pipeline->Health();
    }
    body << "tenant " << name << ": ask_breaker=" << ask_breaker
         << " breakers_open=" << health.breakers_open
         << " inflight=" << admission_.tenant_inflight(name)
         << " cache_entries=" << tenant->cache.size()
         << " cache_bytes=" << tenant->cache.bytes();
    for (const char* result : {"hit", "stale", "miss"}) {
      body << " cache_" << result << "="
           << FormatDouble(
                  metrics_.Value(kMetricServeCacheLookups,
                                 {{"tenant", name}, {"result", result}}),
                  0);
    }
    body << " cache_evictions="
         << FormatDouble(metrics_.Value(kMetricServeCacheEvictions,
                                        {{"tenant", name}}),
                         0)
         << " stale_served="
         << FormatDouble(
                metrics_.Value(kMetricServeStaleServed, {{"tenant", name}}),
                0)
         << "\n";
  }
  body << "shed";
  for (const char* reason : kShedReasons) {
    body << " " << reason << "="
         << FormatDouble(
                metrics_.Value(kMetricServeRejections, {{"reason", reason}}),
                0);
  }
  body << "\n";
  response.payload = body.str();
  return response;
}

Response QaServer::HandleMetrics(const Request& request) {
  Response response = MakeBase(request);
  std::ostringstream body;
  body << metrics_.ExportPrometheus();
  for (auto& [name, tenant] : tenants_) {
    if (!request.tenant.empty() && request.tenant != name) continue;
    body << "# tenant: " << name << "\n"
         << tenant->pipeline->metrics()->ExportPrometheus();
  }
  response.payload = body.str();
  return response;
}

Status QaServer::Drain() {
  RequestDrain();
  metrics_
      .GetGauge(kMetricServeDraining, {},
                "1 while the server is draining or drained, 0 while accepting")
      ->Set(1.0);
  {
    std::unique_lock<std::mutex> lock(drain_mu_);
    drain_cv_.wait(lock, [this] { return inflight_ == 0; });
    if (checkpoints_flushed_) return Status::OK();
    checkpoints_flushed_ = true;
  }
  Status first_failure = Status::OK();
  for (auto& [name, tenant] : tenants_) {
    std::lock_guard<std::mutex> lock(tenant->state_mu);
    // Durable data first: the checkpoint written below records the WAL
    // position the flush just made durable, never one past it.
    Status flushed = tenant->pipeline->FlushDurability();
    if (!flushed.ok() && first_failure.ok()) first_failure = flushed;
    const std::string& path =
        tenant->config.pipeline.resilience.checkpoint_path;
    if (path.empty()) continue;
    Status saved = tenant->pipeline->SaveFeedCheckpoint(path);
    if (!saved.ok() && first_failure.ok()) first_failure = saved;
  }
  return first_failure;
}

Status QaServer::ServeStream(std::istream& in, std::ostream& out) {
  Framing framing;
  framing.max_frame_bytes = config_.max_frame_bytes;
  ThreadPool pool(config_.workers);
  // Responses in submission order; with workers <= 1 every future is
  // already resolved when queued, so the stream is strictly serial.
  std::deque<std::future<Response>> pending;
  auto write = [&](const Response& response) -> Status {
    return framing.WriteFrame(out, response.Serialize());
  };
  auto flush = [&](bool block) -> Status {
    while (!pending.empty()) {
      if (!block && pending.front().wait_for(std::chrono::seconds(0)) !=
                        std::future_status::ready) {
        break;
      }
      Response response = pending.front().get();
      pending.pop_front();
      DWQA_RETURN_NOT_OK(write(response));
    }
    return Status::OK();
  };

  Status termination = Status::OK();
  while (!draining()) {
    Result<std::string> body = framing.ReadFrame(in);
    if (!body.ok()) {
      // Clean EOF ends the session; a framing error is unrecoverable (the
      // stream cannot be resynchronized) and is reported after the drain.
      if (!body.status().IsNotFound()) termination = body.status();
      break;
    }
    Result<Request> parsed = Request::Parse(*body);
    if (!parsed.ok()) {
      // The frame was well-formed, the request inside was not: answer it
      // in order with a typed BadRequest instead of killing the session.
      DWQA_RETURN_NOT_OK(flush(true));
      metrics_
          .GetCounter(kMetricServeRejections, {{"reason", "bad_request"}},
                      "Admissions the server refused, by reason")
          ->Increment();
      Response bad;
      bad.endpoint = "unknown";
      bad.status = "rejected";
      bad.code = RejectKindName(RejectKind::kBadRequest);
      bad.reason = "bad_request";
      bad.payload = parsed.status().message();
      metrics_
          .GetCounter(kMetricServeRequests,
                      {{"endpoint", "unknown"}, {"outcome", bad.status}},
                      "Requests the server saw, by endpoint and terminal "
                      "outcome")
          ->Increment();
      DWQA_RETURN_NOT_OK(write(bad));
      continue;
    }
    Request request = *parsed;
    pending.push_back(pool.Submit([this, request] { return Handle(request); }));
    // Bound the response buffer: admission bounds *execution*, but shed
    // responses resolve instantly and would otherwise pile up here.
    while (pending.size() > config_.workers * 4 + 4) {
      Response response = pending.front().get();
      pending.pop_front();
      DWQA_RETURN_NOT_OK(write(response));
    }
    DWQA_RETURN_NOT_OK(flush(false));
  }
  DWQA_RETURN_NOT_OK(flush(true));
  Status drained = Drain();
  if (!termination.ok()) return termination;
  return drained;
}

}  // namespace serve
}  // namespace dwqa
