#ifndef DWQA_SERVE_ANSWER_CACHE_H_
#define DWQA_SERVE_ANSWER_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "qa/degradation.h"

namespace dwqa {
namespace serve {

/// \brief Tuning of an AnswerCache.
///
/// Time is measured in server *ticks* (one tick per accepted request), not
/// wall clock — the repo's tests ban wall clocks, and tick-counted TTLs
/// make expiry exactly reproducible: "this entry survives the next 64
/// requests" is a deterministic statement, "it survives 30 seconds" is not.
struct AnswerCacheConfig {
  /// Ticks an entry stays fresh; after that it is served only as a stale
  /// fallback (stale-while-degraded) until the LRU cap evicts it.
  uint64_t ttl_ticks = 256;
  /// Memory cap over the estimated entry footprint; the least recently
  /// used entries are evicted until the cache fits.
  size_t max_bytes = 1 << 20;

  /// InvalidArgument on a zero TTL or byte cap (a cache that can hold
  /// nothing should be disabled at the server instead).
  Status Validate() const;
};

/// \brief One cached answer: the deterministic answer block of the
/// response (exactly what the cold path would serialize — byte-identical
/// hits), plus the ladder rung that produced it.
struct CachedAnswer {
  /// Ordered answer fields, as in serve::Response::answer.
  std::vector<std::pair<std::string, std::string>> answer;
  /// Rung of the cached answer; stale-while-degraded only serves entries
  /// whose rung beats the live result's.
  qa::DegradationLevel level = qa::DegradationLevel::kFull;
};

/// \brief Outcome of one cache lookup.
struct CacheLookup {
  bool found = false;  ///< An entry exists (fresh or stale).
  bool stale = false;  ///< It has outlived the TTL.
  CachedAnswer entry;  ///< The cached answer (valid when found).
};

/// \brief Bounded, TTL'd, LRU answer cache keyed by normalized question —
/// the "cached-fast" rung of the Snippet-1 sync/direct/hybrid ladder.
///
/// Thread-safe: lookups and insertions from concurrent server workers are
/// serialized on an internal mutex (entries are small; the critical
/// section is a map lookup plus a list splice). One cache per tenant, so a
/// tenant can neither read another tenant's answers nor evict them.
class AnswerCache {
 public:
  explicit AnswerCache(AnswerCacheConfig config = {});

  /// Looks up `key` at time `now_tick`. A found entry is moved to the
  /// front of the LRU order, fresh or stale — a stale entry being used as
  /// a degraded fallback is exactly the entry worth keeping around.
  CacheLookup Get(const std::string& key, uint64_t now_tick);

  /// Inserts (or replaces) the entry under `key`, then evicts from the LRU
  /// tail until the byte cap holds. An entry larger than the whole cap is
  /// dropped on the floor (with a lookup-miss worth of nothing — it cannot
  /// fit, and evicting everything else for it would empty the cache).
  void Put(const std::string& key, CachedAnswer answer, uint64_t now_tick);

  /// Entries currently held.
  size_t size() const;
  /// Estimated bytes currently held.
  size_t bytes() const;

  /// Attaches a metrics registry (may be null). Lookups, insertions and
  /// evictions are mirrored into the `dwqa_serve_cache_*` families labeled
  /// `{tenant}`.
  void set_metrics(MetricRegistry* metrics, const std::string& tenant);

 private:
  struct Entry {
    CachedAnswer answer;
    uint64_t inserted_tick = 0;
    size_t bytes = 0;
    /// Position in lru_ (front = most recently used).
    std::list<std::string>::iterator lru_pos;
  };

  /// Estimated footprint of one entry (key + fields + bookkeeping).
  static size_t EntryBytes(const std::string& key,
                           const CachedAnswer& answer);

  /// Evicts LRU-tail entries until bytes_ <= config_.max_bytes.
  /// Caller holds mu_.
  void EvictToFit();
  /// Mirrors a lookup result into the registry. Caller holds mu_.
  void CountLookup(const char* result);

  AnswerCacheConfig config_;
  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
  /// Keys in recency order, most recent first.
  std::list<std::string> lru_;
  size_t bytes_ = 0;
  MetricRegistry* metrics_ = nullptr;
  std::string tenant_;
};

}  // namespace serve
}  // namespace dwqa

#endif  // DWQA_SERVE_ANSWER_CACHE_H_
