#ifndef DWQA_SERVE_ADMISSION_H_
#define DWQA_SERVE_ADMISSION_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "common/metrics.h"
#include "common/status.h"

namespace dwqa {
namespace serve {

/// \brief Deterministic, tick-driven token bucket (per-tenant rate limit).
///
/// Refills `refill_per_tick` tokens per server tick up to `capacity`; each
/// admitted request takes one token. Like the circuit breaker's
/// attempt-counted cool-down, tick-counted refill keeps rate limiting
/// reproducible without a wall clock.
struct TokenBucketConfig {
  /// Burst size. <= 0 disables the bucket (every request has a token).
  double capacity = 0.0;
  /// Tokens regained per server tick.
  double refill_per_tick = 0.0;
};

/// \brief One tenant's token bucket. Not thread-safe on its own — the
/// AdmissionController serializes access under its mutex.
class TokenBucket {
 public:
  TokenBucket() = default;
  explicit TokenBucket(TokenBucketConfig config)
      : config_(config), tokens_(config.capacity) {}

  /// Refills up to `now_tick`, then takes one token if available.
  bool TryTake(uint64_t now_tick);

  /// Tokens currently available (after a refill to `now_tick`).
  double available(uint64_t now_tick);

  /// True when the bucket is a pass-through (capacity <= 0).
  bool disabled() const { return config_.capacity <= 0.0; }

 private:
  void Refill(uint64_t now_tick);

  TokenBucketConfig config_;
  double tokens_ = 0.0;
  uint64_t last_tick_ = 0;
};

/// \brief Tuning of the admission controller — the overload-protection
/// budgets, all enforced before a request touches a worker.
struct AdmissionConfig {
  /// Requests admitted and not yet finished, across all tenants. The
  /// bounded request queue of the serving loop: depth beyond this is shed
  /// with kOverloaded instead of queueing without limit.
  size_t max_queue_depth = 64;
  /// Estimated cost units admitted and not yet finished (an `ask` costs 1,
  /// a `feed` costs its question count — see ServerConfig). 0 = unlimited.
  double max_queued_cost = 0.0;
  /// In-flight requests per tenant. 0 = unlimited. Isolates tenants: one
  /// tenant flooding the server cannot occupy every worker.
  size_t per_tenant_concurrency = 0;
  /// Per-tenant rate limit (disabled when capacity <= 0).
  TokenBucketConfig rate;

  /// InvalidArgument on a zero queue depth or a negative cost budget.
  Status Validate() const;
};

/// \brief Outcome of one admission decision: OK, or kOverloaded with the
/// machine-readable shed reason ("queue_full", "cost_budget",
/// "tenant_concurrency", "rate_limited").
struct AdmissionDecision {
  Status status;
  std::string reason;
};

/// \brief Thread-safe admission controller: the bounded queue, the cost
/// budget, per-tenant concurrency and per-tenant token buckets, with shed
/// counters and depth gauges mirrored into the registry.
///
/// Usage: `Admit` before enqueueing (a rejected request was never
/// admitted); `Release` exactly once when an admitted request finishes,
/// however it ends.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionConfig config = {});

  /// Decides admission of one request of estimated `cost` by `tenant` at
  /// `now_tick`. On OK the depth/cost/tenant counters are already bumped.
  AdmissionDecision Admit(const std::string& tenant, double cost,
                          uint64_t now_tick);

  /// Returns an admitted request's capacity. Must mirror one successful
  /// Admit with the same tenant and cost.
  void Release(const std::string& tenant, double cost);

  /// Requests admitted and not yet released.
  size_t depth() const;
  /// Cost units admitted and not yet released.
  double queued_cost() const;
  /// In-flight requests of one tenant.
  size_t tenant_inflight(const std::string& tenant) const;

  const AdmissionConfig& config() const { return config_; }

  /// Attaches a metrics registry (may be null): depth/cost gauges, the
  /// per-tenant in-flight gauge and the `dwqa_serve_rejections_total`
  /// shed counters.
  void set_metrics(MetricRegistry* metrics);

 private:
  /// Counts a shed and returns the composed decision. Caller holds mu_.
  AdmissionDecision Shed(const std::string& reason,
                         const std::string& detail);
  /// Updates the depth/cost gauges. Caller holds mu_.
  void ExportGauges();

  AdmissionConfig config_;
  mutable std::mutex mu_;
  size_t depth_ = 0;
  double queued_cost_ = 0.0;
  std::map<std::string, size_t> tenant_inflight_;
  std::map<std::string, TokenBucket> buckets_;
  MetricRegistry* metrics_ = nullptr;
};

}  // namespace serve
}  // namespace dwqa

#endif  // DWQA_SERVE_ADMISSION_H_
