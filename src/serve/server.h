#ifndef DWQA_SERVE_SERVER_H_
#define DWQA_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>

#include "common/circuit_breaker.h"
#include "common/fault.h"
#include "common/metrics.h"
#include "common/retry.h"
#include "common/status.h"
#include "integration/pipeline.h"
#include "serve/admission.h"
#include "serve/answer_cache.h"
#include "serve/protocol.h"

namespace dwqa {
namespace serve {

/// \brief One tenant's registration: the state its pipeline serves from
/// (all caller-owned, must outlive the server) plus the tenant-scoped
/// resilience knobs of the serving layer.
struct ServeTenantConfig {
  /// Tenant name — the `tenant=` routing key of every request.
  std::string name;
  /// The tenant's warehouse (fed by `feed`, read by `bi`).
  dw::Warehouse* warehouse = nullptr;
  /// The tenant's multidimensional UML model (pipeline Steps 1–3).
  const ontology::UmlModel* uml = nullptr;
  /// The tenant's document corpus, indexed at registration time.
  const ir::DocumentStore* docs = nullptr;
  /// Mutable alias of `docs` enabling the `ingest` endpoint: ingest
  /// appends documents here and incrementally indexes them (a segmented
  /// append, never a rebuild). Null (the default) leaves the corpus
  /// immutable and ingest requests are rejected as BadRequest.
  ir::DocumentStore* ingest_docs = nullptr;
  /// The five-step pipeline configuration (per-tenant ontology/corpus
  /// state, resilience machinery, checkpoint path).
  integration::PipelineConfig pipeline;
  /// The tenant's answer cache (TTL, byte cap).
  AnswerCacheConfig cache;
  /// Serve-side fault injection on the ask path (chaos tests/benches):
  /// rules at `web.fetch` fire per live ask attempt, exactly like the
  /// Step-5 feed's fetch faults.
  FaultConfig fault;
  /// Retry schedule of a live ask against those transient faults.
  RetryPolicy retry;
  /// Ask-path circuit breaker: repeated whole-ask failures trip it, and
  /// tripped tenants fast-fail with kCircuitOpen (or a stale cached
  /// answer) instead of burning retry budget per request.
  BreakerConfig breaker;
  /// Default per-request deadline budget in cost units when the request
  /// does not carry `budget=` (0 = unlimited).
  double default_ask_budget = 0.0;
  /// Federated query engine whose local member is this tenant's warehouse
  /// (caller-owned, must outlive the server; null = tenant not federated).
  /// `bi` requests with `scope=federated` fan out through it; the engine's
  /// remotes, pool, policy and metrics are entirely the caller's wiring.
  dw::fed::FederatedEngine* federation = nullptr;
};

/// \brief Server-wide tuning.
struct ServerConfig {
  /// Worker threads executing admitted requests. 1 (the default) executes
  /// inline on the serving thread — the literal serial path, which is what
  /// deterministic protocol tests run.
  size_t workers = 1;
  /// Admission control: bounded queue, cost budget, per-tenant concurrency
  /// and rate limits.
  AdmissionConfig admission;
  /// Estimated admission cost of one `feed` question (an `ask` costs 1).
  double feed_cost_per_question = 1.0;
  /// Admission cost of one `bi` request when no estimate is available,
  /// and the floor under every estimate.
  double bi_cost = 4.0;
  /// Fact rows one admission cost unit buys when estimating a `bi`
  /// request's cost from the tenant's warehouse (view group cardinality
  /// when a materialized view covers the aggregates, full fact scan
  /// otherwise) — so recompute-path BI requests weigh more and the cost
  /// budget sheds them first under load. 0 disables estimation (flat
  /// bi_cost).
  double bi_rows_per_cost_unit = 1000.0;
  /// Estimated-cost ceiling of one `bi` request (0 = unlimited). Above
  /// it the request degrades one ladder rung to view-only answering, and
  /// is shed with a typed kOverloaded `bi_cost` rejection when the
  /// tenant's views cannot cover the analysis.
  double max_bi_cost = 0.0;
  /// Estimated admission cost of one `ingest` request (preprocess +
  /// linguistic analysis + two index appends for one document).
  double ingest_cost = 2.0;
  /// Upper bound on one request frame.
  size_t max_frame_bytes = 1 << 20;
};

/// \brief The QA-as-a-service front-end: a long-lived, multi-tenant
/// request/response server over the five-step pipeline.
///
/// Each tenant owns an IntegrationPipeline (its own MetricRegistry,
/// ontology, corpus, warehouse and resilience state — full isolation), an
/// answer cache, a serve-side circuit breaker and a fault injector. The
/// server owns the admission controller and a registry of server-level
/// series (`dwqa_serve_*`).
///
/// Request lifecycle: `health`/`metrics` are never admission-controlled
/// (the server must stay observable under overload). Everything else is
/// admitted against the bounded queue / cost budget / tenant concurrency /
/// token bucket and either executed or shed with a typed rejection
/// (`Overloaded`, `CircuitOpen`, `Draining`, `DeadlineExceeded`) — a
/// caller can always tell "back off" from "broken".
///
/// Thread-safety: `Handle` may be called from concurrent callers after all
/// tenants are registered (`AddTenant` itself is not concurrent with
/// serving). `ask` requests of one tenant run concurrently under a shared
/// corpus lock; `ingest` takes that lock exclusively while it appends to
/// the segmented indexes, so asks never observe a half-indexed document;
/// `feed` and `bi` serialize on a per-tenant mutex because they touch the
/// warehouse.
class QaServer {
 public:
  explicit QaServer(ServerConfig config = {});

  /// Registers a tenant: builds its pipeline (Steps 1–4) and indexes its
  /// corpus. Call before serving; not thread-safe against Handle.
  Status AddTenant(const ServeTenantConfig& tenant);

  /// Admits and executes one request, returning its response — the
  /// synchronous core that both ServeStream workers and tests drive.
  /// Thread-safe once tenants are registered.
  Response Handle(const Request& request);

  /// Serves framed requests from `in` until EOF, a framing error, or a
  /// requested drain; responses are framed to `out` (executed requests in
  /// submission order). Finishes every accepted request, then drains.
  Status ServeStream(std::istream& in, std::ostream& out);

  /// Asks the server to drain: only an atomic store, safe to call from a
  /// signal handler (the example binary wires SIGTERM here). New requests
  /// are rejected with the typed `Draining` code; in-flight requests run
  /// to completion.
  void RequestDrain() { drain_requested_.store(true); }

  /// Blocks until every in-flight request finished, then flushes each
  /// tenant's Step-5 checkpoint (when a checkpoint path is configured).
  /// Implies RequestDrain; idempotent.
  Status Drain();

  /// True once a drain was requested (late arrivals are being rejected).
  bool draining() const { return drain_requested_.load(); }

  /// \name Introspection for tests and benches
  /// @{
  /// The server-level registry (`dwqa_serve_*` series).
  MetricRegistry* metrics() { return &metrics_; }
  /// A tenant's pipeline (null for an unknown name).
  integration::IntegrationPipeline* tenant_pipeline(const std::string& name);
  /// A tenant's answer cache (null for an unknown name).
  AnswerCache* tenant_cache(const std::string& name);
  /// The logical clock: one tick per request seen.
  uint64_t now_tick() const { return tick_.load(); }
  /// Advances the logical clock (tests age cache entries this way).
  void AdvanceTicks(uint64_t ticks) { tick_.fetch_add(ticks); }
  /// Requests currently admitted and unfinished.
  size_t inflight() const;
  /// @}

 private:
  struct Tenant {
    ServeTenantConfig config;
    std::unique_ptr<integration::IntegrationPipeline> pipeline;
    AnswerCache cache;
    /// Serve-side ask breaker (the pipeline's own breakers keep guarding
    /// the feed path).
    CircuitBreaker breaker;
    FaultInjector fault;
    /// Serializes feed/bi/health access to the pipeline + warehouse.
    std::mutex state_mu;
    /// Guards the corpus + QA indexes: asks and feeds read under a shared
    /// lock, ingest appends under an exclusive one. Always acquired after
    /// state_mu when both are held.
    std::shared_mutex corpus_mu;
    /// Serializes breaker admissions/outcomes on the ask path.
    std::mutex breaker_mu;
    /// Serializes the fault injector's RNG stream on the ask path.
    std::mutex chaos_mu;

    Tenant(AnswerCacheConfig cache_config, BreakerConfig breaker_config,
           FaultConfig fault_config)
        : cache(cache_config), breaker(breaker_config),
          fault(std::move(fault_config)) {}
  };

  Tenant* FindTenant(const std::string& name);

  /// Executes an admitted request (no admission bookkeeping inside).
  Response Execute(Tenant* tenant, const Request& request, uint64_t tick);
  Response ExecuteAsk(Tenant* tenant, const Request& request,
                      uint64_t tick);
  Response ExecuteFeed(Tenant* tenant, const Request& request);
  Response ExecuteBi(Tenant* tenant, const Request& request);
  /// The scope=federated branch of `bi` (caller holds the tenant's
  /// state_mu): fans both aggregates across the tenant's federation and
  /// annotates the response with typed per-member coverage.
  Response ExecuteBiFederated(Tenant* tenant, const Request& request);
  Response ExecuteIngest(Tenant* tenant, const Request& request);
  Response HandleHealth(const Request& request);
  Response HandleMetrics(const Request& request);

  /// Estimated admission cost of `request`. For `bi`, consults the
  /// per-query cost estimator against the tenant's warehouse (briefly
  /// under its state lock); every other endpoint is a static weight.
  double CostOf(Tenant* tenant, const Request& request);

  /// \name Response builders
  /// @{
  Response MakeBase(const Request& request) const;
  Response MakeReject(const Request& request, RejectKind kind,
                      const std::string& reason, const std::string& detail);
  Response MakeError(const Request& request, const Status& status) const;
  /// A response carrying a cached answer block.
  Response MakeCached(const Request& request, const CacheLookup& lookup,
                      Tenant* tenant);
  /// @}

  /// Counts the request's terminal outcome into
  /// `dwqa_serve_requests_total{endpoint, outcome}`.
  void CountOutcome(const Request& request, const Response& response);

  /// In-flight accounting around Execute.
  void BeginRequest();
  void FinishRequest(const std::string& tenant, double cost);

  ServerConfig config_;
  /// Declared before every component holding a pointer to it.
  MetricRegistry metrics_;
  AdmissionController admission_;
  std::map<std::string, std::unique_ptr<Tenant>> tenants_;
  std::atomic<uint64_t> tick_{0};
  std::atomic<bool> drain_requested_{false};

  mutable std::mutex drain_mu_;
  std::condition_variable drain_cv_;
  size_t inflight_ = 0;
  bool checkpoints_flushed_ = false;
};

}  // namespace serve
}  // namespace dwqa

#endif  // DWQA_SERVE_SERVER_H_
