#include "serve/protocol.h"

#include <cctype>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/string_util.h"

namespace dwqa {
namespace serve {

namespace {

constexpr char kMagic[] = "DWQA1 ";

/// Splits `body` into `key=value` header lines and the post-blank-line
/// payload. Lines without '=' before the blank line are reported invalid.
struct SplitBody {
  std::vector<std::pair<std::string, std::string>> headers;
  std::string payload;
};

Result<SplitBody> Split(const std::string& body) {
  SplitBody split;
  size_t pos = 0;
  while (pos < body.size()) {
    size_t eol = body.find('\n', pos);
    std::string line = eol == std::string::npos
                           ? body.substr(pos)
                           : body.substr(pos, eol - pos);
    pos = eol == std::string::npos ? body.size() : eol + 1;
    if (line.empty()) {
      // Blank separator: the rest is the payload, verbatim.
      split.payload = body.substr(pos);
      break;
    }
    size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("protocol: header line without '=': '" +
                                     line + "'");
    }
    split.headers.emplace_back(line.substr(0, eq), line.substr(eq + 1));
  }
  return split;
}

Result<uint64_t> ParseU64(const std::string& value, const char* what) {
  if (value.empty()) {
    return Status::InvalidArgument(std::string("protocol: empty ") + what);
  }
  uint64_t out = 0;
  for (char c : value) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument(std::string("protocol: bad ") + what +
                                     " '" + value + "'");
    }
    out = out * 10 + uint64_t(c - '0');
  }
  return out;
}

}  // namespace

const char* EndpointName(Endpoint endpoint) {
  switch (endpoint) {
    case Endpoint::kAsk: return "ask";
    case Endpoint::kFeed: return "feed";
    case Endpoint::kBi: return "bi";
    case Endpoint::kIngest: return "ingest";
    case Endpoint::kHealth: return "health";
    case Endpoint::kMetrics: return "metrics";
  }
  return "unknown";
}

Result<Endpoint> ParseEndpoint(const std::string& name) {
  if (name == "ask") return Endpoint::kAsk;
  if (name == "feed") return Endpoint::kFeed;
  if (name == "bi") return Endpoint::kBi;
  if (name == "ingest") return Endpoint::kIngest;
  if (name == "health") return Endpoint::kHealth;
  if (name == "metrics") return Endpoint::kMetrics;
  return Status::InvalidArgument("protocol: unknown endpoint '" + name +
                                 "'");
}

const char* RejectKindName(RejectKind kind) {
  switch (kind) {
    case RejectKind::kOverloaded: return "Overloaded";
    case RejectKind::kDeadlineExceeded: return "DeadlineExceeded";
    case RejectKind::kCircuitOpen: return "CircuitOpen";
    case RejectKind::kDraining: return "Draining";
    case RejectKind::kUnknownTenant: return "UnknownTenant";
    case RejectKind::kBadRequest: return "BadRequest";
  }
  return "Unknown";
}

std::string Request::Serialize() const {
  std::ostringstream out;
  out << "endpoint=" << EndpointName(endpoint) << "\n";
  out << "id=" << id << "\n";
  if (!tenant.empty()) out << "tenant=" << tenant << "\n";
  if (budget > 0.0) out << "budget=" << budget << "\n";
  if (no_cache) out << "nocache=1\n";
  if (!scope.empty()) out << "scope=" << scope << "\n";
  if (fact_name != "Weather") out << "fact=" << fact_name << "\n";
  if (attribute != "temperature") out << "attribute=" << attribute << "\n";
  if (!doc_url.empty()) out << "url=" << doc_url << "\n";
  if (!doc_title.empty()) out << "title=" << doc_title << "\n";
  if (doc_format != "text") out << "format=" << doc_format << "\n";
  for (const auto& q : questions) out << "q=" << q << "\n";
  if (!doc_content.empty()) out << "\n" << doc_content;
  return out.str();
}

Result<Request> Request::Parse(const std::string& body) {
  DWQA_ASSIGN_OR_RETURN(SplitBody split, Split(body));
  Request req;
  bool saw_endpoint = false;
  for (const auto& [key, value] : split.headers) {
    if (key == "endpoint") {
      DWQA_ASSIGN_OR_RETURN(req.endpoint, ParseEndpoint(value));
      saw_endpoint = true;
    } else if (key == "id") {
      DWQA_ASSIGN_OR_RETURN(req.id, ParseU64(value, "id"));
    } else if (key == "tenant") {
      req.tenant = value;
    } else if (key == "budget") {
      if (!IsNumber(value)) {
        return Status::InvalidArgument("protocol: bad budget '" + value +
                                       "'");
      }
      req.budget = std::strtod(value.c_str(), nullptr);
      if (!(req.budget >= 0.0)) {
        return Status::InvalidArgument("protocol: negative budget '" +
                                       value + "'");
      }
    } else if (key == "nocache") {
      req.no_cache = value == "1" || value == "true";
    } else if (key == "scope") {
      if (value != "local" && value != "federated") {
        return Status::InvalidArgument("protocol: unknown scope '" + value +
                                       "'");
      }
      req.scope = value;
    } else if (key == "fact") {
      req.fact_name = value;
    } else if (key == "attribute") {
      req.attribute = value;
    } else if (key == "url") {
      req.doc_url = value;
    } else if (key == "title") {
      req.doc_title = value;
    } else if (key == "format") {
      if (value != "text" && value != "html" && value != "xml") {
        return Status::InvalidArgument("protocol: unknown format '" + value +
                                       "'");
      }
      req.doc_format = value;
    } else if (key == "q") {
      req.questions.push_back(value);
    }
    // Unknown keys are skipped: older servers must tolerate newer clients.
  }
  if (!saw_endpoint) {
    return Status::InvalidArgument("protocol: request without endpoint=");
  }
  req.doc_content = split.payload;
  return req;
}

std::string Response::Serialize() const {
  std::ostringstream out;
  out << "id=" << id << "\n";
  out << "endpoint=" << endpoint << "\n";
  out << "status=" << status << "\n";
  out << "code=" << code << "\n";
  if (!reason.empty()) out << "reason=" << reason << "\n";
  if (cached) out << "cached=1\n";
  if (stale) out << "stale=1\n";
  out << AnswerBlock();
  if (!payload.empty()) out << "\n" << payload;
  return out.str();
}

std::string Response::AnswerBlock() const {
  std::string out;
  for (const auto& [key, value] : answer) {
    out += key;
    out += '=';
    out += value;
    out += '\n';
  }
  return out;
}

std::string Response::AnswerField(const std::string& key) const {
  for (const auto& [k, v] : answer) {
    if (k == key) return v;
  }
  return "";
}

Result<Response> Response::Parse(const std::string& body) {
  DWQA_ASSIGN_OR_RETURN(SplitBody split, Split(body));
  Response resp;
  for (const auto& [key, value] : split.headers) {
    if (key == "id") {
      DWQA_ASSIGN_OR_RETURN(resp.id, ParseU64(value, "id"));
    } else if (key == "endpoint") {
      resp.endpoint = value;
    } else if (key == "status") {
      resp.status = value;
    } else if (key == "code") {
      resp.code = value;
    } else if (key == "reason") {
      resp.reason = value;
    } else if (key == "cached") {
      resp.cached = value == "1";
    } else if (key == "stale") {
      resp.stale = value == "1";
    } else {
      resp.answer.emplace_back(key, value);
    }
  }
  resp.payload = split.payload;
  return resp;
}

Status Framing::WriteFrame(std::ostream& out,
                           const std::string& body) const {
  out << kMagic << body.size() << "\n" << body;
  out.flush();
  if (!out) return Status::IOError("protocol: frame write failed");
  return Status::OK();
}

Result<std::string> Framing::ReadFrame(std::istream& in) const {
  std::string header;
  if (!std::getline(in, header)) {
    return Status::NotFound("protocol: end of stream");
  }
  if (!StartsWith(header, "DWQA1 ")) {
    return Status::InvalidArgument("protocol: bad frame magic '" + header +
                                   "'");
  }
  DWQA_ASSIGN_OR_RETURN(uint64_t length,
                        ParseU64(header.substr(6), "frame length"));
  if (length > max_frame_bytes) {
    return Status::InvalidArgument(
        "protocol: frame of " + std::to_string(length) +
        " bytes exceeds the " + std::to_string(max_frame_bytes) +
        "-byte limit");
  }
  std::string body(length, '\0');
  in.read(body.data(), static_cast<std::streamsize>(length));
  if (static_cast<uint64_t>(in.gcount()) != length) {
    return Status::IOError("protocol: stream truncated mid-frame (wanted " +
                           std::to_string(length) + " bytes, got " +
                           std::to_string(in.gcount()) + ")");
  }
  return body;
}

std::string NormalizeQuestion(const std::string& question) {
  std::string lower = ToLower(question);
  std::string out;
  out.reserve(lower.size());
  bool pending_space = false;
  for (char c : lower) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      pending_space = !out.empty();
      continue;
    }
    if (pending_space) {
      out += ' ';
      pending_space = false;
    }
    out += c;
  }
  while (!out.empty()) {
    char back = out.back();
    if (back == '?' || back == '.' || back == '!' || back == ' ') {
      out.pop_back();
    } else {
      break;
    }
  }
  return out;
}

}  // namespace serve
}  // namespace dwqa
