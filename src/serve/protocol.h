#ifndef DWQA_SERVE_PROTOCOL_H_
#define DWQA_SERVE_PROTOCOL_H_

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace dwqa {
namespace serve {

/// \file protocol.h
/// \brief Wire format of the QA-as-a-service front-end: a framed,
/// length-prefixed request/response protocol over any byte stream
/// (stdin/stdout, a local socket, a test stringstream).
///
/// Frame:      `DWQA1 <decimal byte count>\n<body>`
/// Body:       header lines `key=value\n`, then an optional blank line
///             followed by a free-text payload (metrics/health/BI tables).
///
/// The body is line-oriented on purpose: the repo has no JSON parser, and
/// a `key=value` header block keeps both sides greppable and diffable in
/// golden tests. Values must not contain newlines; multi-line content
/// travels in the payload section.

/// \brief The six endpoints of the serving layer.
enum class Endpoint {
  kAsk,      ///< One question against the tenant's QA engine.
  kFeed,     ///< A Step-5 feed batch (questions → facts → warehouse).
  kBi,       ///< The sales-vs-weather BI analysis over the tenant's DW.
  kIngest,   ///< Appends one document to the tenant's corpus and indexes
             ///< it incrementally (segmented-index append, no rebuild).
  kHealth,   ///< Server-level health (never admission-controlled).
  kMetrics,  ///< Prometheus export (never admission-controlled).
};

/// "ask", "feed", "bi", "ingest", "health", "metrics" — the wire names.
const char* EndpointName(Endpoint endpoint);

/// Parses a wire name; InvalidArgument on an unknown endpoint.
Result<Endpoint> ParseEndpoint(const std::string& name);

/// \brief Why a request was turned away without being executed. These are
/// the typed rejections the load bench asserts on: a client can always
/// distinguish "the server is protecting itself" (kOverloaded — back off),
/// "your budget ran out" (kDeadlineExceeded — maybe retry with more) and
/// "the backend is tripping" (kCircuitOpen — come back after the
/// cool-down) from a real failure.
enum class RejectKind {
  kOverloaded,        ///< Queue depth / cost budget / rate / concurrency.
  kDeadlineExceeded,  ///< The per-request deadline budget ran out.
  kCircuitOpen,       ///< Fast-fail: the tenant's breaker is not closed.
  kDraining,          ///< The server is shutting down gracefully.
  kUnknownTenant,     ///< No tenant registered under that name.
  kBadRequest,        ///< The frame parsed but the request is malformed.
};

/// "Overloaded", "DeadlineExceeded", "CircuitOpen", "Draining",
/// "UnknownTenant", "BadRequest" — stable names for the `code=` field.
const char* RejectKindName(RejectKind kind);

/// \brief One parsed client request.
struct Request {
  /// Client-chosen correlation id, echoed verbatim in the response.
  uint64_t id = 0;
  /// Tenant whose pipeline serves the request ("" is rejected except for
  /// health/metrics, which report across tenants).
  std::string tenant;
  Endpoint endpoint = Endpoint::kAsk;
  /// Questions: exactly one for `ask`, one or more for `feed`.
  std::vector<std::string> questions;
  /// Feed target fact table (default "Weather").
  std::string fact_name = "Weather";
  /// Feed/ask attribute (default "temperature").
  std::string attribute = "temperature";
  /// Per-request deadline budget in cost units; <= 0 means the server
  /// default. Threaded into the QA engine's Deadline ledger so a slow
  /// request sheds via the degradation ladder instead of stalling a worker.
  double budget = 0.0;
  /// When true the answer cache is bypassed (live-fresh, Snippet-1 "direct
  /// mode"); default is cached-fast.
  bool no_cache = false;
  /// Warehouse scope of a `bi` request (`scope=` header): "" or "local"
  /// answers from the tenant's own warehouse; "federated" fans the analysis
  /// out across the tenant's federation (rejected as BadRequest when the
  /// tenant has none). Any other value fails Parse.
  std::string scope;
  /// \name Ingest document (`ingest` endpoint only)
  /// @{
  /// Source URL (`url=` header; may be empty).
  std::string doc_url;
  /// Document title (`title=` header; may be empty).
  std::string doc_title;
  /// "text" | "html" | "xml" (`format=` header; default "text").
  std::string doc_format = "text";
  /// Raw document content. Travels in the payload section (after the blank
  /// line) because header values cannot contain newlines.
  std::string doc_content;
  /// @}

  /// Renders the `key=value` body (not the frame).
  std::string Serialize() const;
  /// Parses a request body. InvalidArgument on unknown endpoint, bad id,
  /// or a bad budget; unknown keys are ignored (forward compatibility).
  static Result<Request> Parse(const std::string& body);
};

/// \brief One server response.
///
/// `answer` carries the deterministic answer fields (degradation level,
/// text, value, unit, location, date, url, score) as ordered pairs — the
/// cache stores exactly this block, which is what makes "cache hit is
/// byte-identical to the cold path" testable.
struct Response {
  uint64_t id = 0;
  std::string endpoint;
  /// "ok" | "rejected" | "error" — every request ends in exactly one.
  std::string status;
  /// Machine-readable code: "OK" for ok, a RejectKindName for rejected,
  /// a StatusCode name for error.
  std::string code;
  /// Admission-control detail for rejections ("queue_full", "rate_limited",
  /// ...), empty otherwise.
  std::string reason;
  /// The answer was served from the cache (fresh or stale).
  bool cached = false;
  /// The cached answer had outlived its TTL (stale-while-degraded serve).
  bool stale = false;
  /// Deterministic answer fields, in serialization order.
  std::vector<std::pair<std::string, std::string>> answer;
  /// Free-text payload after the blank line (metrics, health, BI report).
  std::string payload;

  /// Renders the body (headers, answer block, optional payload).
  std::string Serialize() const;
  /// Parses a response body; unknown header keys land in `answer` in
  /// arrival order, so Serialize(Parse(x)) == x for well-formed bodies.
  static Result<Response> Parse(const std::string& body);

  /// The serialized answer block alone ("" when no answer) — the unit of
  /// cache storage and of the byte-equivalence tests.
  std::string AnswerBlock() const;
  /// First answer field with key `key` ("" when absent).
  std::string AnswerField(const std::string& key) const;
};

/// \brief Frame reader/writer over std::istream/std::ostream.
///
/// `max_frame_bytes` bounds untrusted input: an oversize declared length
/// fails the read instead of allocating it.
struct Framing {
  size_t max_frame_bytes = 1 << 20;

  /// Writes `body` as one frame and flushes.
  Status WriteFrame(std::ostream& out, const std::string& body) const;

  /// Reads one frame body. NotFound on clean EOF before a frame started,
  /// InvalidArgument on a malformed header or oversize length, IOError on
  /// a stream truncated mid-body.
  Result<std::string> ReadFrame(std::istream& in) const;
};

/// Normalizes a question into its answer-cache key: lowercased, whitespace
/// collapsed, leading/trailing space and trailing `?`/`.`/`!` stripped —
/// "What is  the temperature in Madrid?" and "what is the temperature in
/// madrid" share one cache entry.
std::string NormalizeQuestion(const std::string& question);

}  // namespace serve
}  // namespace dwqa

#endif  // DWQA_SERVE_PROTOCOL_H_
