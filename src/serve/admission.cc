#include "serve/admission.h"

#include <algorithm>

#include "common/metric_names.h"

namespace dwqa {
namespace serve {

void TokenBucket::Refill(uint64_t now_tick) {
  if (now_tick > last_tick_) {
    tokens_ = std::min(
        config_.capacity,
        tokens_ + static_cast<double>(now_tick - last_tick_) *
                      config_.refill_per_tick);
    last_tick_ = now_tick;
  }
}

bool TokenBucket::TryTake(uint64_t now_tick) {
  if (disabled()) return true;
  Refill(now_tick);
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  return true;
}

double TokenBucket::available(uint64_t now_tick) {
  if (disabled()) return 0.0;
  Refill(now_tick);
  return tokens_;
}

Status AdmissionConfig::Validate() const {
  if (max_queue_depth == 0) {
    return Status::InvalidArgument(
        "admission max_queue_depth must be > 0 (a zero-depth queue rejects "
        "everything)");
  }
  if (max_queued_cost < 0.0) {
    return Status::InvalidArgument("admission max_queued_cost must be >= 0");
  }
  if (rate.capacity > 0.0 && rate.refill_per_tick <= 0.0) {
    return Status::InvalidArgument(
        "admission rate.refill_per_tick must be > 0 when the bucket is "
        "enabled (a bucket that never refills starves after one burst)");
  }
  return Status::OK();
}

AdmissionController::AdmissionController(AdmissionConfig config)
    : config_(config) {}

AdmissionDecision AdmissionController::Shed(const std::string& reason,
                                            const std::string& detail) {
  if (metrics_ != nullptr) {
    metrics_
        ->GetCounter(kMetricServeRejections, {{"reason", reason}},
                     "Admissions the server refused, by reason")
        ->Increment();
  }
  AdmissionDecision decision;
  decision.status = Status::Overloaded(detail);
  decision.reason = reason;
  return decision;
}

void AdmissionController::ExportGauges() {
  if (metrics_ == nullptr) return;
  metrics_
      ->GetGauge(kMetricServeQueueDepth, {},
                 "Requests admitted and not yet finished")
      ->Set(static_cast<double>(depth_));
  metrics_
      ->GetGauge(kMetricServeQueuedCost, {},
                 "Estimated cost units admitted and not yet finished")
      ->Set(queued_cost_);
}

AdmissionDecision AdmissionController::Admit(const std::string& tenant,
                                             double cost,
                                             uint64_t now_tick) {
  std::lock_guard<std::mutex> lock(mu_);
  if (depth_ + 1 > config_.max_queue_depth) {
    return Shed("queue_full",
                "request queue at its depth limit of " +
                    std::to_string(config_.max_queue_depth));
  }
  if (config_.max_queued_cost > 0.0 &&
      queued_cost_ + cost > config_.max_queued_cost) {
    return Shed("cost_budget",
                "queued cost budget exceeded (queued " +
                    std::to_string(queued_cost_) + " + " +
                    std::to_string(cost) + " > " +
                    std::to_string(config_.max_queued_cost) + ")");
  }
  size_t& inflight = tenant_inflight_[tenant];
  if (config_.per_tenant_concurrency > 0 &&
      inflight + 1 > config_.per_tenant_concurrency) {
    return Shed("tenant_concurrency",
                "tenant '" + tenant + "' at its concurrency limit of " +
                    std::to_string(config_.per_tenant_concurrency));
  }
  auto bucket = buckets_.find(tenant);
  if (bucket == buckets_.end()) {
    bucket = buckets_.emplace(tenant, TokenBucket(config_.rate)).first;
  }
  if (!bucket->second.TryTake(now_tick)) {
    return Shed("rate_limited",
                "tenant '" + tenant + "' exceeded its request rate");
  }
  ++depth_;
  queued_cost_ += cost;
  ++inflight;
  if (metrics_ != nullptr) {
    metrics_
        ->GetGauge(kMetricServeTenantInflight, {{"tenant", tenant}},
                   "Requests of one tenant currently in flight")
        ->Set(static_cast<double>(inflight));
  }
  ExportGauges();
  return {Status::OK(), ""};
}

void AdmissionController::Release(const std::string& tenant, double cost) {
  std::lock_guard<std::mutex> lock(mu_);
  if (depth_ > 0) --depth_;
  queued_cost_ = std::max(0.0, queued_cost_ - cost);
  auto it = tenant_inflight_.find(tenant);
  if (it != tenant_inflight_.end() && it->second > 0) {
    --it->second;
    if (metrics_ != nullptr) {
      metrics_
          ->GetGauge(kMetricServeTenantInflight, {{"tenant", tenant}},
                     "Requests of one tenant currently in flight")
          ->Set(static_cast<double>(it->second));
    }
  }
  ExportGauges();
}

size_t AdmissionController::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return depth_;
}

double AdmissionController::queued_cost() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queued_cost_;
}

size_t AdmissionController::tenant_inflight(
    const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenant_inflight_.find(tenant);
  return it == tenant_inflight_.end() ? 0 : it->second;
}

void AdmissionController::set_metrics(MetricRegistry* metrics) {
  std::lock_guard<std::mutex> lock(mu_);
  metrics_ = metrics;
}

}  // namespace serve
}  // namespace dwqa
