#include "serve/answer_cache.h"

#include "common/metric_names.h"

namespace dwqa {
namespace serve {

Status AnswerCacheConfig::Validate() const {
  if (ttl_ticks == 0) {
    return Status::InvalidArgument("answer cache ttl_ticks must be > 0");
  }
  if (max_bytes == 0) {
    return Status::InvalidArgument("answer cache max_bytes must be > 0");
  }
  return Status::OK();
}

AnswerCache::AnswerCache(AnswerCacheConfig config) : config_(config) {}

size_t AnswerCache::EntryBytes(const std::string& key,
                               const CachedAnswer& answer) {
  size_t bytes = key.size() + 64;  // Map/list node overhead, estimated.
  for (const auto& [k, v] : answer.answer) {
    bytes += k.size() + v.size() + 16;
  }
  return bytes;
}

void AnswerCache::CountLookup(const char* result) {
  if (metrics_ == nullptr) return;
  metrics_
      ->GetCounter(kMetricServeCacheLookups,
                   {{"tenant", tenant_}, {"result", result}},
                   "Answer-cache lookups by result (hit/stale/miss)")
      ->Increment();
}

CacheLookup AnswerCache::Get(const std::string& key, uint64_t now_tick) {
  std::lock_guard<std::mutex> lock(mu_);
  CacheLookup lookup;
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    CountLookup("miss");
    return lookup;
  }
  Entry& entry = it->second;
  lookup.found = true;
  lookup.stale = now_tick - entry.inserted_tick > config_.ttl_ticks;
  lookup.entry = entry.answer;
  lru_.splice(lru_.begin(), lru_, entry.lru_pos);
  CountLookup(lookup.stale ? "stale" : "hit");
  return lookup;
}

void AnswerCache::Put(const std::string& key, CachedAnswer answer,
                      uint64_t now_tick) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t bytes = EntryBytes(key, answer);
  if (bytes > config_.max_bytes) return;  // Can never fit.
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    bytes_ -= it->second.bytes;
    lru_.erase(it->second.lru_pos);
    entries_.erase(it);
  }
  lru_.push_front(key);
  Entry entry;
  entry.answer = std::move(answer);
  entry.inserted_tick = now_tick;
  entry.bytes = bytes;
  entry.lru_pos = lru_.begin();
  entries_.emplace(key, std::move(entry));
  bytes_ += bytes;
  if (metrics_ != nullptr) {
    metrics_
        ->GetCounter(kMetricServeCacheInsertions, {{"tenant", tenant_}},
                     "Answers inserted into the cache")
        ->Increment();
  }
  EvictToFit();
  if (metrics_ != nullptr) {
    metrics_
        ->GetGauge(kMetricServeCacheBytes, {{"tenant", tenant_}},
                   "Estimated bytes the answer cache holds")
        ->Set(static_cast<double>(bytes_));
    metrics_
        ->GetGauge(kMetricServeCacheEntries, {{"tenant", tenant_}},
                   "Entries the answer cache holds")
        ->Set(static_cast<double>(entries_.size()));
  }
}

void AnswerCache::EvictToFit() {
  while (bytes_ > config_.max_bytes && !lru_.empty()) {
    const std::string& victim = lru_.back();
    auto it = entries_.find(victim);
    bytes_ -= it->second.bytes;
    entries_.erase(it);
    lru_.pop_back();
    if (metrics_ != nullptr) {
      metrics_
          ->GetCounter(kMetricServeCacheEvictions, {{"tenant", tenant_}},
                       "Entries evicted by the LRU memory cap")
          ->Increment();
    }
  }
}

size_t AnswerCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

size_t AnswerCache::bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

void AnswerCache::set_metrics(MetricRegistry* metrics,
                              const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  metrics_ = metrics;
  tenant_ = tenant;
}

}  // namespace serve
}  // namespace dwqa
