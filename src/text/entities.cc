#include "text/entities.h"

#include <cstdlib>

#include "common/string_util.h"

namespace dwqa {
namespace text {

namespace {

bool IsIntBetween(const Token& t, int lo, int hi) {
  if (t.tag != "CD" && t.tag != "OD") return false;
  std::string digits = t.tag == "OD" ? t.lemma : t.lower;
  if (!IsDigits(digits)) return false;
  int v = std::atoi(digits.c_str());
  return v >= lo && v <= hi;
}

int TokenInt(const Token& t) {
  std::string digits = t.tag == "OD" ? t.lemma : t.lower;
  return std::atoi(digits.c_str());
}

double TokenDouble(const Token& t) { return std::atof(t.lower.c_str()); }

std::string SpanText(const TokenSequence& toks, size_t b, size_t e) {
  return TokensToText(toks, b, e);
}

bool IsScaleLetter(const Token& t, char* scale) {
  if (t.lower == "c" || t.lower == "celsius" || t.lower == "centigrade") {
    *scale = 'C';
    return true;
  }
  if (t.lower == "f" || t.lower == "fahrenheit") {
    *scale = 'F';
    return true;
  }
  return false;
}

}  // namespace

bool EntityRecognizer::IsMonthName(const std::string& lower) {
  return Date::MonthFromName(lower) != 0;
}

bool EntityRecognizer::IsWeekdayName(const std::string& lower) {
  for (const char* d : {"sunday", "monday", "tuesday", "wednesday",
                        "thursday", "friday", "saturday"}) {
    if (lower == d) return true;
  }
  return false;
}

bool EntityRecognizer::LooksLikeYear(const Token& token) {
  return token.tag == "CD" && IsDigits(token.lower) &&
         token.lower.size() == 4 && IsIntBetween(token, 1000, 2999);
}

std::vector<DateMention> EntityRecognizer::FindDates(
    const TokenSequence& toks) {
  std::vector<DateMention> out;
  size_t i = 0;
  auto push = [&](size_t b, size_t e, int year, int month, int day, bool hy,
                  bool hm, bool hd) {
    DateMention m;
    m.begin = b;
    m.end = e;
    m.text = SpanText(toks, b, e);
    m.has_year = hy;
    m.has_month = hm;
    m.has_day = hd;
    int y = hy ? year : 2000;
    int mth = hm ? month : 1;
    int d = hd ? day : 1;
    // Reject impossible complete dates (e.g. "February 30, 2004").
    if (hd && hm && d > Date::DaysInMonth(hy ? year : 2000, mth)) return;
    m.date = Date(y, mth, d);
    out.push_back(std::move(m));
  };
  while (i < toks.size()) {
    const std::string& lw = toks[i].lower;
    // Pattern A: Month [day][,] [of] [year]  — "January 31, 2004",
    // "January of 2004", "January 2004", "January 31".
    if (IsMonthName(lw)) {
      int month = Date::MonthFromName(lw);
      size_t j = i + 1;
      int day = 0, year = 0;
      bool has_day = false, has_year = false;
      if (j < toks.size() && IsIntBetween(toks[j], 1, 31) &&
          !LooksLikeYear(toks[j])) {
        day = TokenInt(toks[j]);
        has_day = true;
        ++j;
      }
      if (j < toks.size() && (toks[j].lower == "," || toks[j].lower == "of")) {
        if (j + 1 < toks.size() && LooksLikeYear(toks[j + 1])) {
          year = TokenInt(toks[j + 1]);
          has_year = true;
          j += 2;
        }
      } else if (j < toks.size() && LooksLikeYear(toks[j])) {
        year = TokenInt(toks[j]);
        has_year = true;
        ++j;
      }
      push(i, j, year, month, day, has_year, true, has_day);
      i = j;
      continue;
    }
    // Pattern B: [the] DAYth of Month[,] [year] — "the 12th of May, 1997".
    if ((toks[i].tag == "OD" || toks[i].tag == "CD") &&
        IsIntBetween(toks[i], 1, 31) && i + 2 < toks.size() &&
        toks[i + 1].lower == "of" && IsMonthName(toks[i + 2].lower)) {
      int day = TokenInt(toks[i]);
      int month = Date::MonthFromName(toks[i + 2].lower);
      size_t j = i + 3;
      int year = 0;
      bool has_year = false;
      if (j < toks.size() && toks[j].lower == ",") ++j;
      if (j < toks.size() && LooksLikeYear(toks[j])) {
        year = TokenInt(toks[j]);
        has_year = true;
        ++j;
      } else if (!has_year) {
        // No year: roll back a consumed comma.
        j = i + 3;
      }
      push(i, j, year, month, day, has_year, true, true);
      i = j;
      continue;
    }
    ++i;
  }
  return out;
}

std::vector<TemperatureMention> EntityRecognizer::FindTemperatures(
    const TokenSequence& toks) {
  std::vector<TemperatureMention> out;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].tag != "CD" || !IsNumber(toks[i].lower)) continue;
    TemperatureMention m;
    m.value = TokenDouble(toks[i]);
    size_t j = i + 1;
    char scale = '?';
    bool matched = false;
    if (j < toks.size() && toks[j].text == "\xC2\xBA") {
      // "8 º C" or bare "8º".
      ++j;
      matched = true;
      if (j < toks.size() && IsScaleLetter(toks[j], &scale)) ++j;
    } else if (j < toks.size() &&
               (toks[j].lower == "degree" || toks[j].lower == "degrees")) {
      ++j;
      matched = true;
      if (j < toks.size() && IsScaleLetter(toks[j], &scale)) ++j;
    } else if (j < toks.size() && IsScaleLetter(toks[j], &scale) &&
               toks[j].text.size() == 1) {
      // "46.4 F": single capital letter right after a number.
      ++j;
      matched = true;
    } else if (j < toks.size() &&
               (toks[j].lower == "celsius" || toks[j].lower == "fahrenheit")) {
      IsScaleLetter(toks[j], &scale);
      ++j;
      matched = true;
    }
    if (!matched) continue;
    m.scale = scale;
    m.begin = i;
    m.end = j;
    m.text = SpanText(toks, i, j);
    out.push_back(std::move(m));
  }
  return out;
}

std::vector<NumberMention> EntityRecognizer::FindNumbers(
    const TokenSequence& toks) {
  std::vector<NumberMention> out;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].tag == "CD" && IsNumber(toks[i].lower)) {
      NumberMention m;
      m.begin = i;
      m.end = i + 1;
      m.text = toks[i].text;
      m.value = TokenDouble(toks[i]);
      out.push_back(std::move(m));
    }
  }
  return out;
}

std::vector<MoneyMention> EntityRecognizer::FindMoney(
    const TokenSequence& toks) {
  std::vector<MoneyMention> out;
  auto currency_of = [](const std::string& lw) -> std::string {
    if (lw == "euro" || lw == "euros" || lw == "\xE2\x82\xAC") return "EUR";
    if (lw == "dollar" || lw == "dollars" || lw == "$") return "USD";
    if (lw == "pound" || lw == "pounds") return "GBP";
    return "";
  };
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].tag == "CD" && i + 1 < toks.size()) {
      std::string cur = currency_of(toks[i + 1].lower);
      if (!cur.empty()) {
        MoneyMention m;
        m.begin = i;
        m.end = i + 2;
        m.text = SpanText(toks, i, i + 2);
        m.value = TokenDouble(toks[i]);
        m.currency = cur;
        out.push_back(std::move(m));
        continue;
      }
    }
    // "$ 99" (the tokenizer splits the sign off).
    if (toks[i].text == "$" && i + 1 < toks.size() &&
        toks[i + 1].tag == "CD") {
      MoneyMention m;
      m.begin = i;
      m.end = i + 2;
      m.text = SpanText(toks, i, i + 2);
      m.value = TokenDouble(toks[i + 1]);
      m.currency = "USD";
      out.push_back(std::move(m));
    }
  }
  return out;
}

std::vector<PercentMention> EntityRecognizer::FindPercents(
    const TokenSequence& toks) {
  std::vector<PercentMention> out;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].tag != "CD") continue;
    if (i + 1 < toks.size() &&
        (toks[i + 1].text == "%" || toks[i + 1].lower == "percent" ||
         toks[i + 1].lower == "per-cent")) {
      PercentMention m;
      m.begin = i;
      m.end = i + 2;
      m.text = SpanText(toks, i, i + 2);
      m.value = TokenDouble(toks[i]);
      out.push_back(std::move(m));
    }
  }
  return out;
}

std::vector<ProperNounMention> EntityRecognizer::FindProperNouns(
    const TokenSequence& toks) {
  std::vector<ProperNounMention> out;
  auto is_np = [&](size_t k) {
    return k < toks.size() && toks[k].tag == "NP" &&
           !IsMonthName(toks[k].lower) && !IsWeekdayName(toks[k].lower);
  };
  size_t i = 0;
  while (i < toks.size()) {
    if (!is_np(i)) {
      ++i;
      continue;
    }
    size_t j = i;
    std::string mention;
    while (j < toks.size()) {
      if (is_np(j)) {
        if (!mention.empty()) mention += ' ';
        mention += toks[j].text;
        ++j;
        continue;
      }
      // A middle initial keeps the run together: "John F. Kennedy" is one
      // mention ("F" NP, "." attaching to it, "Kennedy" NP).
      if (toks[j].text == "." && j > i && toks[j - 1].tag == "NP" &&
          toks[j - 1].text.size() == 1 && is_np(j + 1)) {
        mention += '.';
        ++j;
        continue;
      }
      break;
    }
    ProperNounMention m;
    m.begin = i;
    m.end = j;
    m.text = std::move(mention);
    out.push_back(std::move(m));
    i = j;
  }
  return out;
}

}  // namespace text
}  // namespace dwqa
