#ifndef DWQA_TEXT_POS_TAGGER_H_
#define DWQA_TEXT_POS_TAGGER_H_

#include "text/lexicon.h"
#include "text/token.h"

namespace dwqa {
namespace text {

/// \brief Lexicon + suffix-rule part-of-speech tagger.
///
/// Plays the role of Maco+/TreeTagger in AliQAn's indexation phase
/// (paper §4.1). Tagging priority per token:
///   1. punctuation → literal tag ('?' at sentence end → SENT, Table 1);
///   2. numbers → CD, ordinals → OD;
///   3. lexicon reading;
///   4. capitalized unknown word → NP (proper noun);
///   5. suffix heuristics (-ly RB, -ing VBG, -ed VBD, -s NNS, adjectival
///      endings JJ);
///   6. default NN.
/// Lemmas come from the lexicon or the Lemmatizer.
class PosTagger {
 public:
  /// Tags with the built-in English lexicon.
  PosTagger() : lexicon_(&Lexicon::BuiltinEnglish()) {}

  /// Tags with a caller-supplied lexicon (domain tuning).
  explicit PosTagger(const Lexicon* lexicon) : lexicon_(lexicon) {}

  /// Tags and lemmatizes `tokens` in place.
  void Tag(TokenSequence* tokens) const;

 private:
  const Lexicon* lexicon_;
};

}  // namespace text
}  // namespace dwqa

#endif  // DWQA_TEXT_POS_TAGGER_H_
