#include "text/pos_tagger.h"

#include <cctype>

#include "common/string_util.h"
#include "text/lemmatizer.h"

namespace dwqa {
namespace text {

namespace {

bool IsOrdinal(const std::string& lower) {
  if (lower.size() < 3) return false;
  std::string_view sv(lower);
  if (!(EndsWith(sv, "st") || EndsWith(sv, "nd") || EndsWith(sv, "rd") ||
        EndsWith(sv, "th"))) {
    return false;
  }
  return IsDigits(sv.substr(0, sv.size() - 2));
}

std::string SuffixTag(const std::string& w) {
  std::string_view sv(w);
  if (EndsWith(sv, "ly") && w.size() > 4) return "RB";
  if (EndsWith(sv, "ing") && w.size() > 5) return "VBG";
  if (EndsWith(sv, "ed") && w.size() > 4) return "VBD";
  if (EndsWith(sv, "est") && w.size() > 5) return "JJS";
  for (std::string_view adj : {"ous", "ful", "ive", "ic", "al", "able",
                               "ible", "ant", "ent", "less"}) {
    if (EndsWith(sv, adj) && w.size() > adj.size() + 2) return "JJ";
  }
  for (std::string_view noun : {"tion", "sion", "ment", "ness", "ity",
                                "ship", "hood", "ism", "ist", "ure"}) {
    if (EndsWith(sv, noun) && w.size() > noun.size() + 2) return "NN";
  }
  if (EndsWith(sv, "s") && !EndsWith(sv, "ss") && w.size() > 3) return "NNS";
  return "NN";
}

}  // namespace

void PosTagger::Tag(TokenSequence* tokens) const {
  for (size_t i = 0; i < tokens->size(); ++i) {
    Token& t = (*tokens)[i];
    const std::string& w = t.text;
    const std::string& lw = t.lower;
    // 1. Punctuation / degree sign.
    if (w == "\xC2\xBA") {
      t.tag = "NN";  // Table 1 analyzes the degree sign as "º NN º".
      t.lemma = w;
      continue;
    }
    // 2. Numbers and ordinals (checked before punctuation so signed
    // numbers like "-5" keep their CD reading).
    if (IsNumber(lw)) {
      t.tag = "CD";
      t.lemma = lw;
      continue;
    }
    if (IsOrdinal(lw)) {
      t.tag = "OD";
      t.lemma = lw.substr(0, lw.size() - 2);
      continue;
    }
    unsigned char c0 = static_cast<unsigned char>(w[0]);
    if (!std::isalnum(c0) && c0 < 0x80) {
      if (w == "?" || w == "!" || (w == "." && i + 1 == tokens->size())) {
        t.tag = "SENT";
      } else {
        t.tag = w;
      }
      t.lemma = w;
      continue;
    }
    // 3. Lexicon reading.
    if (auto entry = lexicon_->Lookup(lw)) {
      t.tag = entry->tag;
      t.lemma = entry->lemma;
      // A capitalized month/day name keeps the NP reading; a capitalized
      // known common word mid-text stays with its lexicon tag.
      continue;
    }
    // 4. Capitalized unknown word → proper noun. Single uppercase letters
    // (the "C" and "F" of temperature scales) are proper nouns in Table 1.
    if (IsCapitalized(w)) {
      t.tag = "NP";
      t.lemma = lw;
      continue;
    }
    // 5./6. Suffix heuristics with NN default.
    t.tag = SuffixTag(lw);
    t.lemma = Lemmatizer::Lemmatize(lw, t.tag);
  }
  // Post-pass: a capitalized open-class word directly before a capitalized
  // proper noun is part of the name ("New York", "Greater London") even
  // when the lexicon knows it as an adjective or noun. Right-to-left so
  // chains propagate.
  for (size_t i = tokens->size(); i-- > 1;) {
    Token& t = (*tokens)[i - 1];
    const Token& next = (*tokens)[i];
    if (next.tag == "NP" && IsCapitalized(next.text) &&
        IsCapitalized(t.text) &&
        (t.tag == "JJ" || t.tag == "JJR" || t.tag == "JJS" ||
         t.tag == "NN" || t.tag == "NNS")) {
      t.tag = "NP";
      t.lemma = t.lower;
    }
  }
}

}  // namespace text
}  // namespace dwqa
