#ifndef DWQA_TEXT_LEXICON_H_
#define DWQA_TEXT_LEXICON_H_

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

namespace dwqa {
namespace text {

/// \brief One lexicon reading of a word form.
struct LexEntry {
  /// Tag in the paper's tagset (see token.h). Forms of "to be" get the
  /// combined tags the paper prints ("VBZBE" for "is").
  std::string tag;
  /// Canonical lemma.
  std::string lemma;
};

/// \brief Full-form lexicon backing the POS tagger and lemmatizer.
///
/// Plays the role of the Maco+/TreeTagger lexical resources the paper's
/// AliQAn indexation phase uses: closed-class words, irregular verb and noun
/// forms, month/day names and a seed of open-class domain vocabulary
/// (weather, aviation, commerce). Unknown words fall through to the tagger's
/// suffix rules.
class Lexicon {
 public:
  Lexicon() = default;

  /// The built-in English lexicon (constructed once, ~500 forms).
  static const Lexicon& BuiltinEnglish();

  /// Registers a reading for `form` (lowercase expected). Later registrations
  /// overwrite earlier ones — domain tuning can re-tag a builtin form.
  void Add(std::string_view form, std::string_view tag,
           std::string_view lemma);

  /// Looks up a lowercase form.
  std::optional<LexEntry> Lookup(std::string_view form) const;

  bool Contains(std::string_view form) const;

  size_t size() const { return entries_.size(); }

 private:
  std::unordered_map<std::string, LexEntry> entries_;
};

}  // namespace text
}  // namespace dwqa

#endif  // DWQA_TEXT_LEXICON_H_
