#ifndef DWQA_TEXT_SENTENCE_SPLITTER_H_
#define DWQA_TEXT_SENTENCE_SPLITTER_H_

#include <string>
#include <string_view>
#include <vector>

namespace dwqa {
namespace text {

/// \brief Splits plain text into sentences.
///
/// Sentence boundaries are '.', '!' and '?' not preceded by a known
/// abbreviation and not inside a decimal number, plus blank lines and single
/// newlines (the synthetic web pages are line-oriented, like the weather page
/// in the paper's Figure 4).
class SentenceSplitter {
 public:
  static std::vector<std::string> Split(std::string_view plain_text);
};

}  // namespace text
}  // namespace dwqa

#endif  // DWQA_TEXT_SENTENCE_SPLITTER_H_
