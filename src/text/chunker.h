#ifndef DWQA_TEXT_CHUNKER_H_
#define DWQA_TEXT_CHUNKER_H_

#include <string>
#include <vector>

#include "text/token.h"

namespace dwqa {
namespace text {

/// \brief A Syntactic Block (SB) in the sense of AliQAn (paper §4.1).
///
/// SUPAR's shallow parse groups a sentence into noun phrases (NP),
/// prepositional phrases (PP, containing an NP) and verbal heads (VBC). NPs
/// carry a role (subject/compl) and a lexical subtype (comun, properNoun,
/// date, numeral, day) — exactly the five-slot annotation of Table 1, e.g.
/// `<@NP,compl,comun,,>`.
struct SyntacticBlock {
  enum class Type { kNP, kPP, kVBC };

  Type type = Type::kNP;
  std::string role;     ///< "subject", "compl" or "".
  std::string subtype;  ///< "comun", "properNoun", "date", "numeral", "day".
  /// Tokens directly inside this block (not inside a child block).
  TokenSequence tokens;
  /// Nested blocks: a PP contains its NP; a day-NP contains its date-NP.
  std::vector<SyntacticBlock> children;

  /// Surface text of the whole block including children, in order.
  std::string Text() const;

  /// Lemma of the head: the last noun-like token of the block (children
  /// excluded for PP — the head of a PP is the head of its NP child).
  std::string HeadLemma() const;

  /// Paper-style annotation: `<@NP,compl,comun,,> the DT the ... <@/NP...>`.
  std::string Annotated() const;

  /// All lemmas inside the block, depth-first.
  std::vector<std::string> Lemmas() const;
};

/// \brief Finite-state shallow parser producing Syntactic Blocks.
///
/// Substitutes SUPAR in the AliQAn pipeline. Date entity spans are treated
/// as atomic NPs of subtype "date" (a weekday immediately before a date
/// wraps it in an NP of subtype "day", as in the Table 1 passage analysis).
class Chunker {
 public:
  /// Chunks one tagged sentence.
  static std::vector<SyntacticBlock> Chunk(const TokenSequence& tokens);

  /// Renders the full paper-style annotated form of a chunked sentence,
  /// including tokens outside any block (wh-words, punctuation).
  static std::string AnnotateSentence(const TokenSequence& tokens);
};

}  // namespace text
}  // namespace dwqa

#endif  // DWQA_TEXT_CHUNKER_H_
