#ifndef DWQA_TEXT_TOKENIZER_H_
#define DWQA_TEXT_TOKENIZER_H_

#include <string_view>

#include "text/token.h"

namespace dwqa {
namespace text {

/// \brief Rule-based tokenizer for the ASCII+degree-sign corpora of this
/// project.
///
/// Behaviour the downstream QA modules rely on:
///   - decimal numbers stay one token ("46.4");
///   - ordinals stay one token ("12th");
///   - the degree sign (U+00BA or U+00B0, both normalized to "º") is its own
///     token, so "8ºC" becomes the three tokens the paper shows in Table 1:
///     "8", "º", "C";
///   - punctuation marks are single-character tokens;
///   - hyphenated words are kept together ("cross-lingual").
class Tokenizer {
 public:
  /// Tokenizes `sentence` (no sentence splitting; see SentenceSplitter).
  static TokenSequence Tokenize(std::string_view sentence);
};

}  // namespace text
}  // namespace dwqa

#endif  // DWQA_TEXT_TOKENIZER_H_
