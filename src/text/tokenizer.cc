#include "text/tokenizer.h"

#include <cctype>

#include "common/string_util.h"

namespace dwqa {
namespace text {

namespace {

bool IsWordChar(char c) {
  unsigned char u = static_cast<unsigned char>(c);
  return std::isalnum(u) != 0 || c == '\'' || c == '-';
}

bool IsDegreeSignAt(std::string_view s, size_t i) {
  // U+00BA (masculine ordinal, used in the paper) or U+00B0 (degree sign),
  // both UTF-8 encoded as 0xC2 followed by 0xBA / 0xB0.
  return i + 1 < s.size() && static_cast<unsigned char>(s[i]) == 0xC2 &&
         (static_cast<unsigned char>(s[i + 1]) == 0xBA ||
          static_cast<unsigned char>(s[i + 1]) == 0xB0);
}

bool IsDigit(char c) {
  return std::isdigit(static_cast<unsigned char>(c)) != 0;
}

}  // namespace

std::string TokensToText(const TokenSequence& tokens, size_t begin,
                         size_t end) {
  std::string out;
  for (size_t i = begin; i < end && i < tokens.size(); ++i) {
    if (!out.empty()) out += ' ';
    out += tokens[i].text;
  }
  return out;
}

TokenSequence Tokenizer::Tokenize(std::string_view s) {
  TokenSequence tokens;
  size_t i = 0;
  while (i < s.size()) {
    unsigned char c = static_cast<unsigned char>(s[i]);
    if (std::isspace(c)) {
      ++i;
      continue;
    }
    size_t start = i;
    if (IsDegreeSignAt(s, i)) {
      tokens.emplace_back("\xC2\xBA", start, i + 2);
      i += 2;
      continue;
    }
    if (IsDigit(s[i]) ||
        ((s[i] == '-' || s[i] == '+') && i + 1 < s.size() &&
         IsDigit(s[i + 1]))) {
      // Number: optional sign, digits, at most one interior decimal point,
      // then an optional ordinal suffix (st/nd/rd/th).
      ++i;
      bool saw_dot = false;
      while (i < s.size()) {
        if (IsDigit(s[i])) {
          ++i;
        } else if (s[i] == '.' && !saw_dot && i + 1 < s.size() &&
                   IsDigit(s[i + 1])) {
          saw_dot = true;
          ++i;
        } else {
          break;
        }
      }
      // Ordinal suffix glued to the digits: "12th", "1st", "2nd", "3rd".
      if (i + 1 < s.size() + 1) {
        std::string_view rest = s.substr(i);
        for (std::string_view suffix : {"st", "nd", "rd", "th"}) {
          if (StartsWith(rest, suffix) &&
              (i + suffix.size() == s.size() ||
               !IsWordChar(s[i + suffix.size()]))) {
            i += suffix.size();
            break;
          }
        }
      }
      tokens.emplace_back(std::string(s.substr(start, i - start)), start, i);
      continue;
    }
    if (std::isalpha(c)) {
      ++i;
      while (i < s.size() && IsWordChar(s[i])) {
        // Do not swallow a trailing apostrophe or hyphen.
        if ((s[i] == '\'' || s[i] == '-') &&
            (i + 1 >= s.size() ||
             !std::isalnum(static_cast<unsigned char>(s[i + 1])))) {
          break;
        }
        ++i;
      }
      tokens.emplace_back(std::string(s.substr(start, i - start)), start, i);
      continue;
    }
    if (c >= 0x80) {
      // Other non-ASCII byte sequence: consume the full UTF-8 code point as
      // one token so offsets stay consistent.
      ++i;
      while (i < s.size() && (static_cast<unsigned char>(s[i]) & 0xC0) == 0x80)
        ++i;
      tokens.emplace_back(std::string(s.substr(start, i - start)), start, i);
      continue;
    }
    // Single punctuation character.
    ++i;
    tokens.emplace_back(std::string(s.substr(start, 1)), start, i);
  }
  for (Token& t : tokens) t.lower = ToLower(t.text);
  return tokens;
}

}  // namespace text
}  // namespace dwqa
