#include "text/lexicon.h"

#include <string>

namespace dwqa {
namespace text {

void Lexicon::Add(std::string_view form, std::string_view tag,
                  std::string_view lemma) {
  entries_[std::string(form)] = LexEntry{std::string(tag), std::string(lemma)};
}

std::optional<LexEntry> Lexicon::Lookup(std::string_view form) const {
  auto it = entries_.find(std::string(form));
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

bool Lexicon::Contains(std::string_view form) const {
  return entries_.count(std::string(form)) > 0;
}

namespace {

Lexicon BuildEnglish() {
  Lexicon lex;
  // --- Determiners / pronouns / wh-words -------------------------------
  for (const char* d : {"the", "a", "an", "this", "that", "these", "those",
                        "some", "any", "each", "every", "no"}) {
    lex.Add(d, "DT", d);
  }
  lex.Add("what", "WP", "what");
  lex.Add("who", "WP", "who");
  lex.Add("whom", "WP", "whom");
  lex.Add("which", "WDT", "which");
  lex.Add("whose", "WP$", "whose");
  lex.Add("where", "WRB", "where");
  lex.Add("when", "WRB", "when");
  lex.Add("why", "WRB", "why");
  lex.Add("how", "WRB", "how");
  for (const char* p : {"i", "you", "he", "she", "it", "we", "they", "me",
                        "him", "her", "us", "them"}) {
    lex.Add(p, "PRP", p);
  }
  for (const char* p : {"my", "your", "his", "its", "our", "their"}) {
    lex.Add(p, "PRP$", p);
  }

  // --- "to be" gets the combined tags the paper prints -----------------
  lex.Add("is", "VBZBE", "be");
  lex.Add("are", "VBPBE", "be");
  lex.Add("was", "VBDBE", "be");
  lex.Add("were", "VBDBE", "be");
  lex.Add("be", "VBBE", "be");
  lex.Add("been", "VBNBE", "be");
  lex.Add("being", "VBGBE", "be");
  lex.Add("am", "VBPBE", "be");

  // --- Auxiliaries and modals ------------------------------------------
  lex.Add("have", "VBP", "have");
  lex.Add("has", "VBZ", "have");
  lex.Add("had", "VBD", "have");
  lex.Add("having", "VBG", "have");
  lex.Add("do", "VBP", "do");
  lex.Add("does", "VBZ", "do");
  lex.Add("did", "VBD", "do");
  lex.Add("done", "VBN", "do");
  for (const char* m : {"can", "could", "may", "might", "must", "shall",
                        "should", "will", "would"}) {
    lex.Add(m, "MD", m);
  }
  lex.Add("not", "RB", "not");
  lex.Add("n't", "RB", "not");
  lex.Add("to", "TO", "to");

  // --- Prepositions; "of" keeps its dedicated OF tag (Table 1) ---------
  lex.Add("of", "OF", "of");
  for (const char* in :
       {"in", "on", "at", "by", "with", "from", "into", "during", "about",
        "against", "between", "through", "over", "under", "after", "before",
        "around", "near", "like", "per", "for", "as", "without", "within"}) {
    lex.Add(in, "IN", in);
  }
  for (const char* cc : {"and", "or", "but", "nor", "yet"}) {
    lex.Add(cc, "CC", cc);
  }

  // --- Irregular verbs the corpora use ----------------------------------
  struct VerbForms {
    const char* lemma;
    const char* third;
    const char* past;
    const char* participle;
    const char* gerund;
  };
  static const VerbForms kVerbs[] = {
      {"sell", "sells", "sold", "sold", "selling"},
      {"buy", "buys", "bought", "bought", "buying"},
      {"fly", "flies", "flew", "flown", "flying"},
      {"rise", "rises", "rose", "risen", "rising"},
      {"fall", "falls", "fell", "fallen", "falling"},
      {"go", "goes", "went", "gone", "going"},
      {"make", "makes", "made", "made", "making"},
      {"take", "takes", "took", "taken", "taking"},
      {"win", "wins", "won", "won", "winning"},
      {"cost", "costs", "cost", "cost", "costing"},
      {"invade", "invades", "invaded", "invaded", "invading"},
      {"shine", "shines", "shone", "shone", "shining"},
      {"reach", "reaches", "reached", "reached", "reaching"},
      {"depart", "departs", "departed", "departed", "departing"},
      {"arrive", "arrives", "arrived", "arrived", "arriving"},
      {"record", "records", "recorded", "recorded", "recording"},
      {"report", "reports", "reported", "reported", "reporting"},
      {"expect", "expects", "expected", "expected", "expecting"},
      {"found", "founds", "founded", "founded", "founding"},
      {"serve", "serves", "served", "served", "serving"},
      {"offer", "offers", "offered", "offered", "offering"},
      {"charge", "charges", "charged", "charged", "charging"},
      {"measure", "measures", "measured", "measured", "measuring"},
      {"drop", "drops", "dropped", "dropped", "dropping"},
      {"stay", "stays", "stayed", "stayed", "staying"},
      {"remain", "remains", "remained", "remained", "remaining"},
      {"become", "becomes", "became", "become", "becoming"},
      {"begin", "begins", "began", "begun", "beginning"},
      {"open", "opens", "opened", "opened", "opening"},
      {"close", "closes", "closed", "closed", "closing"},
      {"stand", "stands", "stood", "stood", "standing"},
      {"perform", "performs", "performed", "performed", "performing"},
      {"operate", "operates", "operated", "operated", "operating"},
  };
  for (const auto& v : kVerbs) {
    lex.Add(v.lemma, "VB", v.lemma);
    lex.Add(v.third, "VBZ", v.lemma);
    // Participle first so that when past == participle ("invaded") the
    // more frequent simple-past VBD reading wins.
    lex.Add(v.participle, "VBN", v.lemma);
    lex.Add(v.past, "VBD", v.lemma);
    lex.Add(v.gerund, "VBG", v.lemma);
  }

  // --- Irregular noun plurals -------------------------------------------
  static const char* kIrregularNouns[][2] = {
      {"people", "person"}, {"children", "child"}, {"men", "man"},
      {"women", "woman"},   {"feet", "foot"},      {"mice", "mouse"},
      {"aircraft", "aircraft"},                    {"data", "datum"},
      {"degrees", "degree"},
  };
  for (const auto& n : kIrregularNouns) lex.Add(n[0], "NNS", n[1]);

  // --- Months and weekday names: proper nouns (Table 1: "January NP") ---
  for (const char* m :
       {"january", "february", "march", "april", "may", "june", "july",
        "august", "september", "october", "november", "december"}) {
    lex.Add(m, "NP", m);
  }
  for (const char* d : {"monday", "tuesday", "wednesday", "thursday",
                        "friday", "saturday", "sunday"}) {
    lex.Add(d, "NP", d);
  }

  // --- Open-class domain vocabulary (weather / aviation / commerce) -----
  static const char* kCommonNouns[] = {
      "weather",     "temperature", "sky",        "rain",     "snow",
      "wind",        "humidity",    "forecast",   "climate",  "degree",
      "scale",       "flight",      "ticket",     "sale",     "price",
      "fare",        "seat",        "mile",       "airport",  "airline",
      "city",        "country",     "state",      "capital",  "customer",
      "traveler",    "passenger",   "date",       "day",      "month",
      "year",        "quarter",     "company",    "report",   "email",
      "document",    "page",        "table",      "product",  "promotion",
      "benefit",     "analysis",    "star",       "universe", "sentence",
      "answer",      "question",    "destination","origin",   "minute",
      "discount",    "revenue",     "profit",     "cost",     "route",
      "terminal",    "gate",        "crew",       "pilot",    "storm",
      "cloud",       "sun",         "profession", "group",    "event",
      "abbreviation","definition",  "object",     "place",    "person",
      "today",       "temperatures","conditions", "condition","average",
      "high",        "low",         "maximum",    "minimum",  "euro",
      "dollar",      "percent",     "age",        "height",   "distance",
      "length",      "width",       "depth",      "speed",    "duration",
      "period",      "quantity",    "number",     "amount",   "population",
  };
  for (const char* n : kCommonNouns) lex.Add(n, "NN", n);

  static const char* kAdjectives[] = {
      "clear",  "cloudy", "sunny",   "rainy",  "windy",   "cold",
      "warm",   "hot",    "mild",    "last",   "first",   "next",
      "new",    "old",    "big",     "small",  "cheap",   "expensive",
      "bright", "brightest",         "visible","average", "daily",
      "late",   "early",  "direct",  "main",   "many",    "much",
      "several","few",    "good",    "best",   "bad",     "worst",
      "high",   "low",    "maximum", "minimum","long",    "short",
  };
  for (const char* a : kAdjectives) lex.Add(a, "JJ", a);
  // Preferred noun readings override where both exist above: re-add nouns
  // whose noun reading should win in our corpora.
  lex.Add("last", "JJ", "last");

  static const char* kAdverbs[] = {"today", "yesterday", "tomorrow", "very",
                                   "too",   "also",      "only",     "now",
                                   "then",  "here",      "there",    "daily"};
  for (const char* r : kAdverbs) lex.Add(r, "RB", r);
  // "today" appears as a noun in the Table 1 passage analysis.
  lex.Add("today", "NN", "today");

  return lex;
}

}  // namespace

const Lexicon& Lexicon::BuiltinEnglish() {
  static const Lexicon* kLexicon = new Lexicon(BuildEnglish());
  return *kLexicon;
}

}  // namespace text
}  // namespace dwqa
