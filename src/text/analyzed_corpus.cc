#include "text/analyzed_corpus.h"

#include <utility>

#include "text/sentence_splitter.h"
#include "text/tokenizer.h"

namespace dwqa {
namespace text {

AnalyzedSentence CorpusAnalyzer::AnalyzeSentence(std::string sentence) const {
  AnalyzedSentence out;
  out.text = std::move(sentence);
  out.tokens = Tokenizer::Tokenize(out.text);
  tagger_.Tag(&out.tokens);
  if (options_.chunk) out.blocks = Chunker::Chunk(out.tokens);
  out.dates = EntityRecognizer::FindDates(out.tokens);
  out.token_ids.reserve(out.tokens.size());
  out.lemma_ids.reserve(out.tokens.size());
  for (const Token& t : out.tokens) {
    out.token_ids.push_back(Intern(t.lower));
    TermId lemma = Intern(t.lemma);
    out.lemma_ids.push_back(lemma);
    out.lemma_set.insert(lemma);
  }
  return out;
}

AnalyzedDocument CorpusAnalyzer::AnalyzeDocument(std::string plain) const {
  AnalyzedDocument out;
  out.plain = std::move(plain);
  std::vector<std::string> sentences = SentenceSplitter::Split(out.plain);
  out.sentences.reserve(sentences.size());
  for (std::string& s : sentences) {
    AnalyzedSentence analyzed = AnalyzeSentence(std::move(s));
    out.token_count += analyzed.tokens.size();
    out.lemma_set.insert(analyzed.lemma_set.begin(),
                         analyzed.lemma_set.end());
    out.sentences.push_back(std::move(analyzed));
  }
  return out;
}

const AnalyzedDocument& AnalyzedCorpus::Add(DocKey doc, std::string plain) {
  CorpusAnalyzer analyzer(dict_.get());
  AnalyzedDocument analyzed = analyzer.AnalyzeDocument(std::move(plain));
  if (auto it = docs_.find(doc); it != docs_.end()) {
    sentence_count_ -= it->second.sentences.size();
  }
  sentence_count_ += analyzed.sentences.size();
  auto [it, inserted] = docs_.insert_or_assign(doc, std::move(analyzed));
  (void)inserted;
  return it->second;
}

void AnalyzedCorpus::AddBatch(const std::vector<DocKey>& keys,
                              std::vector<std::string> plains,
                              ThreadPool* pool) {
  const size_t n = keys.size();
  ShardedTermInterner shared;
  std::vector<AnalyzedDocument> analyzed(n);
  pool->ParallelFor(n, [&](size_t i) {
    CorpusAnalyzer analyzer(&shared);
    analyzed[i] = analyzer.AnalyzeDocument(std::move(plains[i]));
  });

  // Serial merge: walk documents in submission order and remap each
  // provisional id into the owned dictionary the first time it appears.
  // Because the walk visits ids in the same order AnalyzeSentence interns
  // them (token lowercase form, then lemma, per token, per sentence), the
  // dictionary assigns exactly the ids a serial build would have.
  std::vector<TermId> remap(shared.IdBound(), kInvalidTermId);
  auto map_id = [&](TermId provisional) {
    TermId& final_id = remap[provisional];
    if (final_id == kInvalidTermId) {
      final_id = dict_->Intern(shared.Term(provisional));
    }
    return final_id;
  };
  for (size_t i = 0; i < n; ++i) {
    AnalyzedDocument& doc = analyzed[i];
    doc.lemma_set.clear();
    for (AnalyzedSentence& sentence : doc.sentences) {
      sentence.lemma_set.clear();
      for (size_t t = 0; t < sentence.token_ids.size(); ++t) {
        sentence.token_ids[t] = map_id(sentence.token_ids[t]);
        sentence.lemma_ids[t] = map_id(sentence.lemma_ids[t]);
        sentence.lemma_set.insert(sentence.lemma_ids[t]);
      }
      doc.lemma_set.insert(sentence.lemma_set.begin(),
                           sentence.lemma_set.end());
    }
    if (auto it = docs_.find(keys[i]); it != docs_.end()) {
      sentence_count_ -= it->second.sentences.size();
    }
    sentence_count_ += doc.sentences.size();
    docs_.insert_or_assign(keys[i], std::move(doc));
  }
}

const AnalyzedDocument* AnalyzedCorpus::Find(DocKey doc) const {
  auto it = docs_.find(doc);
  return it == docs_.end() ? nullptr : &it->second;
}

void AnalyzedCorpus::Clear() {
  docs_.clear();
  sentence_count_ = 0;
  *dict_ = TermDictionary();
}

}  // namespace text
}  // namespace dwqa
