#include "text/analyzed_corpus.h"

#include <utility>

#include "text/sentence_splitter.h"
#include "text/tokenizer.h"

namespace dwqa {
namespace text {

AnalyzedSentence CorpusAnalyzer::AnalyzeSentence(std::string sentence) const {
  AnalyzedSentence out;
  out.text = std::move(sentence);
  out.tokens = Tokenizer::Tokenize(out.text);
  tagger_.Tag(&out.tokens);
  if (options_.chunk) out.blocks = Chunker::Chunk(out.tokens);
  out.dates = EntityRecognizer::FindDates(out.tokens);
  out.token_ids.reserve(out.tokens.size());
  out.lemma_ids.reserve(out.tokens.size());
  for (const Token& t : out.tokens) {
    out.token_ids.push_back(dict_->Intern(t.lower));
    TermId lemma = dict_->Intern(t.lemma);
    out.lemma_ids.push_back(lemma);
    out.lemma_set.insert(lemma);
  }
  return out;
}

AnalyzedDocument CorpusAnalyzer::AnalyzeDocument(std::string plain) const {
  AnalyzedDocument out;
  out.plain = std::move(plain);
  std::vector<std::string> sentences = SentenceSplitter::Split(out.plain);
  out.sentences.reserve(sentences.size());
  for (std::string& s : sentences) {
    AnalyzedSentence analyzed = AnalyzeSentence(std::move(s));
    out.token_count += analyzed.tokens.size();
    out.lemma_set.insert(analyzed.lemma_set.begin(),
                         analyzed.lemma_set.end());
    out.sentences.push_back(std::move(analyzed));
  }
  return out;
}

const AnalyzedDocument& AnalyzedCorpus::Add(DocKey doc, std::string plain) {
  CorpusAnalyzer analyzer(dict_.get());
  AnalyzedDocument analyzed = analyzer.AnalyzeDocument(std::move(plain));
  if (auto it = docs_.find(doc); it != docs_.end()) {
    sentence_count_ -= it->second.sentences.size();
  }
  sentence_count_ += analyzed.sentences.size();
  auto [it, inserted] = docs_.insert_or_assign(doc, std::move(analyzed));
  (void)inserted;
  return it->second;
}

const AnalyzedDocument* AnalyzedCorpus::Find(DocKey doc) const {
  auto it = docs_.find(doc);
  return it == docs_.end() ? nullptr : &it->second;
}

void AnalyzedCorpus::Clear() {
  docs_.clear();
  sentence_count_ = 0;
  *dict_ = TermDictionary();
}

}  // namespace text
}  // namespace dwqa
