#ifndef DWQA_TEXT_ENTITIES_H_
#define DWQA_TEXT_ENTITIES_H_

#include <string>
#include <vector>

#include "common/date.h"
#include "text/token.h"

namespace dwqa {
namespace text {

/// \brief Token span [begin, end) of a recognized entity.
struct EntitySpan {
  size_t begin = 0;
  size_t end = 0;
  std::string text;
};

/// A calendar reference; partial dates (month+year, month+day) are allowed
/// and flagged. For partial dates missing fields hold defaults (day=1 etc.).
struct DateMention : EntitySpan {
  Date date;
  bool has_day = false;
  bool has_month = false;
  bool has_year = false;

  bool IsComplete() const { return has_day && has_month && has_year; }
};

/// "8ºC", "46.4 F", "8 degrees Celsius". `scale` is 'C', 'F' or '?' when the
/// unit could not be determined (the table-page failure mode of Figure 5).
struct TemperatureMention : EntitySpan {
  double value = 0.0;
  char scale = '?';
};

/// Plain cardinal.
struct NumberMention : EntitySpan {
  double value = 0.0;
};

/// "120 euros", "$99".
struct MoneyMention : EntitySpan {
  double value = 0.0;
  std::string currency;
};

/// "12 percent", "12%".
struct PercentMention : EntitySpan {
  double value = 0.0;
};

/// Maximal run of proper-noun (NP) tokens that is not a month/weekday name.
struct ProperNounMention : EntitySpan {};

/// \brief Rule-based entity recognizers over tagged token sequences.
///
/// These implement the lexical side of the paper's answer-type taxonomy: the
/// "numerical" and "temporal" categories need exactly these mentions, and
/// Step 4's axiomatic knowledge ("a temperature is a number followed by the
/// scale") is checked against TemperatureMention.
class EntityRecognizer {
 public:
  static std::vector<DateMention> FindDates(const TokenSequence& tokens);
  static std::vector<TemperatureMention> FindTemperatures(
      const TokenSequence& tokens);
  static std::vector<NumberMention> FindNumbers(const TokenSequence& tokens);
  static std::vector<MoneyMention> FindMoney(const TokenSequence& tokens);
  static std::vector<PercentMention> FindPercents(const TokenSequence& tokens);
  static std::vector<ProperNounMention> FindProperNouns(
      const TokenSequence& tokens);

  /// True if `lower` is a month name.
  static bool IsMonthName(const std::string& lower);
  /// True if `lower` is a weekday name.
  static bool IsWeekdayName(const std::string& lower);
  /// True if the token looks like a year (1000..2999).
  static bool LooksLikeYear(const Token& token);
};

}  // namespace text
}  // namespace dwqa

#endif  // DWQA_TEXT_ENTITIES_H_
