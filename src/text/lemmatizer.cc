#include "text/lemmatizer.h"

#include "common/string_util.h"

namespace dwqa {
namespace text {

namespace {

bool IsVowel(char c) {
  return c == 'a' || c == 'e' || c == 'i' || c == 'o' || c == 'u';
}

std::string StripPluralNoun(std::string_view w) {
  // -ies -> -y (cities), -ches/-shes/-xes/-ses/-zes -> drop "es",
  // -s -> drop (but not -ss, -us, -is).
  if (EndsWith(w, "ies") && w.size() > 4) {
    return std::string(w.substr(0, w.size() - 3)) + "y";
  }
  if ((EndsWith(w, "ches") || EndsWith(w, "shes") || EndsWith(w, "xes") ||
       EndsWith(w, "zes") || EndsWith(w, "sses")) &&
      w.size() > 4) {
    return std::string(w.substr(0, w.size() - 2));
  }
  if (EndsWith(w, "s") && !EndsWith(w, "ss") && !EndsWith(w, "us") &&
      !EndsWith(w, "is") && w.size() > 3) {
    return std::string(w.substr(0, w.size() - 1));
  }
  return std::string(w);
}

std::string StripVerbSuffix(std::string_view w, std::string_view tag) {
  if (tag == "VBZ") return StripPluralNoun(w);
  if (tag == "VBG" && EndsWith(w, "ing") && w.size() > 5) {
    std::string stem(w.substr(0, w.size() - 3));
    // Doubled final consonant: "dropping" -> "drop".
    if (stem.size() >= 3 && stem[stem.size() - 1] == stem[stem.size() - 2] &&
        !IsVowel(stem.back())) {
      stem.pop_back();
    } else if (stem.size() >= 2 && !IsVowel(stem.back()) &&
               IsVowel(stem[stem.size() - 2])) {
      // "making" -> "make": CVC stem usually lost a silent e.
      stem += 'e';
    }
    return stem;
  }
  if ((tag == "VBD" || tag == "VBN") && EndsWith(w, "ed") && w.size() > 4) {
    std::string stem(w.substr(0, w.size() - 2));
    if (stem.size() >= 3 && stem[stem.size() - 1] == stem[stem.size() - 2] &&
        !IsVowel(stem.back())) {
      stem.pop_back();
    } else if (EndsWith(stem, "i")) {
      stem.back() = 'y';  // "carried" -> "carry"
    } else if (stem.size() >= 2 && !IsVowel(stem.back()) &&
               IsVowel(stem[stem.size() - 2])) {
      stem += 'e';  // "arrived" -> "arrive"
    }
    return stem;
  }
  return std::string(w);
}

}  // namespace

std::string Lemmatizer::Lemmatize(std::string_view w, std::string_view tag) {
  if (tag == "NNS") return StripPluralNoun(w);
  if (tag == "VBZ" || tag == "VBG" || tag == "VBD" || tag == "VBN") {
    return StripVerbSuffix(w, tag);
  }
  if (tag == "JJR" && EndsWith(w, "er") && w.size() > 4) {
    return std::string(w.substr(0, w.size() - 2));
  }
  if (tag == "JJS" && EndsWith(w, "est") && w.size() > 5) {
    return std::string(w.substr(0, w.size() - 3));
  }
  return std::string(w);
}

}  // namespace text
}  // namespace dwqa
