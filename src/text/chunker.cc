#include "text/chunker.h"

#include <algorithm>

#include "text/entities.h"

namespace dwqa {
namespace text {

namespace {

bool IsVerbTag(const std::string& tag) {
  return tag == "VB" || tag == "VBZ" || tag == "VBP" || tag == "VBD" ||
         tag == "VBN" || tag == "VBG" || tag == "MD" || tag == "TO" ||
         tag == "VBZBE" || tag == "VBPBE" || tag == "VBDBE" ||
         tag == "VBBE" || tag == "VBNBE" || tag == "VBGBE";
}

bool IsNpTag(const std::string& tag) {
  return tag == "DT" || tag == "JJ" || tag == "JJR" || tag == "JJS" ||
         tag == "CD" || tag == "OD" || tag == "NN" || tag == "NNS" ||
         tag == "NP" || tag == "PRP" || tag == "PRP$";
}

bool IsNounTag(const std::string& tag) {
  return tag == "NN" || tag == "NNS" || tag == "NP" || tag == "CD" ||
         tag == "OD" || tag == "PRP";
}

bool IsPrepTag(const std::string& tag) { return tag == "IN" || tag == "OF"; }

const char* TypeName(SyntacticBlock::Type t) {
  switch (t) {
    case SyntacticBlock::Type::kNP:
      return "NP";
    case SyntacticBlock::Type::kPP:
      return "PP";
    case SyntacticBlock::Type::kVBC:
      return "VBC";
  }
  return "?";
}

std::string NpSubtype(const TokenSequence& toks, size_t b, size_t e) {
  bool all_numeral = true;
  bool has_proper = false;
  for (size_t i = b; i < e; ++i) {
    const std::string& tag = toks[i].tag;
    if (tag != "CD" && tag != "OD") all_numeral = false;
    if (tag == "NP" && !EntityRecognizer::IsMonthName(toks[i].lower) &&
        !EntityRecognizer::IsWeekdayName(toks[i].lower)) {
      has_proper = true;
    }
  }
  if (all_numeral && e > b) return "numeral";
  if (has_proper) return "properNoun";
  return "comun";
}

}  // namespace

std::string SyntacticBlock::Text() const {
  std::string out = TokensToText(tokens, 0, tokens.size());
  for (const auto& child : children) {
    std::string ct = child.Text();
    if (!ct.empty()) {
      if (!out.empty()) out += ' ';
      out += ct;
    }
  }
  return out;
}

std::string SyntacticBlock::HeadLemma() const {
  if (type == Type::kPP) {
    // Head of a PP is the head of its last NP child.
    for (auto it = children.rbegin(); it != children.rend(); ++it) {
      std::string h = it->HeadLemma();
      if (!h.empty()) return h;
    }
  }
  for (auto it = tokens.rbegin(); it != tokens.rend(); ++it) {
    if (IsNounTag(it->tag)) return it->lemma;
  }
  if (!children.empty()) return children.back().HeadLemma();
  if (!tokens.empty()) return tokens.back().lemma;
  return "";
}

std::vector<std::string> SyntacticBlock::Lemmas() const {
  std::vector<std::string> out;
  for (const Token& t : tokens) out.push_back(t.lemma);
  for (const auto& child : children) {
    auto sub = child.Lemmas();
    out.insert(out.end(), sub.begin(), sub.end());
  }
  return out;
}

std::string SyntacticBlock::Annotated() const {
  std::string header = TypeName(type);
  if (type == Type::kNP) {
    header += "," + role + "," + subtype + ",,";
  }
  std::string out = "<@" + header + ">";
  for (const Token& t : tokens) out += " " + t.Annotated();
  for (const auto& child : children) out += " " + child.Annotated();
  out += " <@/" + header + ">";
  return out;
}

std::vector<SyntacticBlock> Chunker::Chunk(const TokenSequence& toks) {
  std::vector<SyntacticBlock> blocks;
  // Date spans become atomic NP(date) blocks; index by start token.
  std::vector<DateMention> dates = EntityRecognizer::FindDates(toks);
  auto date_at = [&](size_t i) -> const DateMention* {
    for (const auto& d : dates) {
      if (d.begin == i) return &d;
    }
    return nullptr;
  };

  bool seen_vbc = false;
  bool prev_was_vbc = false;

  size_t i = 0;
  // Parses one NP starting at i (possibly a day-wrapped date NP); returns
  // the block and advances i past it. Returns false if no NP starts here.
  auto parse_np = [&](SyntacticBlock* out) -> bool {
    // Weekday followed by (comma +) date: NP(day) wrapping NP(date).
    if (i < toks.size() && EntityRecognizer::IsWeekdayName(toks[i].lower)) {
      size_t j = i + 1;
      if (j < toks.size() && toks[j].text == ",") ++j;
      const DateMention* d = date_at(j);
      if (d != nullptr) {
        SyntacticBlock day;
        day.type = SyntacticBlock::Type::kNP;
        day.subtype = "day";
        for (size_t k = i; k < j; ++k) day.tokens.push_back(toks[k]);
        SyntacticBlock inner;
        inner.type = SyntacticBlock::Type::kNP;
        inner.subtype = "date";
        for (size_t k = d->begin; k < d->end; ++k)
          inner.tokens.push_back(toks[k]);
        day.children.push_back(std::move(inner));
        *out = std::move(day);
        i = d->end;
        return true;
      }
      // Bare weekday: a day NP by itself.
      SyntacticBlock day;
      day.type = SyntacticBlock::Type::kNP;
      day.subtype = "day";
      day.tokens.push_back(toks[i]);
      *out = std::move(day);
      ++i;
      return true;
    }
    if (const DateMention* d = date_at(i)) {
      SyntacticBlock np;
      np.type = SyntacticBlock::Type::kNP;
      np.subtype = "date";
      for (size_t k = d->begin; k < d->end; ++k) np.tokens.push_back(toks[k]);
      *out = std::move(np);
      i = d->end;
      return true;
    }
    if (i < toks.size() && IsNpTag(toks[i].tag)) {
      size_t j = i;
      bool has_noun = false;
      while (j < toks.size() && IsNpTag(toks[j].tag) &&
             date_at(j) == nullptr) {
        if (IsNounTag(toks[j].tag)) has_noun = true;
        ++j;
      }
      if (!has_noun) return false;
      SyntacticBlock np;
      np.type = SyntacticBlock::Type::kNP;
      np.subtype = NpSubtype(toks, i, j);
      for (size_t k = i; k < j; ++k) np.tokens.push_back(toks[k]);
      *out = std::move(np);
      i = j;
      return true;
    }
    return false;
  };

  while (i < toks.size()) {
    const Token& t = toks[i];
    if (IsVerbTag(t.tag) && t.tag != "TO") {
      SyntacticBlock vbc;
      vbc.type = SyntacticBlock::Type::kVBC;
      while (i < toks.size() && IsVerbTag(toks[i].tag)) {
        vbc.tokens.push_back(toks[i]);
        ++i;
      }
      blocks.push_back(std::move(vbc));
      seen_vbc = true;
      prev_was_vbc = true;
      continue;
    }
    if (IsPrepTag(t.tag)) {
      // PP = preposition + NP (possibly followed by a nested "of"-PP).
      size_t save = i;
      SyntacticBlock pp;
      pp.type = SyntacticBlock::Type::kPP;
      pp.tokens.push_back(toks[i]);
      ++i;
      SyntacticBlock np;
      if (parse_np(&np)) {
        pp.children.push_back(std::move(np));
        // Nested "of 2004"-style PP attaches to this PP.
        while (i < toks.size() && toks[i].tag == "OF") {
          size_t save2 = i;
          SyntacticBlock inner_pp;
          inner_pp.type = SyntacticBlock::Type::kPP;
          inner_pp.tokens.push_back(toks[i]);
          ++i;
          SyntacticBlock inner_np;
          if (parse_np(&inner_np)) {
            inner_pp.children.push_back(std::move(inner_np));
            pp.children.push_back(std::move(inner_pp));
          } else {
            i = save2;
            break;
          }
        }
        blocks.push_back(std::move(pp));
        prev_was_vbc = false;
        continue;
      }
      i = save + 1;  // Dangling preposition: skip it.
      continue;
    }
    SyntacticBlock np;
    if (parse_np(&np)) {
      if (!seen_vbc) {
        np.role = "subject";
      } else if (prev_was_vbc) {
        np.role = "compl";
      }
      blocks.push_back(std::move(np));
      prev_was_vbc = false;
      continue;
    }
    // Token outside any block (wh-word, punctuation, adverb...).
    ++i;
    if (t.tag != "," && t.tag != ":" && t.tag != "SENT") prev_was_vbc = false;
  }
  return blocks;
}

std::string Chunker::AnnotateSentence(const TokenSequence& toks) {
  // Re-chunk and interleave out-of-block tokens by walking the token list.
  std::vector<SyntacticBlock> blocks = Chunk(toks);
  // Collect the token offsets covered by blocks (depth-first).
  std::vector<std::pair<size_t, const SyntacticBlock*>> starts;
  // Match blocks to offsets by scanning: blocks are in order and their first
  // token's begin offset identifies them.
  std::string out;
  size_t bi = 0;
  size_t i = 0;
  auto block_first_offset = [](const SyntacticBlock& b) -> size_t {
    const SyntacticBlock* cur = &b;
    while (cur->tokens.empty() && !cur->children.empty())
      cur = &cur->children.front();
    return cur->tokens.empty() ? 0 : cur->tokens.front().begin;
  };
  auto block_token_count = [](const SyntacticBlock& b) {
    size_t n = 0;
    auto rec = [&](const SyntacticBlock& blk, auto&& self) -> void {
      n += blk.tokens.size();
      for (const auto& c : blk.children) self(c, self);
    };
    rec(b, rec);
    return n;
  };
  while (i < toks.size()) {
    if (bi < blocks.size() &&
        toks[i].begin == block_first_offset(blocks[bi])) {
      if (!out.empty()) out += ' ';
      out += blocks[bi].Annotated();
      i += block_token_count(blocks[bi]);
      ++bi;
    } else {
      if (!out.empty()) out += ' ';
      out += toks[i].Annotated();
      ++i;
    }
  }
  return out;
}

}  // namespace text
}  // namespace dwqa
