#ifndef DWQA_TEXT_TOKEN_H_
#define DWQA_TEXT_TOKEN_H_

#include <string>
#include <vector>

namespace dwqa {
namespace text {

/// \brief One token of analyzed text.
///
/// `tag` uses the tagset the paper displays in Table 1: NP (proper noun),
/// NN/NNS (common noun), CD (number), OD (ordinal), IN/OF (preposition),
/// DT (determiner), WP/WDT/WRB (wh-words), VB* (verbs, with the lexical
/// "VBZBE"-style refinement for forms of "to be"), JJ, RB, SENT, and literal
/// punctuation tags.
struct Token {
  /// Surface form, e.g. "Barcelona".
  std::string text;
  /// Lowercased surface form.
  std::string lower;
  /// Lemma assigned by the lemmatizer/lexicon, e.g. "be" for "is".
  std::string lemma;
  /// Part-of-speech tag.
  std::string tag;
  /// Character offsets into the original string ([begin, end)).
  size_t begin = 0;
  size_t end = 0;

  Token() = default;
  Token(std::string t, size_t b, size_t e)
      : text(std::move(t)), begin(b), end(e) {}

  /// "Term Tag Lemma" — the per-token rendering used in the paper's Table 1.
  std::string Annotated() const { return text + " " + tag + " " + lemma; }
};

/// A sentence is a span of tokens.
using TokenSequence = std::vector<Token>;

/// Joins token surface forms with single spaces.
std::string TokensToText(const TokenSequence& tokens, size_t begin, size_t end);

}  // namespace text
}  // namespace dwqa

#endif  // DWQA_TEXT_TOKEN_H_
