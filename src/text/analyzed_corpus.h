#ifndef DWQA_TEXT_ANALYZED_CORPUS_H_
#define DWQA_TEXT_ANALYZED_CORPUS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/interner.h"
#include "common/thread_pool.h"
#include "text/chunker.h"
#include "text/entities.h"
#include "text/pos_tagger.h"
#include "text/token.h"

namespace dwqa {
namespace text {

/// \brief One sentence, analyzed once at indexation time (paper Figure 3:
/// the off-line phase runs the linguistic tools; the search phase only
/// pattern-matches over their output).
struct AnalyzedSentence {
  std::string text;
  /// Tokenized, POS-tagged and lemmatized.
  TokenSequence tokens;
  /// Shallow parse into Syntactic Blocks (SUPAR's role in AliQAn).
  std::vector<SyntacticBlock> blocks;
  /// Date mentions (the extraction module's cross-sentence date borrowing
  /// reads these instead of re-running the recognizer).
  std::vector<DateMention> dates;
  /// Interned lowercase form of each token, parallel to `tokens`.
  std::vector<TermId> token_ids;
  /// Interned lemma of each token, parallel to `tokens`.
  std::vector<TermId> lemma_ids;
  /// Distinct lemma ids of the sentence (SB-coverage scoring reads this).
  std::unordered_set<TermId> lemma_set;
};

/// \brief A document after the one-time indexation analysis.
struct AnalyzedDocument {
  /// The preprocessed plain text the analysis ran on.
  std::string plain;
  std::vector<AnalyzedSentence> sentences;
  /// Union of the sentences' lemma sets.
  std::unordered_set<TermId> lemma_set;
  size_t token_count = 0;
};

/// Borrowed per-passage view: the cached analyses of a consecutive
/// sentence range. Pointees are owned by an AnalyzedCorpus (or by a local
/// buffer in the legacy re-analysis paths) and must outlive the view.
using SentenceView = std::vector<const AnalyzedSentence*>;

struct AnalyzeOptions {
  /// Shallow-parse each sentence into SyntacticBlocks. The corpus keeps
  /// this on (it is the paper's indexation-phase parse); transient
  /// re-analysis paths that never read blocks turn it off.
  bool chunk = true;
};

/// \brief Runs the full per-sentence pipeline: tokenize → POS-tag/lemmatize
/// → chunk → date recognition → intern. Stateless apart from the dictionary
/// it interns into; cheap to construct.
class CorpusAnalyzer {
 public:
  explicit CorpusAnalyzer(TermDictionary* dict, AnalyzeOptions options = {})
      : dict_(dict), options_(options) {}

  /// Parallel-indexation variant: interns into the thread-safe shared
  /// interner instead of a TermDictionary. The resulting ids are
  /// provisional and must be remapped before they meet any consumer (see
  /// AnalyzedCorpus::AddBatch).
  explicit CorpusAnalyzer(ShardedTermInterner* shared,
                          AnalyzeOptions options = {})
      : shared_(shared), options_(options) {}

  AnalyzedSentence AnalyzeSentence(std::string sentence) const;
  AnalyzedDocument AnalyzeDocument(std::string plain) const;

 private:
  TermId Intern(const std::string& term) const {
    return dict_ != nullptr ? dict_->Intern(term) : shared_->Intern(term);
  }

  TermDictionary* dict_ = nullptr;
  ShardedTermInterner* shared_ = nullptr;
  AnalyzeOptions options_;
  PosTagger tagger_;
};

/// \brief The analyze-once corpus shared across text, IR and QA.
///
/// Ownership: the corpus owns the TermDictionary (heap-allocated so its
/// address survives moves of the owner) and every AnalyzedDocument.
/// Consumers — InvertedIndex, PassageIndex, AnswerExtractor, the
/// degradation ladder, MultidimIr — borrow the dictionary pointer and
/// sentence views; the corpus must outlive them all (in AliQAn it is a
/// member declared before both indexes).
class AnalyzedCorpus {
 public:
  /// Document key; matches ir::DocId without depending on the ir layer.
  using DocKey = int32_t;

  /// Analyzes `plain` and stores it under `doc` (replacing any previous
  /// analysis). The returned reference is stable until Clear().
  const AnalyzedDocument& Add(DocKey doc, std::string plain);

  /// Parallel equivalent of calling Add(keys[i], plains[i]) for every i in
  /// order: linguistic analysis (the dominant cost) runs on `pool` against
  /// a shared thread-safe interner, then a serial merge remaps provisional
  /// term ids into the owned dictionary in document order — replaying the
  /// exact intern sequence of the serial path (per token: lowercase form,
  /// then lemma) — so dictionary ids, lemma sets and every downstream
  /// posting are byte-identical to the serial build for any worker count.
  void AddBatch(const std::vector<DocKey>& keys,
                std::vector<std::string> plains, ThreadPool* pool);

  /// The cached analysis, or nullptr when `doc` was never added.
  const AnalyzedDocument* Find(DocKey doc) const;

  bool Contains(DocKey doc) const { return docs_.count(doc) > 0; }

  /// The shared interner. The pointer is stable across Add/Clear and across
  /// moves of the corpus.
  TermDictionary* mutable_dictionary() { return dict_.get(); }
  const TermDictionary& dictionary() const { return *dict_; }

  size_t document_count() const { return docs_.size(); }
  /// Total sentences analyzed (the off-line cost the deadline charges).
  size_t sentence_count() const { return sentence_count_; }

  /// Drops all documents and resets the dictionary (in place — borrowed
  /// dictionary pointers stay valid and see the empty dictionary).
  void Clear();

 private:
  std::unique_ptr<TermDictionary> dict_ = std::make_unique<TermDictionary>();
  std::unordered_map<DocKey, AnalyzedDocument> docs_;
  size_t sentence_count_ = 0;
};

}  // namespace text
}  // namespace dwqa

#endif  // DWQA_TEXT_ANALYZED_CORPUS_H_
