#include "text/sentence_splitter.h"

#include <array>
#include <cctype>

#include "common/string_util.h"

namespace dwqa {
namespace text {

namespace {

constexpr std::array<std::string_view, 8> kAbbreviations = {
    "mr", "mrs", "dr", "st", "vs", "etc", "jr", "prof"};

bool EndsWithAbbreviation(std::string_view text, size_t dot_pos) {
  size_t end = dot_pos;
  size_t start = end;
  while (start > 0 &&
         std::isalpha(static_cast<unsigned char>(text[start - 1]))) {
    --start;
  }
  if (start == end) return false;
  std::string word = ToLower(text.substr(start, end - start));
  // Single letters ("U.S.") also count as abbreviation parts.
  if (word.size() == 1) return true;
  for (std::string_view abbr : kAbbreviations) {
    if (word == abbr) return true;
  }
  return false;
}

bool IsDecimalDot(std::string_view text, size_t pos) {
  return pos > 0 && pos + 1 < text.size() &&
         std::isdigit(static_cast<unsigned char>(text[pos - 1])) &&
         std::isdigit(static_cast<unsigned char>(text[pos + 1]));
}

}  // namespace

std::vector<std::string> SentenceSplitter::Split(std::string_view text) {
  std::vector<std::string> sentences;
  std::string current;
  auto flush = [&] {
    std::string trimmed = Trim(current);
    if (!trimmed.empty()) sentences.push_back(std::move(trimmed));
    current.clear();
  };
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (c == '\n') {
      // The corpora are line-oriented; a newline ends a sentence.
      flush();
      continue;
    }
    current += c;
    if (c == '!' || c == '?') {
      flush();
    } else if (c == '.') {
      if (IsDecimalDot(text, i) || EndsWithAbbreviation(text, i)) continue;
      flush();
    }
  }
  flush();
  return sentences;
}

}  // namespace text
}  // namespace dwqa
