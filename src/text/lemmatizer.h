#ifndef DWQA_TEXT_LEMMATIZER_H_
#define DWQA_TEXT_LEMMATIZER_H_

#include <string>
#include <string_view>

namespace dwqa {
namespace text {

/// \brief Suffix-rule lemmatizer for words the lexicon does not know.
///
/// Applied after lexicon lookup; the tag chosen by the POS tagger guides the
/// rule set (nominal vs verbal suffixes).
class Lemmatizer {
 public:
  /// Lemmatizes a lowercase word form given its assigned tag.
  static std::string Lemmatize(std::string_view lower_form,
                               std::string_view tag);
};

}  // namespace text
}  // namespace dwqa

#endif  // DWQA_TEXT_LEMMATIZER_H_
